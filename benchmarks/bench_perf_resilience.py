"""Perf benchmark — self-healing supervision under seeded chaos.

The acceptance gate of the supervision layer (ISSUE 9): a full
``paper_registry()`` portfolio swept through a 2-shard service **while a
seeded chaos schedule kills every worker once — one of them by wedging
rather than crashing** — must complete with

* **zero caller-visible ``ShardCrashed``** (transparent retry + failover
  absorb every death),
* **values <= 1e-12 of a single-process run** (retried/failed-over
  requests recompute, never approximate),
* the front reporting **>= 1 supervisor restart and >= 1 heartbeat-miss
  recovery**, with retry/failover counts consistent with the schedule
  (every injected death is visible in the counters).

The schedule comes from :meth:`ChaosPolicy.from_seed`; CI rotates the seed
per run (``REPRO_CHAOS_SEED=$GITHUB_RUN_ID``) so coverage walks the
schedule space while any failure replays exactly from the seed printed in
the report.  Measurements (wall-clock, deviation, supervision counters and
the schedule itself) are recorded into ``BENCH_resilience.json`` (override
with ``REPRO_BENCH_RESILIENCE_JSON``) for the CI artifact upload.
``REPRO_BENCH_FAST=1`` switches to coarse grids.
"""

from __future__ import annotations

import asyncio
import json
import os
import time as time_module
from pathlib import Path

import numpy as np
from bench_support import run_once

from repro.service import (
    ArtifactCache,
    ChaosPolicy,
    ScenarioService,
    ShardedScenarioService,
    chaos_seed,
    paper_registry,
)

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
POINTS = 7 if FAST else 21
NUM_SHARDS = 2
BENCH_JSON = Path(
    os.environ.get("REPRO_BENCH_RESILIENCE_JSON", "BENCH_resilience.json")
)

_REGISTRY = paper_registry()


def _record(key: str, payload: dict) -> None:
    """Merge one gate's measurements into the shared JSON document."""
    document = {}
    if BENCH_JSON.exists():
        try:
            document = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            document = {}
    document[key] = payload
    BENCH_JSON.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _portfolio():
    """Every scenario family the paper registry knows."""
    return [
        request
        for name in _REGISTRY.names
        for request in _REGISTRY.expand(name, points=POINTS)
    ]


def test_portfolio_survives_kill_each_shard_once(benchmark):
    """Chaos gate: full portfolio, every worker dies once, zero failures."""
    seed = chaos_seed()
    # One death per shard at a seeded early-portfolio position; exactly one
    # of them wedges (exercising the heartbeat path) while the rest crash.
    chaos = ChaosPolicy.from_seed(seed, NUM_SHARDS, horizon=6, wedge_shards=1)
    portfolio = _portfolio()

    async def baseline():
        service = ScenarioService(
            artifacts=ArtifactCache(), lump=True, coalesce_window=0.05
        )
        async with service:
            return await service.submit_many(list(portfolio))

    reference = asyncio.run(baseline())

    def chaotic_sweep():
        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS,
                lump=True,
                coalesce_window=0.05,
                chaos=chaos,
                # The injected wedge holds its worker for an hour, so even a
                # generous timeout catches it — and a generous timeout is
                # required: under full-portfolio load a healthy worker's
                # loop can be busy (GIL, result pickling) for seconds at a
                # stretch, and an aggressive timeout would kill healthy
                # workers in a loop until retry budgets drain.
                heartbeat_interval=0.5,
                heartbeat_timeout=8.0,
                backoff_base=0.1,
                backoff_cap=0.5,
                retry_limit=6,
                restart_limit=8,
            ) as sharded:
                results = await sharded.submit_many(list(portfolio))
                return results, sharded.stats

        return asyncio.run(run())

    started = time_module.perf_counter()
    results, stats = run_once(benchmark, chaotic_sweep)
    seconds = time_module.perf_counter() - started

    deviation = max(
        float(np.max(np.abs(result.values - expected.values)))
        for result, expected in zip(results, reference)
    )
    restarts = sum(stats.restarts.values())
    misses = sum(stats.heartbeat_misses.values())

    print()
    print(
        f"chaos seed {seed}: schedule {chaos.describe()}; "
        f"{len(portfolio)}-request portfolio on {NUM_SHARDS} shards "
        f"({seconds:.3f}s wall): completed {stats.completed}, "
        f"failed {stats.failed}, retries {stats.retries}, "
        f"restarts {restarts}, failovers {sum(stats.failovers.values())}, "
        f"heartbeat misses {misses}, "
        f"max deviation vs single process {deviation:.2e}"
    )

    _record(
        "chaos_portfolio",
        {
            "seed": seed,
            "schedule": chaos.describe(),
            "portfolio_requests": len(portfolio),
            "num_shards": NUM_SHARDS,
            "wall_seconds": seconds,
            "completed": stats.completed,
            "failed": stats.failed,
            "retries": stats.retries,
            "restarts": restarts,
            "failovers": sum(stats.failovers.values()),
            "heartbeat_misses": misses,
            "max_deviation": deviation,
        },
    )

    # Gate 1 — zero caller-visible failures: every submission completed.
    assert stats.failed == 0
    assert stats.routed_dead == 0
    assert stats.completed == len(portfolio)

    # Gate 2 — correctness under chaos: retried and failed-over requests
    # recompute exactly.
    assert deviation <= 1e-12

    # Gate 3 — the schedule actually fired and was recovered: every
    # injected death shows up in the supervision counters.  (The wedge can
    # only have been recovered through a heartbeat miss.)
    assert restarts >= NUM_SHARDS
    assert misses >= 1
    assert stats.retries >= 1
