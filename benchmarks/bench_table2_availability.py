"""Table 2 — steady-state availability per repair strategy.

Regenerates the availability of Line 1, Line 2 and their combination for
every strategy and checks:

* the dedicated-repair values match the paper's published numbers to 1e-5
  (0.7442018 / 0.8186317 / 0.9536063),
* dedicated repair has the highest availability,
* two-crew strategies come close to dedicated repair, one-crew strategies
  are clearly lower (the paper's main availability finding).
"""

from __future__ import annotations

import pytest
from bench_support import run_once

from repro.casestudy.experiments import table2_availability

PAPER_DED = (0.7442018, 0.8186317, 0.9536063)


def test_table2_availability(benchmark):
    result = run_once(benchmark, table2_availability)

    print()
    print(result.to_text())

    dedicated = result.row_by("strategy", "DED")
    assert dedicated[1] == pytest.approx(PAPER_DED[0], abs=1e-5)
    assert dedicated[2] == pytest.approx(PAPER_DED[1], abs=1e-5)
    assert dedicated[3] == pytest.approx(PAPER_DED[2], abs=1e-5)

    by_strategy = {row[0]: row for row in result.rows}
    for line_column in (1, 2, 3):
        dedicated_value = by_strategy["DED"][line_column]
        for label in ("FRF-1", "FRF-2", "FFF-1", "FFF-2"):
            assert by_strategy[label][line_column] <= dedicated_value + 1e-9
        # Two crews recover most of the dedicated availability ...
        assert by_strategy["FRF-2"][line_column] > by_strategy["FRF-1"][line_column]
        assert by_strategy["FFF-2"][line_column] > by_strategy["FFF-1"][line_column]
        # ... and get within 0.1% of it, while one crew loses noticeably more.
        assert dedicated_value - by_strategy["FRF-2"][line_column] < 0.001
        assert dedicated_value - by_strategy["FRF-1"][line_column] > 0.005
