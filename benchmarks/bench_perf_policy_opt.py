"""Perf benchmark — repair-policy optimization on the batched evaluator.

Four gates over :mod:`repro.optimize`, on the paper's own facility lines:

* **Policy iteration converges on Line 1 and Line 2** and its optimized
  long-run unavailability is at least as good as the best of the five
  fixed strategies (to 1e-9) — on the *same* CTMDP, so costs and crew
  pools are apples-to-apples.

* **Rollout dominates the fixed strategies on the Fig. 4/5 objective**
  (Line 1, Disaster 1, recovery to X1 within 4.5 h): the optimized
  survivability is >= the best fixed strategy - 1e-9 by construction; the
  gate catches safeguard regressions.

* **Candidate coalescing**: all K one-step deviations of a rollout round
  are scored off one shared identity-block session, so the sweeps spent
  must stay within a small multiple of the iteration count — not within a
  multiple of K (K is ~175k on Line 1).

* **Warm re-optimization** with a shared :class:`repro.service.ArtifactCache`
  must add zero ``factorization`` and zero ``quotient`` misses: same
  chains -> same fingerprints -> every solver artifact is reused.

Measurements land in ``BENCH_policy_opt.json`` (override with
``REPRO_BENCH_POLICY_JSON``) for the CI artifact upload.
``REPRO_BENCH_FAST=1`` coarsens the rollout grid.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from bench_support import run_once

from repro.casestudy.experiments import line_service_interval_lower
from repro.casestudy.facility import DISASTER_1, LINE1, LINE2, build_line
from repro.ctmc.linsolve import SolverEngine
from repro.optimize import (
    OptimizerStats,
    RepairCTMDP,
    default_candidates,
    evaluate_policy,
    policy_iteration,
    rollout_optimize,
)
from repro.service import ArtifactCache

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
ROLLOUT_POINTS = 17 if FAST else 33
BENCH_JSON = Path(os.environ.get("REPRO_BENCH_POLICY_JSON", "BENCH_policy_opt.json"))


def _record(key: str, payload: dict) -> None:
    """Merge one gate's measurements into the shared JSON document."""
    document = {}
    if BENCH_JSON.exists():
        try:
            document = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            document = {}
    document[key] = payload
    BENCH_JSON.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _longrun_gate(line: str) -> dict:
    ctmdp = RepairCTMDP(build_line(line))
    engine = SolverEngine()
    stats = OptimizerStats()
    gains = {}
    best_label, best_policy = None, None
    for label, policy in default_candidates(ctmdp).items():
        gains[label] = evaluate_policy(
            ctmdp, policy, engine=engine, stats=stats
        ).gains["unavailability"]
        if best_label is None or gains[label] < gains[best_label]:
            best_label, best_policy = label, policy
    result = policy_iteration(
        ctmdp,
        objective="unavailability",
        initial=best_policy,
        engine=engine,
        stats=stats,
    )
    assert result.converged, f"policy iteration did not converge on {line}"
    assert result.gain <= min(gains.values()) + 1e-9, (
        f"optimized unavailability {result.gain:.12e} worse than best fixed "
        f"strategy {min(gains.values()):.12e} on {line}"
    )
    return {
        "states": ctmdp.num_states,
        "actions": ctmdp.total_actions,
        "iterations": result.iterations,
        "optimized_unavailability": result.gain,
        "best_fixed": {best_label: gains[best_label]},
        "policy_evaluations": stats.policy_evaluations,
    }


def test_policy_iteration_converges_and_dominates_both_lines(benchmark):
    """PI gate: converge on Line 1 and Line 2, optimized <= best fixed + 1e-9."""

    def both_lines():
        return {LINE2: _longrun_gate(LINE2), LINE1: _longrun_gate(LINE1)}

    payload = run_once(benchmark, both_lines)
    print()
    for line, entry in payload.items():
        print(
            f"{line}: {entry['states']} states / {entry['actions']} actions, "
            f"PI converged in {entry['iterations']} iteration(s), "
            f"unavailability {entry['optimized_unavailability']:.9e} "
            f"(best fixed {entry['best_fixed']})"
        )
    _record("policy_iteration", payload)


def test_rollout_dominates_fig4_objective_with_coalesced_sweeps(benchmark):
    """Rollout + coalescing gates on the Fig. 4/5 objective (Line 1)."""
    ctmdp = RepairCTMDP(build_line(LINE1))
    artifacts = ArtifactCache()
    stats = OptimizerStats()
    kwargs = dict(
        disaster=DISASTER_1,
        horizon=4.5,
        threshold=line_service_interval_lower(LINE1, 0),
        points=ROLLOUT_POINTS,
        artifacts=artifacts,
    )

    result = run_once(
        benchmark,
        rollout_optimize,
        ctmdp,
        "survivability",
        stats=stats,
        **kwargs,
    )

    for label, value in result.baselines.items():
        assert result.value >= value - 1e-9, (
            f"optimized survivability {result.value:.12e} loses to fixed "
            f"strategy {label} ({value:.12e})"
        )
    # K candidates per round, a small multiple of one session's sweeps total.
    deviations = ctmdp.total_actions - ctmdp.num_states
    assert stats.candidate_actions >= deviations
    assert stats.coalesced_sweeps <= 2 * stats.rollout_iterations, (
        f"{stats.coalesced_sweeps} sweeps for {stats.rollout_iterations} "
        f"rollout rounds: candidate deviations are not riding shared sweeps"
    )

    # Warm re-optimization: the shared artifact cache must serve everything.
    before = artifacts.stats()
    warm_stats = OptimizerStats()
    warm = rollout_optimize(ctmdp, "survivability", stats=warm_stats, **kwargs)
    deltas = artifacts.stats().misses_since(before)
    assert deltas.get("factorization", 0) == 0, deltas
    assert deltas.get("quotient", 0) == 0, deltas
    assert warm.value == result.value

    print()
    print(
        f"Fig. 4/5 objective on {LINE1}: optimized {result.value:.9f} vs best "
        f"fixed {result.best_baseline:.9f} ({result.base_label}); "
        f"{stats.candidate_actions} candidate deviations on "
        f"{stats.coalesced_sweeps} coalesced sweeps "
        f"({stats.sweeps_saved} saved); warm rerun misses: {deltas}"
    )
    _record(
        "rollout_fig4_5",
        {
            "points": ROLLOUT_POINTS,
            "optimized": result.value,
            "best_fixed": {result.base_label: result.best_baseline},
            "rollout_iterations": stats.rollout_iterations,
            "candidate_actions": stats.candidate_actions,
            "coalesced_sweeps": stats.coalesced_sweeps,
            "sweeps_saved": stats.sweeps_saved,
            "warm_miss_deltas": deltas,
        },
    )
