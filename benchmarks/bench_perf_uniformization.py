"""Perf benchmark — single-pass uniformization engine vs per-point evaluation.

Regenerates the time grids behind the survivability figures (Fig. 4, Line 1 /
Fig. 8, Line 2) and the accumulated-cost figures (Fig. 7, Line 1 / Fig. 11,
Line 2) through the shared uniformization engine, and compares them against a
per-point baseline that restarts the vector-power recursion for every grid
point — the pre-engine behaviour.  Both paths *measure* their sparse matvec
counts (the engine via :data:`repro.ctmc.uniformization.ENGINE_STATS`, the
baseline by counting the products it performs), so the reported reduction is
observed, not estimated.

Acceptance gate: on the 101-point Line 2 survivability curve the engine must
perform at least 10x fewer matvecs than the per-point baseline while matching
its values to <= 1e-9.

Setting ``REPRO_BENCH_FAST=1`` (used by the CI regression step) switches to
coarser grids; the asserted reduction factors hold on those too.
"""

from __future__ import annotations

import os
import time as time_module

import numpy as np
from bench_support import run_once

from repro.arcade.repair import RepairStrategy
from repro.casestudy.experiments import line_state_space
from repro.casestudy.facility import (
    DISASTER_1,
    DISASTER_2,
    LINE1,
    LINE2,
    StrategyConfiguration,
)
from repro.ctmc.foxglynn import fox_glynn
from repro.ctmc.uniformization import ENGINE_STATS
from repro.measures import accumulated_cost_curve, survivability

EPSILON = 1e-10
FRF2 = StrategyConfiguration(RepairStrategy.FASTEST_REPAIR_FIRST, 2)

#: Fast mode (CI): coarser grids, same asserted reduction factors.
FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
LINE2_POINTS = 51 if FAST else 101
LINE1_POINTS = 51 if FAST else 91
COST_POINTS = 51 if FAST else 101


def _baseline_survivability(space, disaster, service_level, times):
    """Per-point survivability exactly as the seed implemented it.

    Returns ``(values, matvecs)`` with the matvec count incremented for every
    sparse product actually performed.
    """
    target = space.states_with_service_at_least(service_level)
    initial = space.initial_distribution_for_disaster(disaster)
    target_mask = np.zeros(space.chain.num_states, dtype=bool)
    target_mask[target] = True
    transformed = space.chain.make_absorbing(target)
    probabilities, q = transformed.uniformized_matrix()
    transposed = probabilities.T.tocsr()
    matvecs = 0
    values = np.zeros(len(times))
    for row, t in enumerate(times):
        if t == 0.0 or transformed.max_exit_rate == 0.0:
            distribution = initial
        else:
            weights = fox_glynn(q * float(t), EPSILON)
            vector = initial.copy()
            accumulator = np.zeros(space.chain.num_states)
            for _ in range(weights.left):
                vector = transposed @ vector
                matvecs += 1
            for k in range(weights.left, weights.right + 1):
                accumulator += weights.weight(k) * vector
                if k < weights.right:
                    vector = transposed @ vector
                    matvecs += 1
            distribution = accumulator
        values[row] = min(1.0, max(0.0, float(distribution[target_mask].sum())))
    return values, matvecs


def _baseline_accumulated_cost(space, disaster, times):
    """Per-bound accumulated cost exactly as the seed implemented it."""
    chain = space.chain
    rewards = space.reward_model.reward_structure("cost").state_rewards
    initial = space.initial_distribution_for_disaster(disaster)
    probabilities, q = chain.uniformized_matrix()
    transposed = probabilities.T.tocsr()
    matvecs = 0
    values = np.zeros(len(times))
    for row, t in enumerate(times):
        if t == 0.0:
            continue
        weights = fox_glynn(q * float(t), EPSILON)
        cumulative = np.cumsum(weights.weights)
        total = float(cumulative[-1])
        vector = initial.copy()
        accumulated = 0.0
        for k in range(0, weights.right + 1):
            tail = total if k < weights.left else total - float(cumulative[k - weights.left])
            if tail <= 0.0:
                break
            accumulated += tail * float(vector @ rewards)
            vector = transposed @ vector
            matvecs += 1
        values[row] = accumulated / q
    return values, matvecs


def _report(label, engine_matvecs, baseline_matvecs, baseline_seconds, deviation):
    ratio = baseline_matvecs / max(engine_matvecs, 1)
    print(
        f"{label}: engine {engine_matvecs} matvecs, per-point baseline "
        f"{baseline_matvecs} matvecs ({ratio:.1f}x reduction, baseline wall "
        f"{baseline_seconds:.3f}s), max |engine - baseline| = {deviation:.2e}"
    )


def test_engine_survivability_line2(benchmark):
    """The Fig. 8 grid (Line 2, Disaster 2, 101 points) — the acceptance gate."""
    space = line_state_space(LINE2, FRF2)
    threshold = space.model.effective_service_tree().service_intervals()[0][0]
    times = np.linspace(0.0, 100.0, LINE2_POINTS)

    before = ENGINE_STATS.matvecs
    engine_values = run_once(
        benchmark, survivability, space, DISASTER_2, threshold, times
    )
    engine_matvecs = ENGINE_STATS.matvecs - before

    started = time_module.perf_counter()
    baseline_values, baseline_matvecs = _baseline_survivability(
        space, DISASTER_2, threshold, times
    )
    baseline_seconds = time_module.perf_counter() - started

    deviation = float(np.max(np.abs(np.asarray(engine_values) - baseline_values)))
    print()
    _report("Fig. 8 survivability (Line 2)", engine_matvecs, baseline_matvecs,
            baseline_seconds, deviation)
    assert baseline_matvecs >= 10 * engine_matvecs
    assert deviation <= 1e-9


def test_engine_survivability_line1(benchmark):
    """The Fig. 4 grid (Line 1, Disaster 1, 91 points)."""
    space = line_state_space(LINE1, FRF2)
    threshold = space.model.effective_service_tree().service_intervals()[0][0]
    times = np.linspace(0.0, 4.5, LINE1_POINTS)

    before = ENGINE_STATS.matvecs
    engine_values = run_once(
        benchmark, survivability, space, DISASTER_1, threshold, times
    )
    engine_matvecs = ENGINE_STATS.matvecs - before

    started = time_module.perf_counter()
    baseline_values, baseline_matvecs = _baseline_survivability(
        space, DISASTER_1, threshold, times
    )
    baseline_seconds = time_module.perf_counter() - started

    deviation = float(np.max(np.abs(np.asarray(engine_values) - baseline_values)))
    print()
    _report("Fig. 4 survivability (Line 1)", engine_matvecs, baseline_matvecs,
            baseline_seconds, deviation)
    assert baseline_matvecs >= 10 * engine_matvecs
    assert deviation <= 1e-9


def test_engine_accumulated_costs(benchmark):
    """The Fig. 7 (Line 1) and Fig. 11 (Line 2) accumulated-cost grids."""
    grids = (
        ("Fig. 7 accumulated cost (Line 1)", LINE1, DISASTER_1, 10.0),
        ("Fig. 11 accumulated cost (Line 2)", LINE2, DISASTER_2, 50.0),
    )
    spaces = {line: line_state_space(line, FRF2) for _, line, _, _ in grids}

    def engine_curves():
        curves = {}
        matvecs = {}
        for _, line, disaster, horizon in grids:
            before = ENGINE_STATS.matvecs
            curves[line] = accumulated_cost_curve(
                spaces[line], horizon, disaster, points=COST_POINTS
            )
            matvecs[line] = ENGINE_STATS.matvecs - before
        return curves, matvecs

    curves, engine_matvecs = run_once(benchmark, engine_curves)

    print()
    total_baseline = 0
    for label, line, disaster, horizon in grids:
        times, engine_values = curves[line]
        started = time_module.perf_counter()
        baseline_values, baseline_matvecs = _baseline_accumulated_cost(
            spaces[line], disaster, times
        )
        baseline_seconds = time_module.perf_counter() - started
        total_baseline += baseline_matvecs
        deviation = float(np.max(np.abs(engine_values - baseline_values)))
        _report(label, engine_matvecs[line], baseline_matvecs, baseline_seconds, deviation)
        assert deviation <= 1e-9
    assert total_baseline >= 10 * sum(engine_matvecs.values())
