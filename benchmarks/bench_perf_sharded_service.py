"""Perf benchmark — the sharded multi-process scenario service.

Two acceptance gates of the shard-out subsystem, measured in the workers'
own cache counters (observed through the shared-nothing stats protocol, not
estimated):

* **Warm shard caches (repeat portfolio)** — the same portfolio (Fig. 4/5,
  Fig. 8/9 and the Table 2 availability grid: both lines, transient *and*
  long-run kinds) is swept twice through one 2-shard service.  Gate: on the
  second sweep **neither shard reports a single factorization or quotient
  miss** (nor transform/operator/Fox–Glynn misses) — per-shard chain
  ownership keeps every LU factorization, BSCC decomposition and lumping
  quotient warm exactly where its chain lives.

* **Exclusive chain ownership (fingerprint routing)** — after the sweeps,
  the two shards' artifact caches must cover **disjoint chain-fingerprint
  sets** while both shards actually served traffic: routing by content
  fingerprint never computes the same chain's artifacts on two workers, so
  shard-out adds capacity without duplicating cache work.

Values are additionally pinned against a single-process
:class:`repro.service.ScenarioService` run of the identical portfolio
(<= 1e-12).  ``REPRO_BENCH_FAST=1`` (the CI regression step) switches to
coarser grids; the gates hold there too.
"""

from __future__ import annotations

import asyncio
import os
import time as time_module

import numpy as np
from bench_support import run_once

from repro.service import (
    ArtifactCache,
    CacheStats,
    ScenarioService,
    ShardedScenarioService,
    paper_registry,
)

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
POINTS = 9 if FAST else 31
NUM_SHARDS = 2
SCENARIOS = ("fig4_5", "fig8_9", "table2")

_REGISTRY = paper_registry()


def _portfolio():
    """Both lines' survivability families plus the availability table."""
    return [
        request
        for name in SCENARIOS
        for request in _REGISTRY.expand(name, points=POINTS)
    ]


def test_sharded_portfolio_warm_caches_and_exclusive_ownership(benchmark):
    """Warm repeat: zero per-shard factorization/quotient misses; chains owned once."""
    portfolio = _portfolio()

    async def baseline():
        service = ScenarioService(
            artifacts=ArtifactCache(), lump=True, coalesce_window=0.05, max_batch=1024
        )
        async with service:
            return await service.submit_many(list(portfolio))

    reference = asyncio.run(baseline())

    def sharded_rounds():
        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS, lump=True, coalesce_window=0.05, max_batch=1024
            ) as sharded:
                cold = await sharded.submit_many(list(portfolio))
                cold_snapshots = await sharded.shard_snapshots()
                warm = await sharded.submit_many(list(portfolio))
                warm_snapshots = await sharded.shard_snapshots()
                return cold, warm, cold_snapshots, warm_snapshots, sharded.stats

        return asyncio.run(run())

    started = time_module.perf_counter()
    cold, warm, cold_snapshots, warm_snapshots, stats = run_once(
        benchmark, sharded_rounds
    )
    seconds = time_module.perf_counter() - started

    deviation = max(
        float(np.max(np.abs(result.values - expected.values)))
        for result, expected in zip(cold + warm, reference + reference)
    )
    warm_deltas = {
        snapshot.index: snapshot.cache.misses_since(
            next(c for c in cold_snapshots if c.index == snapshot.index).cache
            or CacheStats()
        )
        for snapshot in warm_snapshots
    }
    owned = {snapshot.index: snapshot.fingerprints for snapshot in warm_snapshots}

    print()
    print(
        f"{len(portfolio)}-request portfolio x 2 rounds on {NUM_SHARDS} shards "
        f"({seconds:.3f}s wall): routed {dict(sorted(stats.routed.items()))}, "
        f"warm miss deltas {warm_deltas}, "
        f"owned chains {({i: len(f) for i, f in sorted(owned.items())})}, "
        f"max deviation vs single process {deviation:.2e}"
    )

    assert deviation <= 1e-12

    # Gate 1 — warm repeat: zero factorization/quotient (and transform/
    # operator/window) misses on EITHER shard.
    for index, deltas in warm_deltas.items():
        for kind in ("factorization", "quotient", "transformed", "operator", "foxglynn"):
            assert deltas.get(kind, 0) == 0, (
                f"shard {index} recomputed {kind} artifacts on the warm round: "
                f"{deltas}"
            )

    # Gate 2 — exclusive ownership: both shards served chains, and no chain's
    # artifacts were ever computed on more than one shard.
    assert all(count > 0 for count in stats.routed.values())
    assert all(owned.values())
    assert not (owned[0] & owned[1]), (
        f"fingerprint routing duplicated chains across shards: "
        f"{sorted(owned[0] & owned[1])}"
    )
