"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The
computations are deterministic numerical analyses (not micro-benchmarks), so
each one is executed exactly once per session (``rounds=1``) and its result
is additionally sanity-checked against the qualitative findings of the
paper — the benchmarks double as end-to-end reproduction checks.

The state-space cache of :mod:`repro.casestudy.experiments` is shared across
benchmarks within the session so that the reported time of each benchmark
reflects the analysis it adds, not repeated state-space construction.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def figure_points() -> int:
    """Grid resolution used by the figure benchmarks.

    Coarser than the 101-point grids used for the published CSV output, so a
    full benchmark session stays in the range of a few minutes; the curve
    *shapes* asserted on are unaffected by the resolution.
    """
    return 31
