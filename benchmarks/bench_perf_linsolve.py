"""Perf benchmark — the cached linear-solver engine on the long-run path.

Three acceptance gates, measured in the engine's own counters and the
artifact cache's miss deltas (observed, not estimated):

* **RHS batching (Line 1, stacked reward structures)** — K ``R=?[F phi]``
  queries with distinct reward vectors on one case-study chain, submitted
  as one analysis session.  Gate: the whole family costs **exactly one LU
  factorization** (the K reward columns ride one multi-column solve), and
  every value agrees with the retained per-call reference
  (:func:`repro.ctmc.linsolve.reachability_reward_reference`) to <= 1e-12.

* **Warm artifact cache (Table 2 availability portfolio)** — the paper's
  steady-state availability portfolio is swept twice through scenario
  services sharing one process-wide :class:`repro.service.ArtifactCache`.
  Gate: the second sweep reports **zero factorization, zero BSCC and zero
  stationary-vector cache misses** — the BSCC decompositions and stationary
  solves of the first pass are reused wholesale — and its values are
  bit-identical to the cold pass.

* **Reference agreement** — the cold batched availabilities agree with the
  per-call :func:`repro.ctmc.steady_state.steady_state_distribution`
  reference to <= 1e-12 (checked inside the warm-cache benchmark).

Setting ``REPRO_BENCH_FAST=1`` (used by the CI regression step) trims the
portfolio to two repair strategies; all gates hold there too.
"""

from __future__ import annotations

import asyncio
import os
import time as time_module

import numpy as np
from bench_support import run_once

from repro.analysis import AnalysisSession, MeasureKind, SessionStats
from repro.casestudy.experiments import line_state_space
from repro.casestudy.facility import LINE1, LINE2, PAPER_STRATEGIES
from repro.ctmc.linsolve import reachability_reward_reference
from repro.ctmc.steady_state import steady_state_distribution
from repro.measures import steady_state_availability_request
from repro.service import ArtifactCache, ScenarioService

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
NUM_REWARD_STRUCTURES = 8
TABLE2_STRATEGIES = PAPER_STRATEGIES[:2] if FAST else PAPER_STRATEGIES


def test_stacked_reachability_rewards_share_one_factorization(benchmark):
    """K reward structures on one chain -> exactly 1 LU factorization."""
    space = line_state_space(LINE1, PAPER_STRATEGIES[0])
    chain = space.chain
    cost = space.reward_model.reward_structure("cost").state_rewards
    # K distinct reward structures: the paper's cost rates under K pricing
    # scenarios (deterministic scalings plus a per-state perturbation).
    columns = [
        cost * (1.0 + 0.25 * k) + (k / 100.0) * np.arange(chain.num_states)
        for k in range(NUM_REWARD_STRUCTURES)
    ]

    def run_family():
        stats = SessionStats()
        session = AnalysisSession(stats=stats)
        indices = [
            session.request(
                chain,
                (),
                kind=MeasureKind.REACHABILITY_REWARD,
                target="operational",
                rewards=column,
            )
            for column in columns
        ]
        results = session.execute()
        return [float(results[index].squeezed[0]) for index in indices], stats

    started = time_module.perf_counter()
    values, stats = run_once(benchmark, run_family)
    batched_seconds = time_module.perf_counter() - started

    started = time_module.perf_counter()
    references = [
        reachability_reward_reference(
            chain, column, chain.label_mask("operational")
        )
        for column in columns
    ]
    reference_seconds = time_module.perf_counter() - started

    deviation = max(
        abs(value - reference) for value, reference in zip(values, references)
    )
    print()
    print(
        f"{NUM_REWARD_STRUCTURES} stacked R=?[F] queries on the "
        f"{chain.num_states}-state Line 1 chain: {stats.factorizations} "
        f"factorization(s), {stats.solved_columns} RHS columns "
        f"({batched_seconds:.3f}s batched vs {reference_seconds:.3f}s "
        f"per-call), max deviation {deviation:.2e}"
    )
    # Gate (a): K stacked queries cost exactly one factorization.
    assert stats.factorizations == 1
    assert stats.solved_columns == NUM_REWARD_STRUCTURES
    # Gate (c): batched values match the per-call reference.
    assert deviation <= 1e-12


def test_repeat_table2_portfolio_hits_warm_longrun_cache(benchmark):
    """Second Table 2 availability sweep: zero factorization/BSCC misses."""
    cache = ArtifactCache()

    def portfolio():
        return [
            steady_state_availability_request(
                line_state_space(line, configuration),
                tag=(line, configuration.label),
            )
            for line in (LINE1, LINE2)
            for configuration in TABLE2_STRATEGIES
        ]

    def sweep():
        async def run():
            async with ScenarioService(artifacts=cache) as service:
                results = await service.submit_many(portfolio())
                return [float(result.squeezed[0]) for result in results], service.stats

        return asyncio.run(run())

    cold_values, _ = sweep()
    warm_snapshot = cache.stats()
    (warm_values, warm_stats) = run_once(benchmark, sweep)
    deltas = cache.stats().misses_since(warm_snapshot)

    reference_deviation = max(
        abs(
            value
            - float(
                steady_state_distribution(request.chain)[
                    request.chain.label_mask("operational")
                ].sum()
            )
        )
        for value, request in zip(cold_values, portfolio())
    )
    print()
    print(
        f"Warm Table 2 portfolio ({len(cold_values)} availabilities, "
        f"{len(TABLE2_STRATEGIES)} strategies x 2 lines): cache miss deltas "
        f"{deltas}, warm-sweep factorizations "
        f"{warm_stats.session.factorizations}, "
        f"max cold-vs-reference deviation {reference_deviation:.2e}"
    )
    # Gate (b): the warm repeat recomputes no long-run artifacts.
    assert deltas.get("factorization", 0) == 0
    assert deltas.get("bscc", 0) == 0
    assert deltas.get("stationary", 0) == 0
    assert warm_values == cold_values  # identical artifacts -> identical values
    # Gate (c): the batched portfolio matches the per-call reference.
    assert reference_deviation <= 1e-12
