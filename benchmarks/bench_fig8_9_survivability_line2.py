"""Figures 8 and 9 — survivability of Line 2 after Disaster 2.

Disaster 2 fails two pumps, one softener, one sand filter and the
reservoir.  The benchmark regenerates the recovery curves to service
intervals X1 and X3 for all five strategies and checks the paper's
qualitative findings:

* FFF-1 is clearly the slowest to recover to X1 (it repairs the reservoir
  late, and without the reservoir no service is possible),
* DED recovers fastest,
* between X1 and X3 the ordering of FRF and FFF flips (for X3 the sand
  filter matters more than the reservoir): with two crews, FFF-2 overtakes
  FRF-2.
"""

from __future__ import annotations

import numpy as np
from bench_support import run_once

from repro.casestudy.experiments import figure8_9_survivability_line2


def test_figure8_9_survivability_line2(benchmark, figure_points):
    figure8, figure9 = run_once(
        benchmark, figure8_9_survivability_line2, points=figure_points
    )

    print()
    print(figure8.to_text())
    print(figure9.to_text())

    for figure in (figure8, figure9):
        for values in figure.series.values():
            values = np.asarray(values)
            assert values[0] == 0.0
            assert np.all(np.diff(values) >= -1e-9)

    probe = 20.0  # hours
    # X1: FFF-1 is the clear laggard; DED the clear leader.
    x1 = {label: figure8.value_at(label, probe) for label in figure8.series}
    assert x1["FFF-1"] < min(x1["FRF-1"], x1["FRF-2"], x1["FFF-2"], x1["DED"]) - 0.1
    assert x1["DED"] >= max(value for label, value in x1.items() if label != "DED") - 1e-9
    assert x1["FRF-2"] > x1["FRF-1"]

    # X3: with two crews the ordering between FRF and FFF flips.
    x3 = {label: figure9.value_at(label, probe) for label in figure9.series}
    assert x1["FRF-2"] > x1["FFF-2"]          # FRF ahead for X1 ...
    assert x3["FFF-2"] > x3["FRF-2"]          # ... FFF ahead for X3.
