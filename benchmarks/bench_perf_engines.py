"""Perf benchmark — dense-BLAS vs sparse-CSR engines and the auto selector.

Three wall-clock gates over the pluggable numeric-engine layer
(:mod:`repro.ctmc.engines`), measured on the paper's own workloads with
every artifact cache warm (the steady-state service regime):

* **Dense >= 2x on the Fig. 8 Line 2 sweep** — the family's lumped
  quotients sit deep in the dense-win regime (~79 states for 2560), where
  one contiguous GEMM per step beats hundreds of scipy CSR dispatches.
  The comparison uses the engine layer's own per-sweep wall-clock counter
  (``sweep_seconds``), so only the vector-power walk is timed, and values
  must agree to 1e-9.

* **Auto <= 110% of always-sparse on the full paper portfolio** — the
  selector must never lose more than the gate's slack on a mixed registry
  (small quotients go dense, the big unlumped chains stay sparse), priced
  in end-to-end warm execution wall-clock.

* **float32 lane <= 1e-6 of float64** — the documented accuracy contract
  of the reduced-precision lane, checked on the Fig. 8 curves.

Every gate records its measurements into ``BENCH_engines.json``
(read-modify-write, override the path with ``REPRO_BENCH_JSON``) for the
CI artifact upload.  ``REPRO_BENCH_FAST=1`` switches to coarse grids.
"""

from __future__ import annotations

import json
import os
import time as time_module
from pathlib import Path

import numpy as np
from bench_support import run_once

from repro.analysis import AnalysisSession, SessionStats
from repro.casestudy.experiments import line_state_space
from repro.casestudy.facility import DISASTER_1, LINE2, PAPER_STRATEGIES
from repro.measures import survivability_request
from repro.service import ArtifactCache, paper_registry

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
LINE2_POINTS = 31 if FAST else 101
PORTFOLIO_POINTS = 15 if FAST else None
BENCH_JSON = Path(os.environ.get("REPRO_BENCH_JSON", "BENCH_engines.json"))

#: Warm repetitions per mode; best-of keeps scheduler noise out of ratios.
SWEEP_REPEATS = 7
PORTFOLIO_REPEATS = 3


def _record(key: str, payload: dict) -> None:
    """Merge one gate's measurements into the shared JSON document."""
    document = {}
    if BENCH_JSON.exists():
        try:
            document = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            document = {}
    document[key] = payload
    BENCH_JSON.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _fig8_requests():
    space = line_state_space(LINE2, PAPER_STRATEGIES[0])
    threshold = space.model.effective_service_tree().service_intervals()[0][0]
    times = np.linspace(0.0, 100.0, LINE2_POINTS)
    return [
        survivability_request(
            line_state_space(LINE2, configuration), DISASTER_1, threshold, times
        )
        for configuration in PAPER_STRATEGIES
    ]


def _fig8_session(mode, artifacts, dtype=None):
    stats = SessionStats()
    session = AnalysisSession(
        lump=True, stats=stats, artifacts=artifacts, engine=mode, dtype=dtype
    )
    for request in _fig8_requests():
        session.add(request)
    return session, stats


def _best_warm_sweep_seconds(session, stats):
    """Best-of-N pure sweep wall-clock of an already-warm session."""
    best = float("inf")
    for _ in range(SWEEP_REPEATS):
        before = stats.sweep_seconds
        session.execute()
        best = min(best, stats.sweep_seconds - before)
    return best


def test_dense_engine_beats_sparse_on_warm_fig8_sweep(benchmark):
    """The >= 2x dense-vs-sparse gate on the Fig. 8 Line 2 lumped quotients."""
    artifacts = ArtifactCache()

    sparse_session, sparse_stats = _fig8_session("sparse", artifacts)
    sparse_values = [result.squeezed for result in sparse_session.execute()]
    sparse_best = _best_warm_sweep_seconds(sparse_session, sparse_stats)

    dense_session, dense_stats = _fig8_session("dense", artifacts)
    dense_values = [result.squeezed for result in dense_session.execute()]  # warm
    dense_best = run_once(
        benchmark, _best_warm_sweep_seconds, dense_session, dense_stats
    )

    deviation = max(
        float(np.max(np.abs(np.asarray(a) - np.asarray(b))))
        for a, b in zip(dense_values, sparse_values)
    )
    ratio = sparse_best / max(dense_best, 1e-12)
    print()
    print(
        f"Fig. 8 Line 2 warm sweep ({len(sparse_values)} strategies, lumped): "
        f"sparse {sparse_best * 1e3:.2f}ms vs dense {dense_best * 1e3:.2f}ms "
        f"({ratio:.1f}x), max deviation {deviation:.2e}"
    )
    _record(
        "fig8_dense_vs_sparse",
        {
            "points": LINE2_POINTS,
            "sparse_seconds": sparse_best,
            "dense_seconds": dense_best,
            "speedup": ratio,
            "max_deviation": deviation,
        },
    )
    assert deviation <= 1e-9
    assert sparse_best >= 2.0 * dense_best, (
        f"dense engine only {ratio:.2f}x faster than sparse on the warm "
        f"Fig. 8 quotient sweep (gate: >= 2x)"
    )


def test_auto_selection_stays_close_to_always_sparse_portfolio(benchmark):
    """Auto may trade at most 10% against always-sparse on the full registry."""
    registry = paper_registry()
    portfolio = [
        request
        for name in registry.names
        for request in registry.expand(name, points=PORTFOLIO_POINTS)
    ]

    def best_warm_wall(mode):
        artifacts = ArtifactCache()
        session = AnalysisSession(lump=True, artifacts=artifacts, engine=mode)
        for request in portfolio:
            session.add(request)
        session.execute()  # cold run fills every cache, priced in neither mode
        best = float("inf")
        for _ in range(PORTFOLIO_REPEATS):
            started = time_module.perf_counter()
            session.execute()
            best = min(best, time_module.perf_counter() - started)
        return best

    sparse_best = best_warm_wall("sparse")
    auto_best = run_once(benchmark, best_warm_wall, "auto")

    ratio = auto_best / max(sparse_best, 1e-12)
    print()
    print(
        f"paper portfolio ({len(portfolio)} requests, warm): always-sparse "
        f"{sparse_best * 1e3:.1f}ms vs auto {auto_best * 1e3:.1f}ms "
        f"({ratio * 100:.0f}%)"
    )
    _record(
        "portfolio_auto_vs_sparse",
        {
            "requests": len(portfolio),
            "sparse_seconds": sparse_best,
            "auto_seconds": auto_best,
            "auto_over_sparse": ratio,
        },
    )
    assert auto_best <= 1.10 * sparse_best, (
        f"auto engine selection is {ratio * 100:.0f}% of always-sparse on the "
        f"warm portfolio (gate: <= 110%)"
    )


def test_float32_lane_accuracy_on_fig8(benchmark):
    """The float32 sweep lane honours its 1e-6 contract on real curves."""
    artifacts = ArtifactCache()

    f64_session, _ = _fig8_session("auto", artifacts)
    f64_values = [result.squeezed for result in f64_session.execute()]

    def f32_family():
        session, _ = _fig8_session("auto", artifacts, dtype="float32")
        return [result.squeezed for result in session.execute()]

    f32_values = run_once(benchmark, f32_family)

    deviation = max(
        float(np.max(np.abs(np.asarray(a) - np.asarray(b))))
        for a, b in zip(f32_values, f64_values)
    )
    print()
    print(
        f"Fig. 8 float32 lane: max deviation {deviation:.2e} from float64 "
        f"(contract: <= 1e-6)"
    )
    _record(
        "fig8_float32_lane",
        {"points": LINE2_POINTS, "max_deviation_vs_float64": deviation},
    )
    assert deviation <= 1e-6
