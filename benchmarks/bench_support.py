"""Helpers shared by the benchmark files."""

from __future__ import annotations


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under the benchmark timer and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
