"""Figure 3 — reliability of both process lines over 1000 hours (no repairs).

Checks the paper's observation that Line 2 is *more* reliable than Line 1
even though it has less redundancy (fewer pumps that can fail), and that
both curves are monotonically decreasing from 1.
"""

from __future__ import annotations

import numpy as np
from bench_support import run_once

from repro.casestudy.experiments import figure3_reliability


def test_figure3_reliability(benchmark, figure_points):
    result = run_once(benchmark, figure3_reliability, points=figure_points)

    print()
    print(result.to_text())

    line1 = np.asarray(result.series["line1"])
    line2 = np.asarray(result.series["line2"])

    assert line1[0] == 1.0 and line2[0] == 1.0
    assert np.all(np.diff(line1) <= 1e-12) and np.all(np.diff(line2) <= 1e-12)
    # Line 2 is more reliable than Line 1 at every positive time point.
    assert np.all(line2[1:] >= line1[1:])
    # Both lines have essentially failed by 1000 h (the figure's right edge).
    assert line1[-1] < 0.01 and line2[-1] < 0.02
    # And the gap is visible in the mid-range, as in the published figure.
    assert result.value_at("line2", 200.0) - result.value_at("line1", 200.0) > 0.05
