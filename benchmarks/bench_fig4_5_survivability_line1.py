"""Figures 4 and 5 — survivability of Line 1 after Disaster 1 (all pumps failed).

Regenerates the recovery curves to service intervals X1 and X2 for DED,
FRF-1 and FRF-2 and checks the paper's findings:

* DED recovers fastest, FRF-2 second, FRF-1 slowest (the extra crew speeds
  up recovery),
* recovery to X2 (two pumps needed) is slower than recovery to X1 (one
  pump suffices) for every strategy,
* all curves start at 0 and increase towards 1.
"""

from __future__ import annotations

import numpy as np
from bench_support import run_once

from repro.casestudy.experiments import figure4_5_survivability_line1


def test_figure4_5_survivability_line1(benchmark, figure_points):
    figure4, figure5 = run_once(
        benchmark, figure4_5_survivability_line1, points=figure_points
    )

    print()
    print(figure4.to_text())
    print(figure5.to_text())

    for figure in (figure4, figure5):
        for label, values in figure.series.items():
            values = np.asarray(values)
            assert values[0] == 0.0, f"{label} must start unrecovered"
            assert np.all(np.diff(values) >= -1e-9), f"{label} must be non-decreasing"
            assert values[-1] <= 1.0 + 1e-9

    probe = 1.0  # hour
    for figure in (figure4, figure5):
        ded = figure.value_at("DED", probe)
        frf1 = figure.value_at("FRF-1", probe)
        frf2 = figure.value_at("FRF-2", probe)
        assert ded > frf2 > frf1

    # Recovery to the higher service interval X2 is slower than to X1.
    for label in figure4.series:
        assert figure4.value_at(label, probe) > figure5.value_at(label, probe)
