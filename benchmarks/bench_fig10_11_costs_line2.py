"""Figures 10 and 11 — instantaneous and accumulated cost, Line 2, Disaster 2.

Checks the paper's cost findings for Line 2 after Disaster 2:

* the initial instantaneous cost is 15 (five failed components at 3/h) for
  every queued strategy,
* FFF-1 has the slowest convergence of the instantaneous cost and by far
  the highest accumulated cost (it keeps re-repairing fast-failing pumps
  while expensive components stay broken),
* the FRF strategies accumulate the least cost, with FRF-1 and FRF-2 close
  together (the paper recommends FRF-2 as it also recovers fastest).
"""

from __future__ import annotations

import numpy as np
import pytest
from bench_support import run_once

from repro.casestudy.experiments import figure10_11_costs_line2


def test_figure10_11_costs_line2(benchmark, figure_points):
    figure10, figure11 = run_once(benchmark, figure10_11_costs_line2, points=figure_points)

    print()
    print(figure10.to_text())
    print(figure11.to_text())

    for label, values in figure10.series.items():
        assert values[0] == pytest.approx(15.0, abs=1e-6), label

    probe = 20.0
    instantaneous = {label: figure10.value_at(label, probe) for label in figure10.series}
    assert instantaneous["FFF-1"] > max(
        value for label, value in instantaneous.items() if label != "FFF-1"
    )

    accumulated = {label: figure11.final_value(label) for label in figure11.series}
    assert accumulated["FFF-1"] > max(
        value for label, value in accumulated.items() if label != "FFF-1"
    ) + 50.0
    # The FRF pair is the cheapest and lies within a few percent of each other.
    cheapest_two = sorted(accumulated, key=accumulated.get)[:2]
    assert set(cheapest_two) == {"FRF-1", "FRF-2"}
    assert abs(accumulated["FRF-1"] - accumulated["FRF-2"]) / accumulated["FRF-1"] < 0.05

    for values in figure11.series.values():
        assert np.all(np.diff(np.asarray(values)) >= -1e-9)
