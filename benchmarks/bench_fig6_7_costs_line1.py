"""Figures 6 and 7 — instantaneous and accumulated cost, Line 1, Disaster 1.

Checks the paper's cost findings for Line 1:

* right after the disaster the instantaneous cost is 12 for the queued
  strategies (four failed pumps at 3 per hour) and 19 for DED (plus seven
  idle dedicated crews),
* DED has the highest instantaneous cost throughout and the highest
  accumulated cost,
* FRF-1's instantaneous cost converges more slowly than FRF-2's, and FRF-2
  accumulates less cost than FRF-1 over the 10-hour window of Figure 7.
"""

from __future__ import annotations

import numpy as np
import pytest
from bench_support import run_once

from repro.casestudy.experiments import figure6_7_costs_line1


def test_figure6_7_costs_line1(benchmark, figure_points):
    figure6, figure7 = run_once(benchmark, figure6_7_costs_line1, points=figure_points)

    print()
    print(figure6.to_text())
    print(figure7.to_text())

    # Initial instantaneous cost: 4 failed pumps * 3/h (+ 7 idle crews for DED).
    assert figure6.series["FRF-1"][0] == pytest.approx(12.0, abs=1e-6)
    assert figure6.series["FRF-2"][0] == pytest.approx(12.0, abs=1e-6)
    assert figure6.series["DED"][0] == pytest.approx(19.0, abs=1e-6)

    times = figure6.times
    ded = np.asarray(figure6.series["DED"])
    frf1 = np.asarray(figure6.series["FRF-1"])
    frf2 = np.asarray(figure6.series["FRF-2"])
    assert np.all(ded >= frf1 - 1e-9) and np.all(ded >= frf2 - 1e-9)
    # After the first hour the single crew lags behind the double crew.
    late = times >= 1.0
    assert np.all(frf1[late] >= frf2[late] - 1e-9)

    # Accumulated cost (Figure 7): DED most expensive; FRF-2 cheaper than FRF-1.
    assert figure7.final_value("DED") > figure7.final_value("FRF-1")
    assert figure7.final_value("DED") > figure7.final_value("FRF-2")
    assert figure7.final_value("FRF-2") < figure7.final_value("FRF-1")
    # Accumulated cost is increasing in time for every strategy.
    for values in figure7.series.values():
        assert np.all(np.diff(np.asarray(values)) >= -1e-9)
