"""Perf benchmark — batched analysis sessions vs per-curve measure calls.

Two sharing mechanisms of the analysis session are measured on the paper's
figure families, in the engine's own work units (deltas of
:data:`repro.ctmc.uniformization.ENGINE_STATS`, so the numbers are observed,
not estimated):

* **Lumped shared sweeps (Fig. 4/5 family, Line 1, Disaster 1)** — all six
  curves (3 strategies × service intervals X1/X2) as one session with
  ``lump=True``.  Each (chain, rate, grid) group runs exactly one sweep on
  its ordinary-lumpability quotient, whose operator has orders of magnitude
  fewer non-zeros than the full chain, so the *sparse ops* (``sparse_flops``
  = nnz × columns per operator application) collapse.  Acceptance gate:
  >= 3x fewer sparse ops than the per-curve calls, values within 1e-9.

* **Multi-initial batching (Fig. 8 family, Line 2)** — the X1 recovery
  curve of all five paper strategies for *both* disasters as one unlumped
  session.  Per strategy the two disasters differ only in the initial
  distribution, so the planner merges them into one group and the executor
  propagates a 2-row initial block: the *operator applications* halve while
  the values stay identical.

Setting ``REPRO_BENCH_FAST=1`` (used by the CI regression step) switches to
coarser grids; both gates hold there too.
"""

from __future__ import annotations

import os
import time as time_module

import numpy as np
from bench_support import run_once

from repro.analysis import AnalysisSession, SessionStats
from repro.arcade.repair import RepairStrategy
from repro.casestudy.experiments import line_state_space
from repro.casestudy.facility import (
    DISASTER_1,
    DISASTER_2,
    LINE1,
    LINE2,
    PAPER_STRATEGIES,
    StrategyConfiguration,
)
from repro.ctmc.uniformization import ENGINE_STATS
from repro.measures import survivability, survivability_request

EPSILON = 1e-10
FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
LINE1_POINTS = 31 if FAST else 91
LINE2_POINTS = 31 if FAST else 101

_LINE1_STRATEGIES = (
    StrategyConfiguration(RepairStrategy.DEDICATED, 1),
    StrategyConfiguration(RepairStrategy.FASTEST_REPAIR_FIRST, 1),
    StrategyConfiguration(RepairStrategy.FASTEST_REPAIR_FIRST, 2),
)


def _interval_threshold(line, interval_index):
    space = line_state_space(line, _LINE1_STRATEGIES[0])
    return space.model.effective_service_tree().service_intervals()[interval_index][0]


def _per_curve_baseline(curve_specs):
    """Evaluate every curve with its own legacy measure call, measuring work."""
    flops_before = ENGINE_STATS.sparse_flops
    applies_before = ENGINE_STATS.applies
    started = time_module.perf_counter()
    values = [
        survivability(space, disaster, threshold, times)
        for space, disaster, threshold, times in curve_specs
    ]
    seconds = time_module.perf_counter() - started
    return (
        values,
        ENGINE_STATS.sparse_flops - flops_before,
        ENGINE_STATS.applies - applies_before,
        seconds,
    )


def test_lumped_family_sweep_fig4_5(benchmark):
    """The whole Fig. 4/5 family as one lumped session — the >= 3x gate."""
    times = np.linspace(0.0, 4.5, LINE1_POINTS)
    curve_specs = [
        (line_state_space(LINE1, configuration), DISASTER_1,
         _interval_threshold(LINE1, interval_index), times)
        for interval_index in (0, 1)
        for configuration in _LINE1_STRATEGIES
    ]

    def batched_family():
        stats = SessionStats()
        session = AnalysisSession(lump=True, stats=stats)
        indices = [
            session.add(survivability_request(space, disaster, threshold, grid))
            for space, disaster, threshold, grid in curve_specs
        ]
        results = session.execute()
        return [results[index].squeezed for index in indices], stats

    flops_before = ENGINE_STATS.sparse_flops
    (batched_values, stats) = run_once(benchmark, batched_family)
    batched_flops = ENGINE_STATS.sparse_flops - flops_before

    baseline_values, baseline_flops, _, baseline_seconds = _per_curve_baseline(
        curve_specs
    )

    deviation = max(
        float(np.max(np.abs(np.asarray(a) - np.asarray(b))))
        for a, b in zip(batched_values, baseline_values)
    )
    ratio = baseline_flops / max(batched_flops, 1)
    print()
    print(
        f"Fig. 4/5 family ({len(curve_specs)} curves): lumped session "
        f"{batched_flops} sparse flops vs per-curve {baseline_flops} "
        f"({ratio:.1f}x reduction, baseline wall {baseline_seconds:.3f}s), "
        f"lumped {stats.lumped_states_before}->{stats.lumped_states_after} states, "
        f"max deviation {deviation:.2e}"
    )
    assert stats.sweeps == stats.groups  # one sweep per (chain, rate, grid) group
    assert baseline_flops >= 3 * batched_flops
    assert deviation <= 1e-9


def test_multi_initial_batching_fig8(benchmark):
    """Both disasters of every Fig. 8 strategy share one sweep per chain."""
    times = np.linspace(0.0, 100.0, LINE2_POINTS)
    threshold = _interval_threshold(LINE2, 0)
    curve_specs = [
        (line_state_space(LINE2, configuration), disaster, threshold, times)
        for configuration in PAPER_STRATEGIES
        for disaster in (DISASTER_1, DISASTER_2)
    ]

    def batched_family():
        stats = SessionStats()
        session = AnalysisSession(stats=stats)
        indices = [
            session.add(survivability_request(space, disaster, threshold, grid))
            for space, disaster, threshold, grid in curve_specs
        ]
        results = session.execute()
        return [results[index].squeezed for index in indices], stats

    applies_before = ENGINE_STATS.applies
    (batched_values, stats) = run_once(benchmark, batched_family)
    batched_applies = ENGINE_STATS.applies - applies_before

    baseline_values, _, baseline_applies, baseline_seconds = _per_curve_baseline(
        curve_specs
    )

    deviation = max(
        float(np.max(np.abs(np.asarray(a) - np.asarray(b))))
        for a, b in zip(batched_values, baseline_values)
    )
    ratio = baseline_applies / max(batched_applies, 1)
    print()
    print(
        f"Fig. 8 family x 2 disasters ({len(curve_specs)} curves): batched "
        f"session {batched_applies} operator applications vs per-curve "
        f"{baseline_applies} ({ratio:.1f}x reduction, baseline wall "
        f"{baseline_seconds:.3f}s), {stats.groups} groups for "
        f"{stats.requests} requests, max deviation {deviation:.2e}"
    )
    assert stats.groups == len(PAPER_STRATEGIES)  # disasters merged per strategy
    assert stats.sweeps == stats.groups
    assert baseline_applies >= 1.9 * batched_applies
    assert deviation <= 1e-12  # same sweep mathematics, only batched
