"""Table 1 — state-space size per repair strategy.

Regenerates the state and transition counts of both process lines for
DED, FRF-1/2 and FFF-1/2 and checks the paper's qualitative observations:

* dedicated repair yields the minimal ``2^n`` state spaces (exact match
  with the published numbers for Line 1: 2048 states, 22528 transitions),
* the queued strategies are much larger,
* FRF and FFF have identical state counts,
* adding a repair crew leaves the state count unchanged and only increases
  the number of transitions.
"""

from __future__ import annotations

from bench_support import run_once

from repro.casestudy.experiments import clear_cache, table1_state_space


def test_table1_state_space(benchmark):
    clear_cache()  # measure construction, not cache hits
    result = run_once(benchmark, table1_state_space)

    print()
    print(result.to_text())

    dedicated = result.row_by("strategy", "DED")
    assert dedicated[1] == 2**11 and dedicated[2] == 11 * 2**11  # Line 1 exact
    assert dedicated[3] == 2**9  # Line 2 exact

    frf1 = result.row_by("strategy", "FRF-1")
    frf2 = result.row_by("strategy", "FRF-2")
    fff1 = result.row_by("strategy", "FFF-1")
    fff2 = result.row_by("strategy", "FFF-2")

    # Queued strategies dwarf the dedicated state space.
    assert frf1[1] > 10 * dedicated[1]
    assert frf1[3] > 4 * dedicated[3]
    # FRF and FFF coincide in size; crews only add transitions.
    assert frf1[1] == fff1[1] == frf2[1] == fff2[1]
    assert frf1[3] == fff1[3] == frf2[3] == fff2[3]
    assert frf2[2] > frf1[2] and fff2[2] > fff1[2]
    assert frf2[4] > frf1[4] and fff2[4] > fff1[4]
