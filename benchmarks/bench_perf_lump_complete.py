"""Perf benchmark — complete lumping coverage (interval-until + long-run).

PR 2 lumped the regular bounded-reachability sweeps (Fig. 4/5); this gate
covers the two measure families that stayed on full chains until PR 10:

* **Interval-until bundles (Fig. 8/9 family)** — the Line 2 survivability
  thresholds with a strictly positive lower bound ``a``, one bundle per
  repair strategy.  Lumped, each bundle runs its backward phase on the
  quotient of the target-absorbed chain and its forward phase on the
  quotient of the safe-restricted chain (seeded with the quantized phase-2
  values).  Gates: >= 3x sweep-work reduction (``equivalent_nnz``, which
  unifies the CSR and dense-BLAS lanes), <= 1e-12 agreement with the
  unlumped bundle, and a warm repeat with **zero quotient-kind cache
  misses**.

* **Table 2 long-run portfolio** — the steady-state availability of every
  (line, strategy) pair.  Lumped, the BSCC decomposition and the stationary
  solves run on quotients seeded with the availability indicator, so the
  factorized systems shrink.  Gates: quotient state counts strictly below
  the full chains, <= 1e-12 agreement with the unlumped portfolio, and a
  warm repeat with zero quotient/factorization/BSCC/stationary misses.

Both sessions run at ``epsilon=1e-14`` so Poisson-truncation noise sits
well below the 1e-12 agreement gates (the lumped backward phase keys its
Fox-Glynn windows on the quotient's own, smaller uniformization rate, so
the two lanes genuinely use different windows).

Measurements land in ``BENCH_lump_complete.json`` (override with
``REPRO_BENCH_LUMP_JSON``) for the CI artifact upload.  Setting
``REPRO_BENCH_FAST=1`` trims the portfolio to two repair strategies; all
gates hold there too.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
from bench_support import run_once

from repro.analysis import AnalysisSession, MeasureKind, MeasureRequest, SessionStats
from repro.casestudy.experiments import line_service_interval_lower, line_state_space
from repro.casestudy.facility import DISASTER_2, LINE1, LINE2, PAPER_STRATEGIES
from repro.measures import steady_state_availability_request
from repro.service import ArtifactCache

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
STRATEGIES = PAPER_STRATEGIES[:2] if FAST else PAPER_STRATEGIES
INTERVAL_POINTS = 7 if FAST else 15
INTERVAL_LOWER = 10.0
BENCH_JSON = Path(os.environ.get("REPRO_BENCH_LUMP_JSON", "BENCH_lump_complete.json"))


def _record(key: str, payload: dict) -> None:
    """Merge one gate's measurements into the shared JSON document."""
    document = {}
    if BENCH_JSON.exists():
        try:
            document = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            document = {}
    document[key] = payload
    BENCH_JSON.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _interval_requests() -> list[MeasureRequest]:
    """The Fig. 8/9 survivability family as interval-until measures.

    Same Line 2 chains, disaster and service threshold as the paper's
    figures, but with a positive lower bound: "the service level is
    recovered somewhere in ``[a, t]``" — the measure family the figures'
    plain reachability curves degenerate from at ``a = 0``.
    """
    threshold = line_service_interval_lower(LINE2, 0)
    times = INTERVAL_LOWER + np.linspace(0.0, 80.0, INTERVAL_POINTS)
    requests = []
    for configuration in STRATEGIES:
        space = line_state_space(LINE2, configuration)
        requests.append(
            MeasureRequest(
                chain=space.chain,
                times=times,
                kind=MeasureKind.INTERVAL_REACHABILITY,
                target=space.states_with_service_at_least(threshold),
                lower=INTERVAL_LOWER,
                initial_distributions=space.initial_distribution_for_disaster(
                    DISASTER_2
                ),
                tag=configuration.label,
            )
        )
    return requests


def _run_interval(lump: bool, cache: ArtifactCache | None):
    stats = SessionStats()
    session = AnalysisSession(
        lump=lump, artifacts=cache, stats=stats, epsilon=1e-14
    )
    indices = [session.add(request) for request in _interval_requests()]
    results = session.execute()
    values = [np.asarray(results[index].squeezed) for index in indices]
    blocks = [results[index].lumped_states for index in indices]
    return values, blocks, stats


def test_interval_bundles_run_on_quotients(benchmark):
    """Fig. 8/9 interval bundles: quotient sweeps, >= 3x work reduction."""
    unlumped_values, unlumped_blocks, unlumped_stats = _run_interval(False, None)
    assert all(blocks is None for blocks in unlumped_blocks)

    cache = ArtifactCache()
    cold_values, cold_blocks, cold_stats = _run_interval(True, cache)
    warm_snapshot = cache.stats()
    (warm_values, _, _) = run_once(benchmark, lambda: _run_interval(True, cache))
    deltas = cache.stats().misses_since(warm_snapshot)

    deviation = max(
        float(np.max(np.abs(lumped - unlumped)))
        for lumped, unlumped in zip(cold_values, unlumped_values)
    )
    reduction = unlumped_stats.equivalent_nnz / max(cold_stats.equivalent_nnz, 1)
    full_states = _interval_requests()[0].chain.num_states
    print()
    print(
        f"Fig. 8/9 interval bundles ({len(STRATEGIES)} strategies, "
        f"a={INTERVAL_LOWER}, {INTERVAL_POINTS} points): quotient blocks "
        f"{cold_blocks} vs {full_states} full states, equivalent_nnz "
        f"{unlumped_stats.equivalent_nnz} -> {cold_stats.equivalent_nnz} "
        f"({reduction:.1f}x), max deviation {deviation:.2e}, warm miss "
        f"deltas {deltas}"
    )
    _record(
        "interval_bundles",
        {
            "strategies": len(STRATEGIES),
            "full_states": full_states,
            "quotient_blocks": cold_blocks,
            "equivalent_nnz_unlumped": unlumped_stats.equivalent_nnz,
            "equivalent_nnz_lumped": cold_stats.equivalent_nnz,
            "reduction": reduction,
            "max_deviation": deviation,
            "warm_quotient_misses": deltas.get("quotient", 0),
        },
    )
    # Gate (a): every bundle actually ran on a quotient.
    assert all(blocks is not None and blocks < full_states for blocks in cold_blocks)
    # Gate (b): >= 3x sweep-work reduction on the lumped bundles.
    assert reduction >= 3.0
    # Gate (c): lumped values agree with the unlumped bundles.
    assert deviation <= 1e-12
    # Gate (d): the warm repeat rebuilds no quotients and re-lumps nothing.
    assert deltas.get("quotient", 0) == 0
    for warm, cold in zip(warm_values, cold_values):
        np.testing.assert_array_equal(warm, cold)


def _table2_requests() -> list[MeasureRequest]:
    return [
        steady_state_availability_request(
            line_state_space(line, configuration),
            tag=(line, configuration.label),
        )
        for line in (LINE1, LINE2)
        for configuration in STRATEGIES
    ]


def _run_table2(lump: bool, cache: ArtifactCache | None):
    stats = SessionStats()
    session = AnalysisSession(lump=lump, artifacts=cache, stats=stats)
    indices = [session.add(request) for request in _table2_requests()]
    results = session.execute()
    values = [float(results[index].squeezed[0]) for index in indices]
    blocks = [results[index].lumped_states for index in indices]
    return values, blocks, stats


def test_table2_longrun_runs_on_quotients(benchmark):
    """Table 2 portfolio: factorized systems shrink to quotient size."""
    unlumped_values, _, _ = _run_table2(False, None)

    cache = ArtifactCache()
    cold_values, cold_blocks, cold_stats = _run_table2(True, cache)
    warm_snapshot = cache.stats()
    (warm_values, _, _) = run_once(benchmark, lambda: _run_table2(True, cache))
    deltas = cache.stats().misses_since(warm_snapshot)

    deviation = max(
        abs(lumped - unlumped)
        for lumped, unlumped in zip(cold_values, unlumped_values)
    )
    full_states = [request.chain.num_states for request in _table2_requests()]
    print()
    print(
        f"Table 2 long-run portfolio ({len(cold_values)} availabilities): "
        f"quotient blocks {cold_blocks} vs full states {full_states}, "
        f"lumped {cold_stats.lumped_states_before} -> "
        f"{cold_stats.lumped_states_after} states across "
        f"{cold_stats.lumped_groups} groups, max deviation {deviation:.2e}, "
        f"warm miss deltas {deltas}"
    )
    _record(
        "table2_longrun",
        {
            "availabilities": len(cold_values),
            "full_states": full_states,
            "quotient_blocks": cold_blocks,
            "states_before": cold_stats.lumped_states_before,
            "states_after": cold_stats.lumped_states_after,
            "max_deviation": deviation,
            "warm_quotient_misses": deltas.get("quotient", 0),
            "warm_factorization_misses": deltas.get("factorization", 0),
        },
    )
    # Gate (a): every availability solved on a strictly smaller quotient.
    assert all(
        blocks is not None and blocks < states
        for blocks, states in zip(cold_blocks, full_states)
    )
    assert cold_stats.lumped_states_after < cold_stats.lumped_states_before
    # Gate (b): lumped values agree with the unlumped portfolio.
    assert deviation <= 1e-12
    # Gate (c): the warm repeat recomputes no quotients or long-run systems.
    assert deltas.get("quotient", 0) == 0
    assert deltas.get("factorization", 0) == 0
    assert deltas.get("bscc", 0) == 0
    assert deltas.get("stationary", 0) == 0
    assert warm_values == cold_values
