"""Perf benchmark — the async scenario service vs one batched session.

Two acceptance gates of the service subsystem, measured in the engine's own
work units and the artifact cache's own counters (observed, not estimated):

* **Cross-client coalescing (Fig. 4/5 family, Line 1, Disaster 1)** — N
  concurrent clients each submit the whole six-curve family; the
  dispatcher's coalescing window merges all N·6 submissions into one flush
  whose planner groups them exactly like a single batched session.  Gate:
  the service performs **no more uniformization sweeps** than one PR-2
  batched session of the family, and every client's curves agree with the
  session values to <= 1e-12.

* **Warm artifact cache (repeat portfolio)** — the same lumped portfolio is
  swept twice through services sharing one process-wide
  :class:`repro.service.ArtifactCache`.  Gate: the second sweep reports
  **zero quotient and zero Fox–Glynn misses** (and zero transform/operator
  misses), i.e. the FRF-1/FFF-1 shared-``q`` window recomputation and the
  per-session lumping refinement are gone.

Setting ``REPRO_BENCH_FAST=1`` (used by the CI regression step) switches to
coarser grids; both gates hold there too.
"""

from __future__ import annotations

import asyncio
import os
import time as time_module

import numpy as np
from bench_support import run_once

from repro.analysis import AnalysisSession, SessionStats
from repro.service import ArtifactCache, ScenarioService, paper_registry

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
POINTS = 31 if FAST else 91
NUM_CLIENTS = 4

_REGISTRY = paper_registry()


def _family_requests():
    """The Fig. 4/5 curve family (3 strategies x intervals X1/X2).

    Expanded from the registry spec, so the benchmark gates exactly the
    workload the service serves — the family is defined once.
    """
    return _REGISTRY.expand("fig4_5", points=POINTS)


def test_concurrent_clients_coalesce_to_one_session(benchmark):
    """N clients' identical families -> no more sweeps than one session."""
    family = _family_requests()

    baseline_stats = SessionStats()
    baseline = AnalysisSession(stats=baseline_stats)
    indices = [baseline.add(request) for request in family]
    baseline_results = baseline.execute()
    reference = [baseline_results[index].squeezed for index in indices]

    def serve_clients():
        async def run():
            service = ScenarioService(
                artifacts=ArtifactCache(),
                coalesce_window=5.0,  # the size cap below triggers the flush
                max_batch=NUM_CLIENTS * len(family),
            )
            async with service:
                async def client():
                    results = await service.submit_many(_family_requests())
                    return [result.squeezed for result in results]

                curves = await asyncio.gather(
                    *(client() for _ in range(NUM_CLIENTS))
                )
            return curves, service.stats

        return asyncio.run(run())

    started = time_module.perf_counter()
    curves, stats = run_once(benchmark, serve_clients)
    seconds = time_module.perf_counter() - started

    deviation = max(
        float(np.max(np.abs(np.asarray(curve) - np.asarray(expected))))
        for client_curves in curves
        for curve, expected in zip(client_curves, reference)
    )
    print()
    print(
        f"Fig. 4/5 family x {NUM_CLIENTS} clients ({stats.session.requests} "
        f"submissions): {stats.flushes} flush(es), {stats.session.sweeps} sweeps "
        f"vs single-session {baseline_stats.sweeps} "
        f"({seconds:.3f}s wall), max deviation {deviation:.2e}"
    )
    assert stats.session.requests == NUM_CLIENTS * len(family)
    # The tentpole gate: coalescing must not cost a single extra sweep.
    assert stats.session.sweeps <= baseline_stats.sweeps
    assert deviation <= 1e-12


def test_repeat_portfolio_hits_warm_artifact_cache(benchmark):
    """Second portfolio sweep: zero quotient / Fox-Glynn recomputation."""
    cache = ArtifactCache()

    def sweep_portfolio():
        family = _family_requests()

        async def run():
            service = ScenarioService(
                artifacts=cache,
                lump=True,
                coalesce_window=5.0,  # the size cap (= family size) flushes
                max_batch=len(family),
            )
            async with service:
                results = await service.submit_many(family)
                return [result.squeezed for result in results], service.stats

        return asyncio.run(run())

    cold_curves, cold_stats = sweep_portfolio()
    warm_snapshot = cache.stats()
    warm_curves, warm_stats = run_once(benchmark, sweep_portfolio)
    deltas = cache.stats().misses_since(warm_snapshot)

    deviation = max(
        float(np.max(np.abs(np.asarray(warm) - np.asarray(cold))))
        for warm, cold in zip(warm_curves, cold_curves)
    )
    print()
    print(
        f"Warm portfolio sweep: cache miss deltas {deltas}, "
        f"{warm_stats.session.sweeps} warm sweeps on cached quotients "
        f"(lumped {cold_stats.session.lumped_states_before}->"
        f"{cold_stats.session.lumped_states_after} states on the cold run), "
        f"max warm/cold deviation {deviation:.2e}"
    )
    # The cache gate: repeats recompute no quotients, windows, transforms
    # or operators.
    assert deltas.get("quotient", 0) == 0
    assert deltas.get("foxglynn", 0) == 0
    assert deltas.get("transformed", 0) == 0
    assert deltas.get("operator", 0) == 0
    assert deviation == 0.0  # identical artifacts -> identical values
