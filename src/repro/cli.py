"""Command-line front end for the water-treatment experiments.

Usage examples::

    python -m repro table1 table2        # reproduce the two tables
    python -m repro fig3 --points 51     # reliability curves as CSV + ASCII
    python -m repro all --fast           # everything, on coarse grids
    python -m repro all --output results # also write CSV files per experiment

Every experiment name matches the table/figure numbering of the paper; see
DESIGN.md for the experiment index.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.casestudy import experiments as exp

#: Experiment name -> callable returning one result or a tuple of results.
_EXPERIMENTS = {
    "table1": lambda points: exp.table1_state_space(),
    "table2": lambda points: exp.table2_availability(),
    "fig3": lambda points: exp.figure3_reliability(points=points),
    "fig4": lambda points: exp.figure4_5_survivability_line1(points=points)[0],
    "fig5": lambda points: exp.figure4_5_survivability_line1(points=points)[1],
    "fig6": lambda points: exp.figure6_7_costs_line1(points=points)[0],
    "fig7": lambda points: exp.figure6_7_costs_line1(points=points)[1],
    "fig8": lambda points: exp.figure8_9_survivability_line2(points=points)[0],
    "fig9": lambda points: exp.figure8_9_survivability_line2(points=points)[1],
    "fig10": lambda points: exp.figure10_11_costs_line2(points=points)[0],
    "fig11": lambda points: exp.figure10_11_costs_line2(points=points)[1],
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-watertreatment",
        description=(
            "Reproduce the tables and figures of 'Evaluating Repair Strategies for a "
            "Water-Treatment Facility using Arcade' (DSN 2010)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=[*_EXPERIMENTS.keys(), "all"],
        help="which tables/figures to reproduce ('all' runs every experiment)",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=None,
        help="number of grid points for figure curves (default: 101, or 21 with --fast)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use coarse time grids (quick smoke run)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory to write one CSV file per experiment into",
    )
    parser.add_argument(
        "--no-plot",
        action="store_true",
        help="suppress the ASCII plots (print CSV only)",
    )
    return parser


def _render(name: str, result, args: argparse.Namespace) -> str:
    parts = []
    if hasattr(result, "to_text") and not args.no_plot:
        parts.append(result.to_text())
    if hasattr(result, "to_csv") and (args.no_plot or args.output is None):
        if args.no_plot:
            parts.append(result.to_csv())
    if args.output is not None and hasattr(result, "to_csv"):
        args.output.mkdir(parents=True, exist_ok=True)
        path = args.output / f"{name}.csv"
        path.write_text(result.to_csv() + "\n", encoding="utf-8")
        parts.append(f"[wrote {path}]")
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro-watertreatment`` script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    points = args.points if args.points is not None else (21 if args.fast else 101)

    names = list(_EXPERIMENTS) if "all" in args.experiments else list(dict.fromkeys(args.experiments))
    for name in names:
        result = _EXPERIMENTS[name](points)
        print(_render(name, result, args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
