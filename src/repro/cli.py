"""Command-line front end for the water-treatment experiments.

Usage examples::

    python -m repro table1 table2        # reproduce the two tables
    python -m repro fig3 --points 51     # reliability curves as CSV + ASCII
    python -m repro fig4 fig5            # one shared analysis session
    python -m repro fig8 --lump          # solve on lumped quotient chains
    python -m repro all --fast           # everything, on coarse grids
    python -m repro all --output results # also write CSV files per experiment
    python -m repro serve --clients 4 --repeat 2   # scenario service sweep
    python -m repro serve --metrics      # plus a /metrics-style text dump
    python -m repro serve --http 8080    # HTTP front end (POST /scenario)
    python -m repro serve --http 8080 --shards 2 --max-pending 256 \
        --timeout 30                     # sharded, with backpressure
    python -m repro serve --http 8080 --shards 2 --restart-limit 5 \
        --retry-limit 3 --heartbeat-interval 0.5   # tuned supervision
    python -m repro optimize --line 1 --objective survivability
    python -m repro optimize --line 2 --objective availability --crews 1

``serve --http`` drains gracefully on SIGTERM/SIGINT: the listener closes,
in-flight requests finish through the service's ``close(drain=True)`` path,
and new requests are answered ``503`` until the process exits.

``optimize`` treats repair assignment as a CTMDP (see ``repro.optimize``):
policy iteration for long-run objectives, coalesced rollout for
finite-horizon ones, with the paper's fixed strategies as baselines.

Every experiment name matches the table/figure numbering of the paper; see
DESIGN.md for the experiment index.

Paired figures (fig4/fig5, fig6/fig7, fig8/fig9, fig10/fig11) come from one
*family* computation: requesting both members in a single invocation runs
the family — and its batched analysis session — exactly once.  The session
work counters (groups, sweeps, matvecs, lumping compression) are printed at
the end of every run that computed figures; ``--no-batched`` plans one
sweep per curve (the legacy behaviour) for comparison, and ``--lump``
solves every group on its ordinary-lumpability quotient.

``serve`` sweeps whole scenario portfolios through the asyncio scenario
service (:mod:`repro.service`): ``--clients N`` concurrent clients each
submit every selected scenario, the dispatcher coalesces their requests
into shared sweeps, and ``--repeat K`` repeats the portfolio to show the
process-wide artifact cache eliminating quotient/window recomputation on
warm runs.  Coalescing and cache statistics are printed per round.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from pathlib import Path

from repro.analysis import SessionStats
from repro.casestudy import experiments as exp

#: Family name -> callable(points, lump, batched, stats) returning the
#: family's result tuple.  Each family runs at most once per invocation.
_FAMILIES = {
    "table1": lambda points, lump, batched, stats: (exp.table1_state_space(),),
    "table2": lambda points, lump, batched, stats: (
        exp.table2_availability(stats=stats),
    ),
    "fig3": lambda points, lump, batched, stats: (
        exp.figure3_reliability(points=points, lump=lump, batched=batched, stats=stats),
    ),
    "fig45": lambda points, lump, batched, stats: exp.figure4_5_survivability_line1(
        points=points, lump=lump, batched=batched, stats=stats
    ),
    "fig67": lambda points, lump, batched, stats: exp.figure6_7_costs_line1(
        points=points, lump=lump, batched=batched, stats=stats
    ),
    "fig89": lambda points, lump, batched, stats: exp.figure8_9_survivability_line2(
        points=points, lump=lump, batched=batched, stats=stats
    ),
    "fig1011": lambda points, lump, batched, stats: exp.figure10_11_costs_line2(
        points=points, lump=lump, batched=batched, stats=stats
    ),
}

#: Experiment name -> (family name, index into the family's result tuple).
_EXPERIMENTS = {
    "table1": ("table1", 0),
    "table2": ("table2", 0),
    "fig3": ("fig3", 0),
    "fig4": ("fig45", 0),
    "fig5": ("fig45", 1),
    "fig6": ("fig67", 0),
    "fig7": ("fig67", 1),
    "fig8": ("fig89", 0),
    "fig9": ("fig89", 1),
    "fig10": ("fig1011", 0),
    "fig11": ("fig1011", 1),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-watertreatment",
        description=(
            "Reproduce the tables and figures of 'Evaluating Repair Strategies for a "
            "Water-Treatment Facility using Arcade' (DSN 2010)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=[*_EXPERIMENTS.keys(), "all"],
        help="which tables/figures to reproduce ('all' runs every experiment)",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=None,
        help="number of grid points for figure curves (default: 101, or 21 with --fast)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use coarse time grids (quick smoke run)",
    )
    parser.add_argument(
        "--batched",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "plan each figure family as one analysis session with shared sweeps "
            "(--no-batched restores one sweep per curve)"
        ),
    )
    parser.add_argument(
        "--lump",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "run ordinary-lumpability reduction on every analysis group before "
            "sweeping (quotient chains preserve all requested measures)"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=["auto", "sparse", "dense"],
        default="auto",
        help=(
            "numeric backend for sweeps and solves: 'auto' picks dense BLAS "
            "kernels for small/dense chains and CSR otherwise (default: auto)"
        ),
    )
    parser.add_argument(
        "--float32",
        action="store_true",
        help=(
            "run forward sweeps in the float32 lane (<=1e-6 from float64; "
            "long-run solves stay float64)"
        ),
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory to write one CSV file per experiment into",
    )
    parser.add_argument(
        "--no-plot",
        action="store_true",
        help="suppress the ASCII plots (print CSV only)",
    )
    return parser


def _render(name: str, result, args: argparse.Namespace) -> str:
    parts = []
    if hasattr(result, "to_text") and not args.no_plot:
        parts.append(result.to_text())
    if hasattr(result, "to_csv") and (args.no_plot or args.output is None):
        if args.no_plot:
            parts.append(result.to_csv())
    if args.output is not None and hasattr(result, "to_csv"):
        args.output.mkdir(parents=True, exist_ok=True)
        path = args.output / f"{name}.csv"
        path.write_text(result.to_csv() + "\n", encoding="utf-8")
        parts.append(f"[wrote {path}]")
    return "\n".join(parts)


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-watertreatment serve",
        description=(
            "Sweep scenario portfolios through the asyncio scenario service: "
            "N concurrent clients submit every selected scenario, the "
            "dispatcher coalesces compatible requests across clients into "
            "shared uniformization sweeps, and repeats hit the process-wide "
            "artifact cache (transforms, quotients, operators, Fox-Glynn "
            "windows)."
        ),
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="NAME",
        help="registered scenario names (default: the whole paper portfolio)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="number of concurrent clients submitting the portfolio (default: 4)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="portfolio rounds; warm rounds demonstrate the artifact cache (default: 2)",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=None,
        help="override every scenario's grid resolution",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="coarse grids (same as --points 15)",
    )
    parser.add_argument(
        "--lump",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="solve groups on cached ordinary-lumpability quotients (default: on)",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=0.05,
        help="coalescing window in seconds (default: 0.05)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=1024,
        help="pending-request cap that cuts the window short (default: 1024)",
    )
    parser.add_argument(
        "--engine",
        choices=["auto", "sparse", "dense"],
        default="auto",
        help="numeric backend for the service's sweeps/solves (default: auto)",
    )
    parser.add_argument(
        "--float32",
        action="store_true",
        help="run the service's forward sweeps in the float32 lane",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "print a /metrics-style text dump (service counters, per-flush "
            "latency histogram, per-kind cache hits/misses) after the sweep"
        ),
    )
    parser.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve POST /scenario, GET /registry and GET /metrics over HTTP on "
            "PORT instead of running a local sweep (0 picks an ephemeral port)"
        ),
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --http (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help=(
            "with --http: partition scenario portfolios across N worker "
            "processes routed by chain fingerprint (default: 0 = in-process)"
        ),
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        metavar="N",
        help=(
            "bounded-queue backpressure: reject submissions beyond N pending "
            "(HTTP maps the rejection to 503; default: unbounded)"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-request deadline; an expired request fails alone with a "
            "timeout (HTTP: 504; default: none)"
        ),
    )
    parser.add_argument(
        "--max-connections",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with --http: cap concurrent client connections at N; excess "
            "connections get an immediate 503 + Retry-After (default: unbounded)"
        ),
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help=(
            "with --shards: ping each worker this often; a worker silent for "
            "max(5 intervals, 30s) is deemed wedged, killed and restarted "
            "(0 disables wedge detection; default: 1.0)"
        ),
    )
    parser.add_argument(
        "--restart-limit",
        type=int,
        default=3,
        metavar="K",
        help=(
            "with --shards: respawn a crashed worker up to K times per "
            "60s sliding window, then circuit-break the shard "
            "(0 = fail-fast, no restarts; default: 3)"
        ),
    )
    parser.add_argument(
        "--retry-limit",
        type=int,
        default=2,
        metavar="K",
        help=(
            "with --shards: transparently resubmit a request across up to K "
            "worker deaths before failing its caller (default: 2)"
        ),
    )
    parser.add_argument(
        "--shutdown-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help=(
            "with --shards: wait this long per worker at shutdown before "
            "terminating it (default: 10)"
        ),
    )
    parser.add_argument(
        "--snapshot-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "with --shards: deadline for one worker's stats snapshot when "
            "serving GET /metrics (default: 30)"
        ),
    )
    return parser


def serve_http_main(args: argparse.Namespace) -> int:
    """Run the HTTP front end (``python -m repro serve --http PORT``)."""
    from repro.service import (
        ArtifactCache,
        ScenarioHTTPServer,
        ScenarioService,
        ShardedScenarioService,
        paper_registry,
    )

    async def run() -> None:
        if args.shards > 0:
            service = ShardedScenarioService(
                args.shards,
                lump=args.lump,
                coalesce_window=args.window,
                max_batch=args.max_batch,
                max_pending=args.max_pending,
                default_timeout=args.timeout,
                registry=paper_registry(),
                engine=args.engine,
                dtype="float32" if args.float32 else None,
                heartbeat_interval=args.heartbeat_interval,
                restart_limit=args.restart_limit,
                retry_limit=args.retry_limit,
                shutdown_grace=args.shutdown_grace,
                snapshot_timeout=args.snapshot_timeout,
            )
        else:
            service = ScenarioService(
                lump=args.lump,
                coalesce_window=args.window,
                max_batch=args.max_batch,
                max_pending=args.max_pending,
                default_timeout=args.timeout,
                artifacts=ArtifactCache(),
                registry=paper_registry(),
                engine=args.engine,
                dtype="float32" if args.float32 else None,
            )
        async with service:
            server = ScenarioHTTPServer(
                service,
                host=args.host,
                port=args.http,
                max_connections=args.max_connections,
            )
            await server.start()
            host, port = server.address
            backend = (
                f"{args.shards} shard processes" if args.shards > 0 else "in-process"
            )
            print(f"serving on http://{host}:{port} ({backend})")
            print("  POST /scenario   e.g. curl -d '{\"name\": \"fig4_5\"}' "
                  f"http://{host}:{port}/scenario")
            print(f"  GET  /registry   GET  /metrics")
            # Graceful drain: SIGTERM/SIGINT stop the accept loop, in-flight
            # requests finish (new ones get 503), then the ``async with``
            # exit runs the service's close(drain=True) path.
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            registered: list[int] = []
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, stop.set)
                    registered.append(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # platform/loop without signal-handler support
            try:
                if registered:
                    await stop.wait()
                    print(
                        "signal received; draining (in-flight requests finish, "
                        "new requests get 503)"
                    )
                    await server.drain()
                else:  # fall back to KeyboardInterrupt via asyncio.run
                    await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                for signum in registered:
                    loop.remove_signal_handler(signum)
                await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    return 0


def serve_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro serve``."""
    from repro.service import ArtifactCache, ScenarioService, paper_registry

    args = build_serve_parser().parse_args(argv)
    if args.http is not None:
        return serve_http_main(args)
    registry = paper_registry()
    names = args.scenarios if args.scenarios else list(registry.names)
    for name in names:
        if name not in registry:
            print(
                f"unknown scenario {name!r}; known: {', '.join(registry.names)}",
                file=sys.stderr,
            )
            return 2
    points = args.points if args.points is not None else (15 if args.fast else None)

    async def run() -> None:
        service = ScenarioService(
            lump=args.lump,
            coalesce_window=args.window,
            max_batch=args.max_batch,
            max_pending=args.max_pending,
            default_timeout=args.timeout,
            artifacts=ArtifactCache(),
            registry=registry,
            engine=args.engine,
            dtype="float32" if args.float32 else None,
        )
        async with service:
            # State-space construction (seconds on a cold process) must not
            # block the event loop, so the portfolio is expanded once on a
            # worker thread; every client then submits the same requests —
            # which is also what lets the dispatcher coalesce them.
            portfolio = await asyncio.get_running_loop().run_in_executor(
                None,
                lambda: [
                    request
                    for name in names
                    for request in registry.expand(name, points=points)
                ],
            )
            for round_index in range(max(1, args.repeat)):
                cache_before = service.cache_stats()
                sweeps_before = service.stats.session.sweeps

                async def client() -> int:
                    results = await service.submit_many(list(portfolio))
                    return len(results)

                curve_counts = await asyncio.gather(
                    *(client() for _ in range(max(1, args.clients)))
                )
                miss_deltas = service.cache_stats().misses_since(cache_before)
                recomputed = ", ".join(
                    f"{kind}+{count}" for kind, count in sorted(miss_deltas.items())
                )
                print(
                    f"[round {round_index + 1}] {sum(curve_counts)} curves for "
                    f"{len(curve_counts)} clients, "
                    f"sweeps +{service.stats.session.sweeps - sweeps_before}, "
                    f"cache misses: {recomputed or 'none'}"
                )
            print(f"[{service.stats.summary()}]")
            print(f"[{service.cache_stats().summary()}]")
            if args.metrics:
                print()
                print(service.stats.metrics())
                print(service.cache_stats().metrics())

    asyncio.run(run())
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro-watertreatment`` script."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "optimize":
        from repro.optimize.cli import optimize_main

        return optimize_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    points = args.points if args.points is not None else (21 if args.fast else 101)
    # The experiment runners build their own sessions deep inside the case
    # study; the engine/dtype choice travels via the process-wide defaults
    # every build_plan falls back to.
    from repro.ctmc import engines

    engines.set_default_engine_mode(args.engine)
    engines.set_default_dtype("float32" if args.float32 else "float64")

    names = list(_EXPERIMENTS) if "all" in args.experiments else list(dict.fromkeys(args.experiments))
    stats = SessionStats()
    family_results: dict[str, tuple] = {}
    for name in names:
        family, index = _EXPERIMENTS[name]
        if family not in family_results:
            family_results[family] = _FAMILIES[family](
                points, args.lump, args.batched, stats
            )
        print(_render(name, family_results[family][index], args))
        print()
    if stats.requests:
        print(f"[{stats.summary()}]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
