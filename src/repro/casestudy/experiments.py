"""One function per table and figure of the paper's evaluation (Section 5).

Every function returns a small result object carrying the raw numbers plus
``to_text()`` / ``to_csv()`` renderings, so the same code serves the
command-line front end, the benchmark harness and EXPERIMENTS.md.

Each figure-family function submits its *whole* curve family — every repair
strategy, disaster and service level of the figure pair — as one
:class:`repro.analysis.AnalysisSession`, so compatible curves share
uniformization sweeps (one per distinct (chain, rate, grid) group) instead
of re-traversing the chain per curve.  The keyword-only ``lump``,
``batched`` and ``stats`` parameters thread the session configuration
through from the CLI: ``lump=True`` solves each group on its ordinary-
lumpability quotient, ``batched=False`` restores the legacy one-sweep-per-
curve planning, and a shared :class:`repro.analysis.SessionStats` collects
work counters across experiments.

State spaces are expensive to rebuild, so :func:`line_state_space` caches
them per (line, strategy, crews) combination for the lifetime of the
process; :func:`clear_cache` empties the cache (used by benchmarks that want
to measure construction time).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from repro.analysis import AnalysisSession, SessionStats
from repro.arcade.repair import RepairStrategy
from repro.arcade.statespace import ArcadeStateSpace, build_state_space
from repro.casestudy.facility import (
    DISASTER_1,
    DISASTER_2,
    LINE1,
    LINE2,
    PAPER_STRATEGIES,
    StrategyConfiguration,
    build_line,
)
from repro.casestudy.reporting import ascii_plot, curves_to_csv, format_table
from repro.measures import (
    accumulated_cost_request,
    combined_availability,
    instantaneous_cost_request,
    steady_state_availability_request,
    survivability_request,
    unreliability_request,
)

# ---------------------------------------------------------------------------
# state-space cache
# ---------------------------------------------------------------------------
_SPACE_CACHE: dict[tuple[str, str, int, bool], ArcadeStateSpace] = {}
# Scenario-service clients may expand scenarios (and hence build state
# spaces) from several tasks/threads at once; the lock keeps each space
# built exactly once.  Chain identity matters downstream: the planner merges
# requests by `id(chain)`, so duplicate builds would defeat coalescing.
_SPACE_CACHE_LOCK = threading.Lock()


def line_state_space(
    line: str,
    configuration: StrategyConfiguration,
    with_repairs: bool = True,
) -> ArcadeStateSpace:
    """Build (or fetch from cache) the state space of a line under a strategy."""
    key = (line, configuration.strategy.value, configuration.crews, with_repairs)
    with _SPACE_CACHE_LOCK:
        if key not in _SPACE_CACHE:
            model = build_line(line, configuration.strategy, configuration.crews)
            _SPACE_CACHE[key] = build_state_space(model, with_repairs=with_repairs)
        return _SPACE_CACHE[key]


def clear_cache() -> None:
    """Drop all cached state spaces."""
    with _SPACE_CACHE_LOCK:
        _SPACE_CACHE.clear()


# ---------------------------------------------------------------------------
# result containers
# ---------------------------------------------------------------------------
@dataclass
class TableResult:
    """A tabular experiment result."""

    title: str
    headers: tuple[str, ...]
    rows: list[tuple]

    def to_text(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)

    def to_csv(self) -> str:
        lines = [",".join(self.headers)]
        for row in self.rows:
            lines.append(",".join(str(value) for value in row))
        return "\n".join(lines)

    def column(self, name: str) -> list:
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def row_by(self, key_column: str, key: object) -> tuple:
        index = self.headers.index(key_column)
        for row in self.rows:
            if row[index] == key:
                return row
        raise KeyError(f"no row with {key_column}={key!r}")


@dataclass
class CurveResult:
    """A figure-style experiment result: several series over a time grid."""

    title: str
    times: np.ndarray
    series: dict[str, np.ndarray]
    y_label: str = "probability"

    def to_csv(self) -> str:
        return curves_to_csv(self.times, self.series)

    def to_text(self, width: int = 72, height: int = 18) -> str:
        return ascii_plot(
            self.times, self.series, width=width, height=height,
            title=self.title, y_label=self.y_label,
        )

    def value_at(self, name: str, time: float) -> float:
        """Value of one series at the grid point closest to ``time``."""
        index = int(np.argmin(np.abs(self.times - time)))
        return float(self.series[name][index])

    def final_value(self, name: str) -> float:
        return float(self.series[name][-1])


# ---------------------------------------------------------------------------
# Table 1 — state-space sizes
# ---------------------------------------------------------------------------
def table1_state_space(
    configurations: tuple[StrategyConfiguration, ...] = PAPER_STRATEGIES,
) -> TableResult:
    """State-space sizes (states, transitions) per strategy for both lines."""
    rows = []
    for configuration in configurations:
        line1 = line_state_space(LINE1, configuration)
        line2 = line_state_space(LINE2, configuration)
        rows.append(
            (
                configuration.label,
                line1.num_states,
                line1.num_transitions,
                line2.num_states,
                line2.num_transitions,
            )
        )
    return TableResult(
        title="Table 1: state space per repair strategy",
        headers=("strategy", "line1_states", "line1_transitions", "line2_states", "line2_transitions"),
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table 2 — steady-state availability
# ---------------------------------------------------------------------------
def table2_availability(
    configurations: tuple[StrategyConfiguration, ...] = PAPER_STRATEGIES,
    *,
    stats: SessionStats | None = None,
    artifacts=None,
) -> TableResult:
    """Steady-state availability per strategy (line 1, line 2, combined).

    The whole table — every (strategy, line) chain — is submitted as one
    :class:`repro.analysis.AnalysisSession` of ``STEADY_STATE`` requests,
    so the availabilities ride the cached linear-solver engine; with
    ``artifacts`` (the scenario service's cache) a repeat table performs
    zero new BSCC decompositions and factorizations.
    """
    session = AnalysisSession(stats=stats, artifacts=artifacts)
    indices: dict[tuple[str, str], int] = {}
    for configuration in configurations:
        for line in (LINE1, LINE2):
            indices[(configuration.label, line)] = session.add(
                steady_state_availability_request(
                    line_state_space(line, configuration),
                    tag=(configuration.label, line),
                )
            )
    results = session.execute()
    rows = []
    for configuration in configurations:
        availability1 = float(
            results[indices[(configuration.label, LINE1)]].squeezed[0]
        )
        availability2 = float(
            results[indices[(configuration.label, LINE2)]].squeezed[0]
        )
        rows.append(
            (
                configuration.label,
                availability1,
                availability2,
                combined_availability([availability1, availability2]),
            )
        )
    return TableResult(
        title="Table 2: steady-state availability per repair strategy",
        headers=("strategy", "line1", "line2", "combined"),
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figure 3 — reliability over time
# ---------------------------------------------------------------------------
def figure3_reliability(
    horizon: float = 1000.0,
    points: int = 101,
    *,
    lump: bool = False,
    batched: bool = True,
    stats: SessionStats | None = None,
) -> CurveResult:
    """Reliability of both lines over ``[0, horizon]`` hours (no repairs).

    Both lines' unreliability curves are submitted as one analysis session
    (one sweep per line — the lines are different chains).
    """
    configuration = StrategyConfiguration(RepairStrategy.DEDICATED, 1)
    times = np.linspace(0.0, horizon, points)
    session = AnalysisSession(lump=lump, batched=batched, stats=stats)
    indices = {
        label: session.add(
            unreliability_request(
                line_state_space(line, configuration, with_repairs=False),
                times,
                tag=label,
            )
        )
        for line, label in ((LINE1, "line1"), (LINE2, "line2"))
    }
    results = session.execute()
    series = {
        label: 1.0 - np.asarray(results[index].squeezed)
        for label, index in indices.items()
    }
    return CurveResult(
        title="Figure 3: reliability over time (no repairs)",
        times=times,
        series=series,
        y_label="reliability",
    )


# ---------------------------------------------------------------------------
# Figures 4/5 — survivability, Line 1, Disaster 1
# ---------------------------------------------------------------------------
_LINE1_SURVIVABILITY_STRATEGIES = (
    StrategyConfiguration(RepairStrategy.DEDICATED, 1),
    StrategyConfiguration(RepairStrategy.FASTEST_REPAIR_FIRST, 1),
    StrategyConfiguration(RepairStrategy.FASTEST_REPAIR_FIRST, 2),
)

#: Public alias: the strategy subset of the paper's Figure 4-7 (Line 1)
#: experiments, shared with the scenario registry and the benchmarks so the
#: figure family is defined exactly once.
LINE1_SURVIVABILITY_STRATEGIES = _LINE1_SURVIVABILITY_STRATEGIES


def _line_service_interval_lower(line: str, interval_index: int) -> Fraction:
    configuration = StrategyConfiguration(RepairStrategy.DEDICATED, 1)
    space = line_state_space(line, configuration)
    intervals = space.model.effective_service_tree().service_intervals()
    return intervals[interval_index][0]


def line_service_interval_lower(line: str, interval_index: int) -> Fraction:
    """Lower endpoint of a line's service interval (X1, X2, ... of the paper).

    The canonical threshold lookup for survivability targets, shared by the
    figure functions, the scenario registry and the benchmarks.
    """
    return _line_service_interval_lower(line, interval_index)


def _survivability_figures(
    line: str,
    disaster: str,
    interval_indices: tuple[int, ...],
    configurations: tuple[StrategyConfiguration, ...],
    horizon: float,
    points: int,
    titles: tuple[str, ...],
    lump: bool,
    batched: bool,
    stats: SessionStats | None,
) -> tuple[CurveResult, ...]:
    """Build a figure pair's full curve family and run it as one session.

    Every (service interval × strategy) curve of the pair becomes one
    request; the planner merges requests that agree on (chain, rate, grid) —
    e.g. several disasters of one strategy — into shared sweeps.
    """
    times = np.linspace(0.0, horizon, points)
    session = AnalysisSession(lump=lump, batched=batched, stats=stats)
    indices: dict[tuple[int, str], int] = {}
    for interval_index in interval_indices:
        threshold = _line_service_interval_lower(line, interval_index)
        for configuration in configurations:
            space = line_state_space(line, configuration)
            indices[(interval_index, configuration.label)] = session.add(
                survivability_request(
                    space, disaster, threshold, times,
                    tag=(interval_index, configuration.label),
                )
            )
    results = session.execute()
    figures = []
    for title, interval_index in zip(titles, interval_indices):
        series = {
            configuration.label: np.asarray(
                results[indices[(interval_index, configuration.label)]].squeezed
            )
            for configuration in configurations
        }
        figures.append(
            CurveResult(title=title, times=times, series=series, y_label="P(recovered)")
        )
    return tuple(figures)


def figure4_5_survivability_line1(
    horizon: float = 4.5,
    points: int = 91,
    *,
    lump: bool = False,
    batched: bool = True,
    stats: SessionStats | None = None,
) -> tuple[CurveResult, CurveResult]:
    """Figures 4 and 5: recovery of Line 1 to X1 and X2 after Disaster 1."""
    return _survivability_figures(
        LINE1, DISASTER_1, (0, 1), _LINE1_SURVIVABILITY_STRATEGIES, horizon, points,
        (
            "Figure 4: survivability Line 1, Disaster 1, service interval X1",
            "Figure 5: survivability Line 1, Disaster 1, service interval X2",
        ),
        lump, batched, stats,
    )


# ---------------------------------------------------------------------------
# Figures 6/7 — costs, Line 1, Disaster 1
# ---------------------------------------------------------------------------
def _cost_figures(
    line: str,
    disaster: str,
    configurations: tuple[StrategyConfiguration, ...],
    instantaneous_horizon: float,
    accumulated_horizon: float,
    points: int,
    titles: tuple[str, str],
    lump: bool,
    batched: bool,
    stats: SessionStats | None,
) -> tuple[CurveResult, CurveResult]:
    """Both cost curves of every strategy, submitted as one session.

    Each strategy contributes an instantaneous-cost and an accumulated-cost
    request on its chain; requests with equal grids share that chain's
    sweep.
    """
    instantaneous_times = np.linspace(0.0, instantaneous_horizon, points)
    accumulated_times = np.linspace(0.0, accumulated_horizon, max(2, points // 2))
    session = AnalysisSession(lump=lump, batched=batched, stats=stats)
    instantaneous_indices: dict[str, int] = {}
    accumulated_indices: dict[str, int] = {}
    for configuration in configurations:
        space = line_state_space(line, configuration)
        instantaneous_indices[configuration.label] = session.add(
            instantaneous_cost_request(
                space, instantaneous_times, disaster,
                tag=("instantaneous", configuration.label),
            )
        )
        accumulated_indices[configuration.label] = session.add(
            accumulated_cost_request(
                space, accumulated_times, disaster,
                tag=("accumulated", configuration.label),
            )
        )
    results = session.execute()
    instantaneous = CurveResult(
        title=titles[0],
        times=instantaneous_times,
        series={
            label: np.asarray(results[index].squeezed)
            for label, index in instantaneous_indices.items()
        },
        y_label="cost per hour",
    )
    accumulated = CurveResult(
        title=titles[1],
        times=accumulated_times,
        series={
            label: np.asarray(results[index].squeezed)
            for label, index in accumulated_indices.items()
        },
        y_label="accumulated cost",
    )
    return instantaneous, accumulated


def figure6_7_costs_line1(
    instantaneous_horizon: float = 4.5,
    accumulated_horizon: float = 10.0,
    points: int = 46,
    *,
    lump: bool = False,
    batched: bool = True,
    stats: SessionStats | None = None,
) -> tuple[CurveResult, CurveResult]:
    """Figures 6 and 7: instantaneous and accumulated cost, Line 1, Disaster 1."""
    return _cost_figures(
        LINE1,
        DISASTER_1,
        _LINE1_SURVIVABILITY_STRATEGIES,
        instantaneous_horizon,
        accumulated_horizon,
        points,
        (
            "Figure 6: instantaneous cost Line 1, Disaster 1",
            "Figure 7: accumulated cost Line 1, Disaster 1",
        ),
        lump, batched, stats,
    )


# ---------------------------------------------------------------------------
# Figures 8/9 — survivability, Line 2, Disaster 2
# ---------------------------------------------------------------------------
def figure8_9_survivability_line2(
    horizon: float = 100.0,
    points: int = 101,
    *,
    lump: bool = False,
    batched: bool = True,
    stats: SessionStats | None = None,
) -> tuple[CurveResult, CurveResult]:
    """Figures 8 and 9: recovery of Line 2 to X1 and X3 after Disaster 2."""
    return _survivability_figures(
        LINE2, DISASTER_2, (0, 2), PAPER_STRATEGIES, horizon, points,
        (
            "Figure 8: survivability Line 2, Disaster 2, service interval X1",
            "Figure 9: survivability Line 2, Disaster 2, service interval X3",
        ),
        lump, batched, stats,
    )


# ---------------------------------------------------------------------------
# Figures 10/11 — costs, Line 2, Disaster 2
# ---------------------------------------------------------------------------
_LINE2_COST_STRATEGIES = (
    StrategyConfiguration(RepairStrategy.FASTEST_FAILURE_FIRST, 1),
    StrategyConfiguration(RepairStrategy.FASTEST_FAILURE_FIRST, 2),
    StrategyConfiguration(RepairStrategy.FASTEST_REPAIR_FIRST, 1),
    StrategyConfiguration(RepairStrategy.FASTEST_REPAIR_FIRST, 2),
)

#: Public alias: the strategy subset of Figures 10/11 (Line 2 costs).
LINE2_COST_STRATEGIES = _LINE2_COST_STRATEGIES


def figure10_11_costs_line2(
    instantaneous_horizon: float = 50.0,
    accumulated_horizon: float = 50.0,
    points: int = 51,
    *,
    lump: bool = False,
    batched: bool = True,
    stats: SessionStats | None = None,
) -> tuple[CurveResult, CurveResult]:
    """Figures 10 and 11: instantaneous and accumulated cost, Line 2, Disaster 2."""
    return _cost_figures(
        LINE2,
        DISASTER_2,
        _LINE2_COST_STRATEGIES,
        instantaneous_horizon,
        accumulated_horizon,
        points,
        (
            "Figure 10: instantaneous cost Line 2, Disaster 2",
            "Figure 11: accumulated cost Line 2, Disaster 2",
        ),
        lump, batched, stats,
    )


# ---------------------------------------------------------------------------
# run everything
# ---------------------------------------------------------------------------
@dataclass
class ExperimentSuiteResult:
    """All reproduced tables and figures, keyed by their paper identifier."""

    tables: dict[str, TableResult] = field(default_factory=dict)
    figures: dict[str, CurveResult] = field(default_factory=dict)

    def to_text(self) -> str:
        parts = [table.to_text() for table in self.tables.values()]
        parts += [figure.to_text() for figure in self.figures.values()]
        return "\n\n".join(parts)


def run_all_experiments(
    fast: bool = False,
    *,
    lump: bool = False,
    batched: bool = True,
    stats: SessionStats | None = None,
) -> ExperimentSuiteResult:
    """Run every table and figure of the paper and return the results.

    With ``fast=True`` the time grids are coarser (used by smoke tests).
    ``lump``/``batched`` configure the figure families' analysis sessions
    and ``stats`` collects their work counters across the whole suite.
    """
    points = 21 if fast else 101
    session_options = dict(lump=lump, batched=batched, stats=stats)
    result = ExperimentSuiteResult()
    result.tables["table1"] = table1_state_space()
    result.tables["table2"] = table2_availability(stats=stats)
    result.figures["figure3"] = figure3_reliability(points=points, **session_options)
    figure4, figure5 = figure4_5_survivability_line1(
        points=max(points, 10), **session_options
    )
    result.figures["figure4"] = figure4
    result.figures["figure5"] = figure5
    figure6, figure7 = figure6_7_costs_line1(
        points=max(points // 2, 10), **session_options
    )
    result.figures["figure6"] = figure6
    result.figures["figure7"] = figure7
    figure8, figure9 = figure8_9_survivability_line2(points=points, **session_options)
    result.figures["figure8"] = figure8
    result.figures["figure9"] = figure9
    figure10, figure11 = figure10_11_costs_line2(
        points=max(points // 2, 10), **session_options
    )
    result.figures["figure10"] = figure10
    result.figures["figure11"] = figure11
    return result
