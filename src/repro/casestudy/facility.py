"""The simplified water-treatment facility of the paper (Section 4).

The facility consists of two independent process lines:

* **Line 1** — three softening tanks, three sand filters, one reservoir and
  four pumps of which three are needed for normal service ("3+1"),
* **Line 2** — three softening tanks, two sand filters, one reservoir and
  three pumps of which two are needed ("2+1").

Component parameters (Figure 2 of the paper; the true rates are classified,
these are the sanitised values):

================  ======  ======
component          MTTF    MTTR
================  ======  ======
pump                500 h    1 h
softening tank     2000 h    5 h
sand filter        1000 h  100 h
reservoir          6000 h   12 h
================  ======  ======

The assignment of these values to the component classes is confirmed by the
paper's own numbers: with dedicated repair they reproduce the published
line availabilities (Table 2) to six significant digits.

A line is *fully operational* (and otherwise "down", the criterion used for
reliability and availability) when all softening tanks, all sand filters and
the reservoir are up and at least the required number of pumps is up.  The
derived service tree yields the service intervals reported in Section 5:
three for Line 1 and four for Line 2.

Each line has a single repair unit covering all its components; the
experiments sweep that unit over the strategies DED, FRF-1/2 and FFF-1/2.
Component priorities (used to order the repair queue of a disaster state)
follow the physical water flow: reservoir first, then pumps, sand filters
and softening tanks — without the reservoir no water can be delivered at
all, which is the ordering the paper's Line 2 discussion relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arcade.components import BasicComponent
from repro.arcade.costs import CostModel
from repro.arcade.fault_tree import BasicEvent, FaultTree, KOfN, Or
from repro.arcade.model import ArcadeModel, Disaster
from repro.arcade.repair import RepairStrategy, RepairUnit
from repro.arcade.spares import SpareManagementUnit

# ---------------------------------------------------------------------------
# component parameters (Figure 2)
# ---------------------------------------------------------------------------
PUMP_MTTF, PUMP_MTTR = 500.0, 1.0
SOFTENER_MTTF, SOFTENER_MTTR = 2000.0, 5.0
SAND_FILTER_MTTF, SAND_FILTER_MTTR = 1000.0, 100.0
RESERVOIR_MTTF, RESERVOIR_MTTR = 6000.0, 12.0

#: Repair priorities for disaster (GOOD) states: smaller = repaired first.
RESERVOIR_PRIORITY = 1
PUMP_PRIORITY = 2
SAND_FILTER_PRIORITY = 3
SOFTENER_PRIORITY = 4

LINE1 = "line1"
LINE2 = "line2"

DISASTER_1 = "disaster1"
DISASTER_2 = "disaster2"


@dataclass(frozen=True)
class StrategyConfiguration:
    """A repair configuration of the sweep: strategy plus crew count."""

    strategy: RepairStrategy
    crews: int

    @property
    def label(self) -> str:
        """The paper's abbreviation, e.g. ``"FRF-2"`` or ``"DED"``."""
        return self.strategy.short_name(self.crews)


#: The five configurations compared throughout the paper's evaluation.
PAPER_STRATEGIES: tuple[StrategyConfiguration, ...] = (
    StrategyConfiguration(RepairStrategy.DEDICATED, 1),
    StrategyConfiguration(RepairStrategy.FASTEST_REPAIR_FIRST, 1),
    StrategyConfiguration(RepairStrategy.FASTEST_REPAIR_FIRST, 2),
    StrategyConfiguration(RepairStrategy.FASTEST_FAILURE_FIRST, 1),
    StrategyConfiguration(RepairStrategy.FASTEST_FAILURE_FIRST, 2),
)


def paper_strategy_configurations() -> tuple[StrategyConfiguration, ...]:
    """The strategy sweep of the paper (DED, FRF-1, FRF-2, FFF-1, FFF-2)."""
    return PAPER_STRATEGIES


# ---------------------------------------------------------------------------
# component construction helpers
# ---------------------------------------------------------------------------
def _pumps(line: str, count: int) -> list[BasicComponent]:
    return [
        BasicComponent(
            name=f"{line}_pump{index}",
            mttf=PUMP_MTTF,
            mttr=PUMP_MTTR,
            component_class="pump",
            priority=PUMP_PRIORITY,
        )
        for index in range(1, count + 1)
    ]


def _softeners(line: str, count: int) -> list[BasicComponent]:
    return [
        BasicComponent(
            name=f"{line}_softener{index}",
            mttf=SOFTENER_MTTF,
            mttr=SOFTENER_MTTR,
            component_class="softening_tank",
            priority=SOFTENER_PRIORITY,
        )
        for index in range(1, count + 1)
    ]


def _sand_filters(line: str, count: int) -> list[BasicComponent]:
    return [
        BasicComponent(
            name=f"{line}_sandfilter{index}",
            mttf=SAND_FILTER_MTTF,
            mttr=SAND_FILTER_MTTR,
            component_class="sand_filter",
            priority=SAND_FILTER_PRIORITY,
        )
        for index in range(1, count + 1)
    ]


def _reservoir(line: str) -> BasicComponent:
    return BasicComponent(
        name=f"{line}_reservoir",
        mttf=RESERVOIR_MTTF,
        mttr=RESERVOIR_MTTR,
        component_class="reservoir",
        priority=RESERVOIR_PRIORITY,
    )


def _build_line(
    line: str,
    softener_count: int,
    sand_filter_count: int,
    pump_count: int,
    pumps_required: int,
    strategy: RepairStrategy | str,
    crews: int,
    disasters: tuple[Disaster, ...],
) -> ArcadeModel:
    softeners = _softeners(line, softener_count)
    sand_filters = _sand_filters(line, sand_filter_count)
    reservoir = _reservoir(line)
    pumps = _pumps(line, pump_count)
    components = (*softeners, *sand_filters, reservoir, *pumps)

    component_names = [component.name for component in components]
    repair_unit = RepairUnit(
        name=f"{line}_repair",
        strategy=strategy if isinstance(strategy, RepairStrategy) else RepairStrategy.from_string(strategy),
        components=tuple(component_names),
        crews=crews,
    )
    spare_unit = SpareManagementUnit(
        name=f"{line}_pumps",
        components=tuple(pump.name for pump in pumps),
        required=pumps_required,
    )

    # The line is down when it is not fully operational: any softener, any
    # sand filter or the reservoir failed, or more pumps failed than there
    # are spares.  (KOfN(1, ...) is a plain OR written as a voting gate so
    # that the derived service tree averages over the phase, see
    # repro.arcade.fault_tree.)
    fault_tree = FaultTree(
        Or(
            KOfN(1, [BasicEvent(component.name) for component in softeners]),
            KOfN(1, [BasicEvent(component.name) for component in sand_filters]),
            BasicEvent(reservoir.name),
            KOfN(
                pump_count - pumps_required + 1,
                [BasicEvent(component.name) for component in pumps],
            ),
        ),
        name=f"{line}_down",
    )

    return ArcadeModel(
        name=f"water_treatment_{line}",
        components=components,
        repair_units=(repair_unit,),
        spare_units=(spare_unit,),
        fault_tree=fault_tree,
        cost_model=CostModel.paper_default(),
        disasters=disasters,
    )


# ---------------------------------------------------------------------------
# public line builders
# ---------------------------------------------------------------------------
def build_line1(
    strategy: RepairStrategy | str = RepairStrategy.DEDICATED,
    crews: int = 1,
) -> ArcadeModel:
    """Line 1: 3 softening tanks, 3 sand filters, 1 reservoir, 3+1 pumps.

    Disaster 1 ("all pumps in the system fail") restricted to this line means
    all four pumps are down.
    """
    disaster1 = Disaster(
        DISASTER_1,
        tuple(f"{LINE1}_pump{index}" for index in range(1, 5)),
        description="All pumps of the line have failed.",
    )
    return _build_line(
        LINE1,
        softener_count=3,
        sand_filter_count=3,
        pump_count=4,
        pumps_required=3,
        strategy=strategy,
        crews=crews,
        disasters=(disaster1,),
    )


def build_line2(
    strategy: RepairStrategy | str = RepairStrategy.DEDICATED,
    crews: int = 1,
) -> ArcadeModel:
    """Line 2: 3 softening tanks, 2 sand filters, 1 reservoir, 2+1 pumps.

    Disaster 1 restricted to this line fails all three pumps; Disaster 2
    fails two pumps, one softener, one sand filter and the reservoir
    (Section 5 of the paper).
    """
    disaster1 = Disaster(
        DISASTER_1,
        tuple(f"{LINE2}_pump{index}" for index in range(1, 4)),
        description="All pumps of the line have failed.",
    )
    disaster2 = Disaster(
        DISASTER_2,
        (
            f"{LINE2}_pump1",
            f"{LINE2}_pump2",
            f"{LINE2}_softener1",
            f"{LINE2}_sandfilter1",
            f"{LINE2}_reservoir",
        ),
        description=(
            "Two pumps, one softener, one sand filter and the reservoir have failed."
        ),
    )
    return _build_line(
        LINE2,
        softener_count=3,
        sand_filter_count=2,
        pump_count=3,
        pumps_required=2,
        strategy=strategy,
        crews=crews,
        disasters=(disaster1, disaster2),
    )


def build_line(
    line: str,
    strategy: RepairStrategy | str = RepairStrategy.DEDICATED,
    crews: int = 1,
) -> ArcadeModel:
    """Build ``"line1"`` or ``"line2"`` with the given repair configuration."""
    if line == LINE1:
        return build_line1(strategy, crews)
    if line == LINE2:
        return build_line2(strategy, crews)
    raise ValueError(f"unknown line {line!r}; expected {LINE1!r} or {LINE2!r}")
