"""Rendering of experiment results: text tables, CSV and ASCII plots.

The original figures were produced with gnuplot; this reproduction has no
plotting dependency, so curves are rendered as

* CSV text (one column per series) for further processing, and
* a simple ASCII line plot for quick visual inspection in a terminal.

Both are deliberately dependency-free so the benchmark harness runs in the
offline test environment.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a simple aligned text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("all rows must have as many entries as there are headers")
    cells = [[str(header) for header in headers]] + [
        [_format_cell(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(cell.ljust(width) for cell, width in zip(cells[0], widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in cells[1:]:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.7g}"
    return str(value)


def curves_to_csv(
    times: np.ndarray,
    series: Mapping[str, np.ndarray],
    time_label: str = "t",
) -> str:
    """Render one or more curves over a shared time grid as CSV text."""
    names = list(series)
    for name in names:
        if len(series[name]) != len(times):
            raise ValueError(f"series {name!r} has a different length than the time grid")
    lines = [",".join([time_label, *names])]
    for index, time in enumerate(times):
        row = [f"{time:.6g}"] + [f"{series[name][index]:.8g}" for name in names]
        lines.append(",".join(row))
    return "\n".join(lines)


def ascii_plot(
    times: np.ndarray,
    series: Mapping[str, np.ndarray],
    width: int = 72,
    height: int = 18,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render curves as a crude ASCII plot (one marker character per series)."""
    markers = "*+x#o@%&"
    names = list(series)
    if not names:
        raise ValueError("ascii_plot needs at least one series")
    all_values = np.concatenate([np.asarray(series[name], dtype=float) for name in names])
    y_min = float(np.nanmin(all_values))
    y_max = float(np.nanmax(all_values))
    if y_max == y_min:
        y_max = y_min + 1.0
    t_min = float(times[0])
    t_max = float(times[-1]) if float(times[-1]) != t_min else t_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for series_index, name in enumerate(names):
        marker = markers[series_index % len(markers)]
        values = np.asarray(series[name], dtype=float)
        for time, value in zip(times, values):
            column = int(round((time - t_min) / (t_max - t_min) * (width - 1)))
            row = int(round((value - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.4g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_min:10.4g} +" + "".join(grid[-1]))
    lines.append(" " * 12 + f"{t_min:<10.4g}" + " " * max(0, width - 20) + f"{t_max:>10.4g}")
    legend = "  ".join(
        f"{markers[index % len(markers)]} {name}" for index, name in enumerate(names)
    )
    lines.append(" " * 12 + legend)
    if y_label:
        lines.append(" " * 12 + f"(y: {y_label})")
    return "\n".join(lines)
