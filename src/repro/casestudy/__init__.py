"""The water-treatment facility case study (Section 4 of the paper).

:mod:`~repro.casestudy.facility` builds the two process lines of the
simplified water-treatment facility as :class:`repro.arcade.ArcadeModel`
instances, parameterised by repair strategy and crew count, and defines the
two disasters analysed in the paper.  :mod:`~repro.casestudy.experiments`
contains one function per table and figure of the evaluation section, and
:mod:`~repro.casestudy.reporting` renders their results as text tables, CSV
and ASCII plots.
"""

from repro.casestudy.facility import (
    DISASTER_1,
    DISASTER_2,
    LINE1,
    LINE2,
    PAPER_STRATEGIES,
    StrategyConfiguration,
    build_line1,
    build_line2,
    paper_strategy_configurations,
)
from repro.casestudy.experiments import (
    figure10_11_costs_line2,
    figure3_reliability,
    figure4_5_survivability_line1,
    figure6_7_costs_line1,
    figure8_9_survivability_line2,
    run_all_experiments,
    table1_state_space,
    table2_availability,
)

__all__ = [
    "DISASTER_1",
    "DISASTER_2",
    "LINE1",
    "LINE2",
    "PAPER_STRATEGIES",
    "StrategyConfiguration",
    "build_line1",
    "build_line2",
    "figure10_11_costs_line2",
    "figure3_reliability",
    "figure4_5_survivability_line1",
    "figure6_7_costs_line1",
    "figure8_9_survivability_line2",
    "paper_strategy_configurations",
    "run_all_experiments",
    "table1_state_space",
    "table2_availability",
]
