"""A small, typed expression language.

The expression language is shared by several parts of the library:

* guards and updates of stochastic reactive modules (:mod:`repro.modules`),
* state labels used by the CSL/CSRL model checker (:mod:`repro.csl`),
* fault-tree and service-tree conditions of Arcade models
  (:mod:`repro.arcade.fault_tree`).

Expressions are immutable trees of :class:`Expression` nodes and are
evaluated against a :class:`repro.expr.environment.Environment`, which is a
mapping from variable names to Python values (``bool``, ``int`` or ``float``).

Example
-------
>>> from repro.expr import Var, Const, parse_expression
>>> e = (Var("pumps_up") >= Const(3)) & Var("reservoir_up")
>>> e.evaluate({"pumps_up": 4, "reservoir_up": True})
True
>>> parse_expression("pumps_up >= 3 & reservoir_up").evaluate(
...     {"pumps_up": 2, "reservoir_up": True})
False
"""

from repro.expr.nodes import (
    BinaryOp,
    Const,
    Expression,
    Ite,
    UnaryOp,
    Var,
)
from repro.expr.environment import Environment
from repro.expr.parser import ExpressionParseError, parse_expression

__all__ = [
    "BinaryOp",
    "Const",
    "Environment",
    "Expression",
    "ExpressionParseError",
    "Ite",
    "UnaryOp",
    "Var",
    "parse_expression",
]
