"""Evaluation environments for the expression language.

An :class:`Environment` is a thin wrapper around a mapping from variable
names to values.  It exists mainly to give good error messages when an
expression refers to an unknown variable, and to allow layered scopes
(useful when a composed system evaluates expressions over the union of the
variables of several modules).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Iterator


class UnknownVariableError(KeyError):
    """Raised when an expression refers to a variable that is not bound."""

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        self.name = name
        self.known = known
        super().__init__(
            f"unknown variable {name!r}; known variables: {', '.join(sorted(known)) or '(none)'}"
        )


class Environment(Mapping[str, Any]):
    """A mapping of variable names to values, possibly layered.

    Parameters
    ----------
    bindings:
        The innermost scope: a mapping from variable names to values.
    parent:
        An optional enclosing environment consulted when a name is not
        found in ``bindings``.

    Examples
    --------
    >>> outer = Environment({"x": 1})
    >>> inner = Environment({"y": 2}, parent=outer)
    >>> inner["x"], inner["y"]
    (1, 2)
    """

    __slots__ = ("_bindings", "_parent")

    def __init__(
        self,
        bindings: Mapping[str, Any] | None = None,
        parent: "Environment | Mapping[str, Any] | None" = None,
    ) -> None:
        self._bindings: dict[str, Any] = dict(bindings or {})
        self._parent = parent

    def __getitem__(self, name: str) -> Any:
        if name in self._bindings:
            return self._bindings[name]
        if self._parent is not None:
            try:
                return self._parent[name]
            except KeyError:
                pass
        raise UnknownVariableError(name, tuple(self.keys()))

    def __iter__(self) -> Iterator[str]:
        seen = set()
        for name in self._bindings:
            seen.add(name)
            yield name
        if self._parent is not None:
            for name in self._parent:
                if name not in seen:
                    seen.add(name)
                    yield name

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def child(self, bindings: Mapping[str, Any]) -> "Environment":
        """Return a new environment layered on top of this one."""
        return Environment(bindings, parent=self)

    def with_updates(self, updates: Mapping[str, Any]) -> "Environment":
        """Return a flat copy of this environment with ``updates`` applied."""
        merged = dict(self)
        merged.update(updates)
        return Environment(merged)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Environment({dict(self)!r})"


def as_environment(env: "Environment | Mapping[str, Any]") -> Environment:
    """Coerce a plain mapping into an :class:`Environment`."""
    if isinstance(env, Environment):
        return env
    return Environment(env)
