"""A recursive-descent parser for the expression language.

The concrete syntax follows PRISM's expression syntax closely, so that
expressions exported to PRISM (see :mod:`repro.modules.prism_export`) can be
re-read by this parser:

==============  =====================================================
category        syntax
==============  =====================================================
literals        ``true``, ``false``, integers, floats
variables       identifiers (``[A-Za-z_][A-Za-z0-9_']*``)
arithmetic      ``+  -  *  /`` with the usual precedence
comparison      ``=  !=  <  <=  >  >=``
boolean         ``!`` (negation), ``&``, ``|``, ``=>`` (implication)
conditional     ``cond ? a : b``
functions       ``min(a, b, ...)``, ``max(a, b, ...)``
grouping        parentheses
==============  =====================================================

Precedence, lowest to highest: ``? :``, ``=>``, ``|``, ``&``, ``!``,
comparisons, ``+ -``, ``* /``, unary minus.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import reduce

from repro.expr.nodes import BinaryOp, Const, Expression, Ite, UnaryOp, Var


class ExpressionParseError(ValueError):
    """Raised when an expression string cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>\d+\.\d+([eE][-+]?\d+)?|\d+[eE][-+]?\d+)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<op><=|>=|!=|=>|[-+*/=<>!&|?:(),])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"true": Const(True), "false": Const(False)}


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str
    text: str
    position: int


def tokenize(source: str) -> list[_Token]:
    """Split ``source`` into tokens, raising on unknown characters."""
    tokens: list[_Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ExpressionParseError(
                f"unexpected character {source[position]!r} at position {position} in {source!r}"
            )
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, source: str) -> None:
        self._source = source
        self._tokens = tokenize(source)
        self._index = 0

    # -- token helpers ---------------------------------------------------
    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ExpressionParseError(f"unexpected end of input in {self._source!r}")
        self._index += 1
        return token

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.text == text:
            self._index += 1
            return True
        return False

    def _expect(self, text: str) -> None:
        token = self._peek()
        if token is None or token.text != text:
            found = token.text if token else "end of input"
            raise ExpressionParseError(
                f"expected {text!r} but found {found!r} in {self._source!r}"
            )
        self._index += 1

    # -- grammar ----------------------------------------------------------
    def parse(self) -> Expression:
        expression = self._conditional()
        token = self._peek()
        if token is not None:
            raise ExpressionParseError(
                f"unexpected trailing input {token.text!r} at position "
                f"{token.position} in {self._source!r}"
            )
        return expression

    def _conditional(self) -> Expression:
        condition = self._implication()
        if self._accept("?"):
            then = self._conditional()
            self._expect(":")
            otherwise = self._conditional()
            return Ite(condition, then, otherwise)
        return condition

    def _implication(self) -> Expression:
        left = self._disjunction()
        if self._accept("=>"):
            # Implication is right-associative.
            right = self._implication()
            return BinaryOp("=>", left, right)
        return left

    def _disjunction(self) -> Expression:
        parts = [self._conjunction()]
        while self._accept("|"):
            parts.append(self._conjunction())
        return reduce(lambda a, b: BinaryOp("|", a, b), parts)

    def _conjunction(self) -> Expression:
        parts = [self._negation()]
        while self._accept("&"):
            parts.append(self._negation())
        return reduce(lambda a, b: BinaryOp("&", a, b), parts)

    def _negation(self) -> Expression:
        if self._accept("!"):
            return UnaryOp("!", self._negation())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._additive()
        token = self._peek()
        if token is not None and token.text in ("=", "!=", "<", "<=", ">", ">="):
            self._advance()
            right = self._additive()
            return BinaryOp(token.text, left, right)
        return left

    def _additive(self) -> Expression:
        expression = self._multiplicative()
        while True:
            if self._accept("+"):
                expression = BinaryOp("+", expression, self._multiplicative())
            elif self._accept("-"):
                expression = BinaryOp("-", expression, self._multiplicative())
            else:
                return expression

    def _multiplicative(self) -> Expression:
        expression = self._unary()
        while True:
            if self._accept("*"):
                expression = BinaryOp("*", expression, self._unary())
            elif self._accept("/"):
                expression = BinaryOp("/", expression, self._unary())
            else:
                return expression

    def _unary(self) -> Expression:
        if self._accept("-"):
            return UnaryOp("-", self._unary())
        return self._atom()

    def _atom(self) -> Expression:
        token = self._advance()
        if token.kind == "int":
            return Const(int(token.text))
        if token.kind == "float":
            return Const(float(token.text))
        if token.kind == "name":
            if token.text in _KEYWORDS:
                return _KEYWORDS[token.text]
            if token.text in ("min", "max"):
                return self._function(token.text)
            return Var(token.text)
        if token.text == "(":
            inner = self._conditional()
            self._expect(")")
            return inner
        raise ExpressionParseError(
            f"unexpected token {token.text!r} at position {token.position} in {self._source!r}"
        )

    def _function(self, name: str) -> Expression:
        self._expect("(")
        arguments = [self._conditional()]
        while self._accept(","):
            arguments.append(self._conditional())
        self._expect(")")
        if len(arguments) < 2:
            raise ExpressionParseError(f"{name}() needs at least two arguments")
        return reduce(lambda a, b: BinaryOp(name, a, b), arguments)


def parse_expression(source: str) -> Expression:
    """Parse ``source`` into an :class:`~repro.expr.nodes.Expression`.

    Raises
    ------
    ExpressionParseError
        If the string is not a well-formed expression.
    """
    return _Parser(source).parse()
