"""Expression AST nodes.

The node classes are deliberately small: each node knows how to evaluate
itself against an environment, report the variables it mentions, and print
itself back to a parseable string.  Operator overloading on
:class:`Expression` makes building expressions in Python pleasant::

    (Var("pumps_up") >= Const(3)) & Var("reservoir_up")

Supported operators
-------------------
arithmetic   ``+  -  *  /`` (true division), unary ``-``
comparison   ``=  !=  <  <=  >  >=``
boolean      ``&  |  !  =>`` (implication), if-then-else (:class:`Ite`)
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Callable

_NUMERIC = (int, float)


def _as_bool(value: Any, context: str) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)) and value in (0, 1):
        return bool(value)
    raise TypeError(f"{context}: expected a boolean, got {value!r}")


def _as_number(value: Any, context: str) -> float | int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, _NUMERIC):
        return value
    raise TypeError(f"{context}: expected a number, got {value!r}")


class Expression:
    """Base class of all expression nodes."""

    __slots__ = ()

    # -- core protocol -------------------------------------------------
    def evaluate(self, env: Mapping[str, Any]) -> Any:
        """Evaluate the expression in ``env`` and return its value."""
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """Return the set of variable names mentioned by the expression."""
        raise NotImplementedError

    def substitute(self, bindings: Mapping[str, "Expression"]) -> "Expression":
        """Return a copy with variables replaced by expressions."""
        raise NotImplementedError

    # -- convenience builders -------------------------------------------
    def __and__(self, other: "Expression") -> "Expression":
        return BinaryOp("&", self, _coerce(other))

    def __rand__(self, other: Any) -> "Expression":
        return BinaryOp("&", _coerce(other), self)

    def __or__(self, other: "Expression") -> "Expression":
        return BinaryOp("|", self, _coerce(other))

    def __ror__(self, other: Any) -> "Expression":
        return BinaryOp("|", _coerce(other), self)

    def __invert__(self) -> "Expression":
        return UnaryOp("!", self)

    def implies(self, other: "Expression") -> "Expression":
        return BinaryOp("=>", self, _coerce(other))

    def __add__(self, other: Any) -> "Expression":
        return BinaryOp("+", self, _coerce(other))

    def __radd__(self, other: Any) -> "Expression":
        return BinaryOp("+", _coerce(other), self)

    def __sub__(self, other: Any) -> "Expression":
        return BinaryOp("-", self, _coerce(other))

    def __rsub__(self, other: Any) -> "Expression":
        return BinaryOp("-", _coerce(other), self)

    def __mul__(self, other: Any) -> "Expression":
        return BinaryOp("*", self, _coerce(other))

    def __rmul__(self, other: Any) -> "Expression":
        return BinaryOp("*", _coerce(other), self)

    def __truediv__(self, other: Any) -> "Expression":
        return BinaryOp("/", self, _coerce(other))

    def __neg__(self) -> "Expression":
        return UnaryOp("-", self)

    def eq(self, other: Any) -> "Expression":
        return BinaryOp("=", self, _coerce(other))

    def ne(self, other: Any) -> "Expression":
        return BinaryOp("!=", self, _coerce(other))

    def __lt__(self, other: Any) -> "Expression":
        return BinaryOp("<", self, _coerce(other))

    def __le__(self, other: Any) -> "Expression":
        return BinaryOp("<=", self, _coerce(other))

    def __gt__(self, other: Any) -> "Expression":
        return BinaryOp(">", self, _coerce(other))

    def __ge__(self, other: Any) -> "Expression":
        return BinaryOp(">=", self, _coerce(other))


def _coerce(value: Any) -> Expression:
    """Turn Python literals into :class:`Const` nodes."""
    if isinstance(value, Expression):
        return value
    if isinstance(value, (bool, int, float)):
        return Const(value)
    raise TypeError(f"cannot use {value!r} in an expression")


@dataclass(frozen=True, slots=True)
class Const(Expression):
    """A boolean or numeric literal."""

    value: bool | int | float

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        return self.value

    def variables(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, bindings: Mapping[str, Expression]) -> Expression:
        return self

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class Var(Expression):
    """A reference to a variable in the evaluation environment."""

    name: str

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        return env[self.name]

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def substitute(self, bindings: Mapping[str, Expression]) -> Expression:
        return bindings.get(self.name, self)

    def __str__(self) -> str:
        return self.name


_BINARY_IMPLS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: _as_number(a, "+") + _as_number(b, "+"),
    "-": lambda a, b: _as_number(a, "-") - _as_number(b, "-"),
    "*": lambda a, b: _as_number(a, "*") * _as_number(b, "*"),
    "/": lambda a, b: _as_number(a, "/") / _as_number(b, "/"),
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: _as_number(a, "<") < _as_number(b, "<"),
    "<=": lambda a, b: _as_number(a, "<=") <= _as_number(b, "<="),
    ">": lambda a, b: _as_number(a, ">") > _as_number(b, ">"),
    ">=": lambda a, b: _as_number(a, ">=") >= _as_number(b, ">="),
    "&": lambda a, b: _as_bool(a, "&") and _as_bool(b, "&"),
    "|": lambda a, b: _as_bool(a, "|") or _as_bool(b, "|"),
    "=>": lambda a, b: (not _as_bool(a, "=>")) or _as_bool(b, "=>"),
    "min": min,
    "max": max,
}

#: Operators whose result is boolean (used by consumers that want to
#: validate that e.g. a guard is a boolean expression).
BOOLEAN_OPERATORS = frozenset({"=", "!=", "<", "<=", ">", ">=", "&", "|", "=>", "!"})


@dataclass(frozen=True, slots=True)
class BinaryOp(Expression):
    """A binary operator applied to two sub-expressions."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _BINARY_IMPLS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        impl = _BINARY_IMPLS[self.op]
        return impl(self.left.evaluate(env), self.right.evaluate(env))

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def substitute(self, bindings: Mapping[str, Expression]) -> Expression:
        return BinaryOp(
            self.op,
            self.left.substitute(bindings),
            self.right.substitute(bindings),
        )

    def __str__(self) -> str:
        if self.op in ("min", "max"):
            return f"{self.op}({self.left}, {self.right})"
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class UnaryOp(Expression):
    """A unary operator (boolean negation ``!`` or arithmetic ``-``)."""

    op: str
    operand: Expression

    def __post_init__(self) -> None:
        if self.op not in ("!", "-"):
            raise ValueError(f"unknown unary operator {self.op!r}")

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        value = self.operand.evaluate(env)
        if self.op == "!":
            return not _as_bool(value, "!")
        return -_as_number(value, "unary -")

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def substitute(self, bindings: Mapping[str, Expression]) -> Expression:
        return UnaryOp(self.op, self.operand.substitute(bindings))

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


@dataclass(frozen=True, slots=True)
class Ite(Expression):
    """If-then-else expression: ``condition ? then : otherwise``."""

    condition: Expression
    then: Expression
    otherwise: Expression

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        if _as_bool(self.condition.evaluate(env), "ite condition"):
            return self.then.evaluate(env)
        return self.otherwise.evaluate(env)

    def variables(self) -> frozenset[str]:
        return (
            self.condition.variables()
            | self.then.variables()
            | self.otherwise.variables()
        )

    def substitute(self, bindings: Mapping[str, Expression]) -> Expression:
        return Ite(
            self.condition.substitute(bindings),
            self.then.substitute(bindings),
            self.otherwise.substitute(bindings),
        )

    def __str__(self) -> str:
        return f"({self.condition} ? {self.then} : {self.otherwise})"


TRUE = Const(True)
FALSE = Const(False)
