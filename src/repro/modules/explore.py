"""Explicit-state exploration of a composed modules file into a CTMC.

The composition semantics follows PRISM in CTMC mode:

* every enabled *unlabelled* command of every module contributes its
  transitions independently (interleaving),
* for every synchronising action label ``a``, every combination of one
  enabled ``a``-command per module whose alphabet contains ``a`` fires
  together; the combined update is the union of the individual updates and
  the combined rate is the *product* of the individual rates,
* transitions between the same pair of states add up (race semantics).

Exploration is a breadth-first search from the initial valuation; the result
is a :class:`repro.ctmc.CTMC` whose labels are the modules file's label
expressions evaluated per state, plus a :class:`repro.ctmc.MarkovRewardModel`
if reward structures are present.
"""

from __future__ import annotations

import itertools
from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import sparse

from repro.ctmc import CTMC, MarkovRewardModel, RewardStructure
from repro.modules.model import Command, Module, ModulesFile, ModulesError


@dataclass
class ExplorationResult:
    """The outcome of state-space exploration.

    Attributes
    ----------
    chain:
        The labelled CTMC.
    reward_model:
        A Markov reward model wrapping ``chain`` (``None`` when the modules
        file defines no reward structures).
    states:
        The explored states as tuples of variable values, index-aligned with
        the CTMC's state indices.
    variable_order:
        The variable names defining the tuple positions in ``states``.
    """

    chain: CTMC
    reward_model: MarkovRewardModel | None
    states: list[tuple]
    variable_order: tuple[str, ...]

    @property
    def num_states(self) -> int:
        return self.chain.num_states

    @property
    def num_transitions(self) -> int:
        return self.chain.num_transitions

    def state_index(self, valuation: Mapping[str, Any]) -> int:
        """Return the index of the state with the given variable valuation."""
        key = tuple(valuation[name] for name in self.variable_order)
        try:
            return self._index[key]  # type: ignore[attr-defined]
        except AttributeError:
            self._index = {state: i for i, state in enumerate(self.states)}  # type: ignore[attr-defined]
            return self._index[key]

    def valuation(self, state: int) -> dict[str, Any]:
        """Return the variable valuation of state ``state``."""
        return dict(zip(self.variable_order, self.states[state]))


def _unlabelled_transitions(
    command: Command, state: Mapping[str, Any]
) -> list[tuple[dict[str, Any], float]]:
    """Successor valuations and rates of an enabled unlabelled command."""
    transitions = []
    for rate_expression, update in command.alternatives:
        rate = float(rate_expression.evaluate(state))
        if rate < 0:
            raise ModulesError(f"negative rate in command {command}")
        if rate == 0.0:
            continue
        transitions.append((update.apply(state), rate))
    return transitions


def _synchronised_transitions(
    action: str,
    participants: list[tuple[Module, list[Command]]],
    state: Mapping[str, Any],
) -> list[tuple[dict[str, Any], float]]:
    """Joint transitions for a synchronising action.

    ``participants`` lists, per module with ``action`` in its alphabet, the
    enabled commands carrying that action.  If any participating module has
    no enabled command the action is blocked.
    """
    per_module_choices: list[list[tuple[dict[str, Any], float]]] = []
    for _module, commands in participants:
        choices: list[tuple[dict[str, Any], float]] = []
        for command in commands:
            choices.extend(_unlabelled_transitions(command, state))
        if not choices:
            return []
        per_module_choices.append(choices)

    transitions: list[tuple[dict[str, Any], float]] = []
    for combination in itertools.product(*per_module_choices):
        merged = dict(state)
        rate = 1.0
        for successor, partial_rate in combination:
            rate *= partial_rate
            for name, value in successor.items():
                if value != state.get(name):
                    merged[name] = value
        transitions.append((merged, rate))
    return transitions


def build_ctmc(system: ModulesFile, max_states: int | None = None) -> ExplorationResult:
    """Explore ``system`` and return the resulting CTMC.

    Parameters
    ----------
    system:
        The modules file to compose and explore.
    max_states:
        Optional safety limit; exploration aborts with an error if more
        states are reachable.
    """
    system.validate()
    declarations = system.all_variables()
    variable_order = tuple(declaration.name for declaration in declarations)
    declaration_map = {declaration.name: declaration for declaration in declarations}

    initial_valuation = system.initial_state()
    constants = dict(system.constants)

    def pack(valuation: Mapping[str, Any]) -> tuple:
        return tuple(valuation[name] for name in variable_order)

    def unpack(state: tuple) -> dict[str, Any]:
        valuation = dict(constants)
        valuation.update(zip(variable_order, state))
        return valuation

    # Pre-compute per-action participant lists.
    actions = sorted(system.synchronising_actions())
    participants_by_action: dict[str, list[tuple[Module, list[Command]]]] = {}
    for action in actions:
        participants: list[tuple[Module, list[Command]]] = []
        for module in system.modules:
            commands = [command for command in module.commands if command.action == action]
            if commands:
                participants.append((module, commands))
        participants_by_action[action] = participants

    initial_state = pack(initial_valuation)
    index_of: dict[tuple, int] = {initial_state: 0}
    states: list[tuple] = [initial_state]
    queue: deque[int] = deque([0])

    rows: list[int] = []
    cols: list[int] = []
    rates: list[float] = []
    # Per reward structure: transition impulse contributions, accumulated as
    # expected impulse rate (impulse * rate) per source state, converted to an
    # equivalent state reward at the end (standard treatment for CTMCs).
    transition_reward_rate: dict[str, dict[int, float]] = {
        definition.name: {} for definition in system.rewards
    }

    def register(valuation: Mapping[str, Any]) -> int:
        key = pack(valuation)
        if key in index_of:
            return index_of[key]
        # validate ranges on first encounter
        for name, declaration in declaration_map.items():
            declaration.validate_value(valuation[name])
        index = len(states)
        index_of[key] = index
        states.append(key)
        queue.append(index)
        if max_states is not None and len(states) > max_states:
            raise ModulesError(f"state space exceeds the limit of {max_states} states")
        return index

    while queue:
        source = queue.popleft()
        valuation = unpack(states[source])

        # Unlabelled commands: interleaving.
        for module in system.modules:
            for command in module.commands:
                if command.action:
                    continue
                if not command.guard.evaluate(valuation):
                    continue
                for successor, rate in _unlabelled_transitions(command, valuation):
                    target = register(successor)
                    if target != source:
                        rows.append(source)
                        cols.append(target)
                        rates.append(rate)

        # Synchronising actions.
        for action in actions:
            participants = participants_by_action[action]
            enabled: list[tuple[Module, list[Command]]] = []
            blocked = False
            for module, commands in participants:
                enabled_commands = [
                    command for command in commands if command.guard.evaluate(valuation)
                ]
                if not enabled_commands:
                    blocked = True
                    break
                enabled.append((module, enabled_commands))
            if blocked or not enabled:
                continue
            for successor, rate in _synchronised_transitions(action, enabled, valuation):
                target = register(successor)
                if target != source:
                    rows.append(source)
                    cols.append(target)
                    rates.append(rate)
                    for definition in system.rewards:
                        impulse = definition.transition_reward(action, valuation)
                        if impulse:
                            bucket = transition_reward_rate[definition.name]
                            bucket[source] = bucket.get(source, 0.0) + impulse * rate

    num_states = len(states)
    matrix = sparse.coo_matrix(
        (rates, (rows, cols)), shape=(num_states, num_states)
    ).tocsr()
    matrix.sum_duplicates()

    labels: dict[str, list[int]] = {name: [] for name in system.labels}
    for index, state in enumerate(states):
        valuation = unpack(state)
        for name, expression in system.labels.items():
            if expression.evaluate(valuation):
                labels[name].append(index)

    chain = CTMC(
        matrix,
        {0: 1.0},
        labels=labels,
        state_descriptions=[dict(zip(variable_order, state)) for state in states],
    )

    reward_model = None
    if system.rewards:
        structures = []
        for definition in system.rewards:
            values = np.zeros(num_states)
            for index, state in enumerate(states):
                valuation = unpack(state)
                values[index] = definition.state_reward(valuation)
            for index, extra in transition_reward_rate[definition.name].items():
                values[index] += extra
            structures.append(RewardStructure(definition.name, values))
        reward_model = MarkovRewardModel(chain, structures)

    return ExplorationResult(
        chain=chain,
        reward_model=reward_model,
        states=states,
        variable_order=variable_order,
    )


def build_reward_model(system: ModulesFile, max_states: int | None = None) -> MarkovRewardModel:
    """Explore ``system`` and return its Markov reward model.

    Raises if the system defines no reward structure.
    """
    result = build_ctmc(system, max_states)
    if result.reward_model is None:
        raise ModulesError("the modules file defines no reward structure")
    return result.reward_model
