"""Stochastic reactive modules (a PRISM-style modelling language).

The paper translates Arcade models into the input language of the PRISM
model checker — *stochastic reactive modules* in CTMC mode.  This package
provides the same modelling layer:

* :class:`~repro.modules.model.VariableDeclaration` — bounded integer or
  boolean state variables with initial values,
* :class:`~repro.modules.model.Command` — guarded commands
  ``[action] guard -> rate_1 : update_1 + ... + rate_n : update_n``,
* :class:`~repro.modules.model.Module` — a named set of variables and
  commands,
* :class:`~repro.modules.model.ModulesFile` — a system of modules with
  label definitions and reward structures, composed in parallel with
  PRISM's CTMC semantics (interleaving for unlabelled commands,
  rate multiplication for synchronised commands),
* :func:`~repro.modules.explore.build_ctmc` — explicit-state exploration of
  the composed system into a labelled :class:`repro.ctmc.CTMC` /
  :class:`repro.ctmc.MarkovRewardModel`,
* :mod:`~repro.modules.prism_export` — export of a :class:`ModulesFile` to
  PRISM's concrete ``.sm`` syntax (and of CSL/CSRL formulas to a ``.csl``
  properties file), which is the "translate to PRISM" step of the paper's
  tool chain (Figure 1).
"""

from repro.modules.model import (
    Command,
    Module,
    ModulesFile,
    RewardItem,
    RewardStructureDefinition,
    Update,
    VariableDeclaration,
)
from repro.modules.explore import ExplorationResult, build_ctmc, build_reward_model
from repro.modules.prism_export import export_prism_model, export_prism_properties

__all__ = [
    "Command",
    "ExplorationResult",
    "Module",
    "ModulesFile",
    "RewardItem",
    "RewardStructureDefinition",
    "Update",
    "VariableDeclaration",
    "build_ctmc",
    "build_reward_model",
    "export_prism_model",
    "export_prism_properties",
]
