"""Export of modules files to PRISM's concrete syntax.

The paper's tool chain (Figure 1) translates the Arcade XML model into
"PRISM reactive modules" plus "PRISM CSL/CSRL formulae".  These two
functions produce exactly those artefacts as text, so a user with a PRISM
installation can cross-check the numbers computed by this library against
PRISM itself:

* :func:`export_prism_model` → the ``.sm`` model file,
* :func:`export_prism_properties` → the ``.csl`` properties file.

The export is purely syntactic: expression trees already print in (a subset
of) PRISM's expression syntax, so the exporter only needs to add the module
and rewards scaffolding.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.modules.model import Module, ModulesFile, RewardStructureDefinition, VariableDeclaration


def _format_value(value: int | bool | float) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return repr(value)


def _format_variable(declaration: VariableDeclaration, initial_override: int | bool | None) -> str:
    initial = declaration.initial_value if initial_override is None else initial_override
    if declaration.is_boolean:
        return f"  {declaration.name} : bool init {_format_value(bool(initial))};"
    return (
        f"  {declaration.name} : [{declaration.low}..{declaration.high}] "
        f"init {_format_value(int(initial))};"
    )


def _format_module(module: Module, initial_overrides: dict[str, int | bool]) -> list[str]:
    lines = [f"module {module.name}"]
    for declaration in module.variables:
        lines.append(_format_variable(declaration, initial_overrides.get(declaration.name)))
    if module.variables and module.commands:
        lines.append("")
    for command in module.commands:
        alternatives = " + ".join(
            f"{rate} : {update}" for rate, update in command.alternatives
        )
        lines.append(f"  [{command.action}] {command.guard} -> {alternatives};")
    lines.append("endmodule")
    return lines


def _format_rewards(definition: RewardStructureDefinition) -> list[str]:
    lines = [f'rewards "{definition.name}"']
    for item in definition.items:
        if item.is_transition_reward:
            lines.append(f"  [{item.action}] {item.guard} : {item.value};")
        else:
            lines.append(f"  {item.guard} : {item.value};")
    lines.append("endrewards")
    return lines


def export_prism_model(system: ModulesFile, description: str | None = None) -> str:
    """Render ``system`` as a PRISM ``.sm`` model file."""
    system.validate()
    lines: list[str] = []
    if description:
        for row in description.splitlines():
            lines.append(f"// {row}")
        lines.append("")
    lines.append(system.model_type)
    lines.append("")
    for name, value in sorted(system.constants.items()):
        kind = "bool" if isinstance(value, bool) else ("int" if isinstance(value, int) else "double")
        lines.append(f"const {kind} {name} = {_format_value(value)};")
    if system.constants:
        lines.append("")
    for module in system.modules:
        lines.extend(_format_module(module, system.initial_overrides))
        lines.append("")
    for name, expression in sorted(system.labels.items()):
        lines.append(f'label "{name}" = {expression};')
    if system.labels:
        lines.append("")
    for definition in system.rewards:
        lines.extend(_format_rewards(definition))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def export_prism_properties(formulas: Iterable[object] | Sequence[str]) -> str:
    """Render CSL/CSRL formulas as a PRISM properties file.

    Accepts either already-formatted strings or formula objects from
    :mod:`repro.csl.formulas` (anything with a sensible ``str()``).
    """
    lines = [str(formula) for formula in formulas]
    return "\n".join(lines).rstrip() + "\n"
