"""Data model of stochastic reactive modules.

The formalism follows PRISM's CTMC mode:

* A *module* owns a set of bounded variables and a set of guarded commands.
* A command ``[action] guard -> r1:u1 + r2:u2 + ...`` is enabled in a state
  where its guard holds; each alternative contributes a transition whose rate
  is the evaluated rate expression.
* Commands without an action label (``action == ""``) execute independently
  (interleaving).
* Commands with the same action label synchronise across all modules whose
  alphabet contains that label; the rate of the joint transition is the
  *product* of the participating rates (PRISM convention: all but one module
  typically uses rate 1).

Guards, rates and update right-hand sides are expressions over the union of
all module variables, so modules may read (but not write) each other's
variables, exactly as in PRISM.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.expr import Const, Expression, Var
from repro.expr.nodes import _coerce  # type: ignore[attr-defined]


class ModulesError(ValueError):
    """Raised when a modules file is malformed."""


@dataclass(frozen=True)
class VariableDeclaration:
    """Declaration of a bounded state variable.

    Parameters
    ----------
    name:
        Variable name, unique across the whole system.
    low, high:
        Inclusive bounds for integer variables.  For boolean variables use
        :meth:`boolean`.
    initial:
        Initial value (defaults to ``low`` / ``False``).
    is_boolean:
        Whether the variable is boolean.
    """

    name: str
    low: int = 0
    high: int = 1
    initial: int | bool | None = None
    is_boolean: bool = False

    def __post_init__(self) -> None:
        if not self.is_boolean and self.low > self.high:
            raise ModulesError(f"variable {self.name!r}: low bound exceeds high bound")

    @staticmethod
    def boolean(name: str, initial: bool = False) -> "VariableDeclaration":
        """Declare a boolean variable."""
        return VariableDeclaration(name, 0, 1, initial, is_boolean=True)

    @staticmethod
    def integer(name: str, low: int, high: int, initial: int | None = None) -> "VariableDeclaration":
        """Declare a bounded integer variable."""
        return VariableDeclaration(name, low, high, initial, is_boolean=False)

    @property
    def initial_value(self) -> int | bool:
        if self.initial is None:
            return False if self.is_boolean else self.low
        return self.initial

    def validate_value(self, value: Any) -> int | bool:
        """Clamp-check a value against the declaration."""
        if self.is_boolean:
            if isinstance(value, bool):
                return value
            if value in (0, 1):
                return bool(value)
            raise ModulesError(f"variable {self.name!r}: {value!r} is not boolean")
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, int):
            if isinstance(value, float) and float(value).is_integer():
                value = int(value)
            else:
                raise ModulesError(f"variable {self.name!r}: {value!r} is not an integer")
        if not self.low <= value <= self.high:
            raise ModulesError(
                f"variable {self.name!r}: value {value} outside range [{self.low}, {self.high}]"
            )
        return value


@dataclass(frozen=True)
class Update:
    """An assignment of new values to variables.

    ``assignments`` maps variable names to expressions evaluated in the
    *current* state; unmentioned variables keep their value.
    """

    assignments: Mapping[str, Expression] = field(default_factory=dict)

    def __post_init__(self) -> None:
        coerced = {name: _coerce(value) for name, value in dict(self.assignments).items()}
        object.__setattr__(self, "assignments", coerced)

    def apply(self, state: Mapping[str, Any]) -> dict[str, Any]:
        """Return the successor valuation of this update in ``state``."""
        successor = dict(state)
        for name, expression in self.assignments.items():
            successor[name] = expression.evaluate(state)
        return successor

    def variables_written(self) -> frozenset[str]:
        return frozenset(self.assignments)

    def variables_read(self) -> frozenset[str]:
        read: set[str] = set()
        for expression in self.assignments.values():
            read |= expression.variables()
        return frozenset(read)

    def __str__(self) -> str:
        if not self.assignments:
            return "true"
        return " & ".join(f"({name}'={expr})" for name, expr in sorted(self.assignments.items()))


@dataclass(frozen=True)
class Command:
    """A guarded command ``[action] guard -> rate_1:update_1 + ...``."""

    action: str
    guard: Expression
    alternatives: Sequence[tuple[Expression, Update]]

    def __post_init__(self) -> None:
        if not self.alternatives:
            raise ModulesError("a command needs at least one rate:update alternative")
        coerced = tuple((_coerce(rate), update) for rate, update in self.alternatives)
        object.__setattr__(self, "alternatives", coerced)
        object.__setattr__(self, "guard", _coerce(self.guard))

    @staticmethod
    def simple(
        action: str,
        guard: Expression,
        rate: Expression | float,
        update: Update | Mapping[str, Expression | int | bool],
    ) -> "Command":
        """Convenience constructor for single-alternative commands."""
        if not isinstance(update, Update):
            update = Update({name: _coerce(value) for name, value in update.items()})
        return Command(action, guard, [(_coerce(rate), update)])

    def is_synchronising(self) -> bool:
        return bool(self.action)

    def variables_read(self) -> frozenset[str]:
        read = set(self.guard.variables())
        for rate, update in self.alternatives:
            read |= rate.variables()
            read |= update.variables_read()
        return frozenset(read)

    def variables_written(self) -> frozenset[str]:
        written: set[str] = set()
        for _, update in self.alternatives:
            written |= update.variables_written()
        return frozenset(written)

    def __str__(self) -> str:
        alternatives = " + ".join(f"{rate} : {update}" for rate, update in self.alternatives)
        return f"[{self.action}] {self.guard} -> {alternatives};"


@dataclass
class Module:
    """A named module: local variables plus guarded commands."""

    name: str
    variables: list[VariableDeclaration] = field(default_factory=list)
    commands: list[Command] = field(default_factory=list)

    def add_variable(self, declaration: VariableDeclaration) -> "Module":
        self.variables.append(declaration)
        return self

    def add_command(self, command: Command) -> "Module":
        self.commands.append(command)
        return self

    def alphabet(self) -> frozenset[str]:
        """The set of synchronising action labels used by this module."""
        return frozenset(command.action for command in self.commands if command.action)

    def variable_names(self) -> frozenset[str]:
        return frozenset(declaration.name for declaration in self.variables)

    def validate(self) -> None:
        names = [declaration.name for declaration in self.variables]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ModulesError(f"module {self.name!r}: duplicate variables {sorted(duplicates)}")
        owned = self.variable_names()
        for command in self.commands:
            foreign = command.variables_written() - owned
            if foreign:
                raise ModulesError(
                    f"module {self.name!r}: command {command} writes variables "
                    f"{sorted(foreign)} it does not own"
                )


@dataclass(frozen=True)
class RewardItem:
    """One line of a reward structure.

    State-reward items (``action is None``) contribute ``value`` per time
    unit to every state satisfying ``guard``; transition-reward items
    contribute an impulse ``value`` to every transition with the given
    action label taken from a state satisfying ``guard``.
    """

    guard: Expression
    value: Expression
    action: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "guard", _coerce(self.guard))
        object.__setattr__(self, "value", _coerce(self.value))

    @property
    def is_transition_reward(self) -> bool:
        return self.action is not None


@dataclass
class RewardStructureDefinition:
    """A named collection of reward items (PRISM ``rewards ... endrewards``)."""

    name: str
    items: list[RewardItem] = field(default_factory=list)

    def add_state_reward(self, guard: Expression, value: Expression | float) -> "RewardStructureDefinition":
        self.items.append(RewardItem(guard, _coerce(value)))
        return self

    def add_transition_reward(
        self, action: str, guard: Expression, value: Expression | float
    ) -> "RewardStructureDefinition":
        self.items.append(RewardItem(guard, _coerce(value), action))
        return self

    def state_reward(self, state: Mapping[str, Any]) -> float:
        """Total state-reward rate in ``state``."""
        total = 0.0
        for item in self.items:
            if item.is_transition_reward:
                continue
            if item.guard.evaluate(state):
                total += float(item.value.evaluate(state))
        return total

    def transition_reward(self, action: str, state: Mapping[str, Any]) -> float:
        """Total impulse reward for taking ``action`` from ``state``."""
        total = 0.0
        for item in self.items:
            if not item.is_transition_reward or item.action != action:
                continue
            if item.guard.evaluate(state):
                total += float(item.value.evaluate(state))
        return total


@dataclass
class ModulesFile:
    """A complete system: modules, constants, labels and reward structures."""

    model_type: str = "ctmc"
    modules: list[Module] = field(default_factory=list)
    labels: dict[str, Expression] = field(default_factory=dict)
    rewards: list[RewardStructureDefinition] = field(default_factory=list)
    constants: dict[str, float | int | bool] = field(default_factory=dict)
    initial_overrides: dict[str, int | bool] = field(default_factory=dict)

    def add_module(self, module: Module) -> "ModulesFile":
        self.modules.append(module)
        return self

    def add_label(self, name: str, expression: Expression) -> "ModulesFile":
        self.labels[name] = _coerce(expression)
        return self

    def add_rewards(self, definition: RewardStructureDefinition) -> "ModulesFile":
        self.rewards.append(definition)
        return self

    def set_constant(self, name: str, value: float | int | bool) -> "ModulesFile":
        self.constants[name] = value
        return self

    # ------------------------------------------------------------------
    # derived information
    # ------------------------------------------------------------------
    def all_variables(self) -> list[VariableDeclaration]:
        declarations: list[VariableDeclaration] = []
        for module in self.modules:
            declarations.extend(module.variables)
        return declarations

    def variable_map(self) -> dict[str, VariableDeclaration]:
        return {declaration.name: declaration for declaration in self.all_variables()}

    def initial_state(self) -> dict[str, Any]:
        """The initial valuation of all variables (plus constants)."""
        state: dict[str, Any] = dict(self.constants)
        for declaration in self.all_variables():
            value = self.initial_overrides.get(declaration.name, declaration.initial_value)
            state[declaration.name] = declaration.validate_value(value)
        return state

    def with_initial_state(self, overrides: Mapping[str, int | bool]) -> "ModulesFile":
        """Return a copy of the system with some initial values overridden."""
        copy = ModulesFile(
            model_type=self.model_type,
            modules=self.modules,
            labels=dict(self.labels),
            rewards=list(self.rewards),
            constants=dict(self.constants),
            initial_overrides={**self.initial_overrides, **overrides},
        )
        return copy

    def synchronising_actions(self) -> frozenset[str]:
        actions: set[str] = set()
        for module in self.modules:
            actions |= module.alphabet()
        return frozenset(actions)

    def reward_structure_names(self) -> tuple[str, ...]:
        return tuple(definition.name for definition in self.rewards)

    def validate(self) -> None:
        """Check static well-formedness of the system."""
        if self.model_type != "ctmc":
            raise ModulesError(f"only CTMC modules files are supported, got {self.model_type!r}")
        if not self.modules:
            raise ModulesError("a modules file needs at least one module")
        seen: dict[str, str] = {}
        for module in self.modules:
            module.validate()
            for declaration in module.variables:
                if declaration.name in seen:
                    raise ModulesError(
                        f"variable {declaration.name!r} declared in both "
                        f"{seen[declaration.name]!r} and {module.name!r}"
                    )
                if declaration.name in self.constants:
                    raise ModulesError(
                        f"variable {declaration.name!r} clashes with a constant of the same name"
                    )
                seen[declaration.name] = module.name
        known = set(seen) | set(self.constants)
        for module in self.modules:
            for command in module.commands:
                unknown = command.variables_read() - known
                if unknown:
                    raise ModulesError(
                        f"module {module.name!r}: command {command} reads unknown "
                        f"variables {sorted(unknown)}"
                    )
        for name, expression in self.labels.items():
            unknown = expression.variables() - known
            if unknown:
                raise ModulesError(
                    f"label {name!r} reads unknown variables {sorted(unknown)}"
                )


def state_formula_all_up(variable_names: Iterable[str]) -> Expression:
    """Helper: conjunction asserting that all the given boolean variables are true."""
    expression: Expression = Const(True)
    for name in variable_names:
        expression = expression & Var(name)
    return expression
