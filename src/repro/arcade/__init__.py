"""The Arcade architectural dependability framework.

Arcade (ARChitecturAl Dependability Evaluation, Boudali et al., DSN 2008)
describes a system as a set of

* **basic components** (:class:`~repro.arcade.components.BasicComponent`) —
  operational/failed behaviour with exponential failure and repair times,
  optionally with reduced *dormant* failure rates while standing by as a
  spare,
* **repair units** (:class:`~repro.arcade.repair.RepairUnit`) — responsible
  for repairing a set of components according to a repair strategy
  (dedicated, first-come-first-served, fastest-repair-first,
  fastest-failure-first, or fixed priority) with one or more repair crews,
* **spare management units** (:class:`~repro.arcade.spares.SpareManagementUnit`)
  — activating spare components when primaries are down,

plus a **fault tree** over component failures that defines when the system
is down, and (in this reproduction, following the DSN 2010 paper) a derived
**service tree** assigning each state a quantitative service level in
``[0, 1]``, and **cost annotations** for crews and components.

An :class:`~repro.arcade.model.ArcadeModel` bundles all of the above and can
be

* serialised to and parsed from XML (:mod:`~repro.arcade.xml_io`),
* translated into stochastic reactive modules
  (:mod:`~repro.arcade.to_modules`) — the paper's "translate to PRISM" path,
* translated into I/O-IMCs (:mod:`~repro.arcade.to_iomc`) — the original
  Arcade semantics, used for cross-validation,
* expanded directly into a labelled CTMC with reward structures
  (:mod:`~repro.arcade.statespace`) — the fast path used by the experiments.
"""

from repro.arcade.components import BasicComponent
from repro.arcade.costs import CostModel
from repro.arcade.fault_tree import (
    And,
    BasicEvent,
    FaultTree,
    KOfN,
    Or,
    ServiceTree,
)
from repro.arcade.model import ArcadeModel
from repro.arcade.repair import RepairStrategy, RepairUnit
from repro.arcade.spares import SpareManagementUnit
from repro.arcade.statespace import ArcadeStateSpace, build_state_space
from repro.arcade.to_modules import arcade_to_modules
from repro.arcade.xml_io import model_from_xml, model_to_xml, read_model, write_model

__all__ = [
    "And",
    "ArcadeModel",
    "ArcadeStateSpace",
    "BasicComponent",
    "BasicEvent",
    "CostModel",
    "FaultTree",
    "KOfN",
    "Or",
    "RepairStrategy",
    "RepairUnit",
    "ServiceTree",
    "SpareManagementUnit",
    "arcade_to_modules",
    "build_state_space",
    "model_from_xml",
    "model_to_xml",
    "read_model",
    "write_model",
]
