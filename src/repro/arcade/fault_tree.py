"""Fault trees and quantitative service trees.

Arcade defines when a system is *down* through a fault tree over the failure
modes of its basic components.  The DSN 2010 paper additionally derives a
*quantitative service tree* from the fault tree by swapping AND and OR gates
and giving the gates a quantitative interpretation over service values in
``[0, 1]``:

* quantitative AND — the minimum of its inputs (a series bottleneck),
* quantitative OR — the average of its inputs (the delivered fraction of a
  redundant phase),
* voting / spare phases — the capped fraction ``min(1, Σ inputs / required)``,
  so that spare components "do not create extra service intervals"
  (Section 5 of the paper).

Fault-tree nodes evaluate over the *failed* component set; service-tree
nodes evaluate over the *up* component set and return a float in ``[0, 1]``.
The duality is implemented by :meth:`FaultTree.to_service_tree`:

=====================  ============================================
fault-tree gate         dual service-tree gate
=====================  ============================================
basic event (failed)    component up value (0 or 1)
``Or``                  quantitative AND (minimum)
``And``                 quantitative OR (average)
``KOfN(k, n inputs)``   capped fraction with ``required = n - k + 1``
=====================  ============================================

Note that a plain ``Or`` over ``n`` basic events is the special case
``KOfN(1, n)``; its dual is the capped fraction with ``required = n``, i.e.
exactly the average — so the table above is consistent with the paper's
"substitute AND by OR and vice versa" description.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence, Set
from fractions import Fraction

from repro.arcade.components import ArcadeModelError


# ---------------------------------------------------------------------------
# fault-tree nodes (evaluate over the set of FAILED components)
# ---------------------------------------------------------------------------
class FaultTreeNode:
    """Base class for fault-tree nodes."""

    __slots__ = ()

    def evaluate(self, failed: Set[str]) -> bool:
        """Whether this subtree's failure condition holds given ``failed``."""
        raise NotImplementedError

    def components(self) -> frozenset[str]:
        """The component names mentioned in the subtree."""
        raise NotImplementedError

    def to_service_node(self) -> "ServiceTreeNode":
        """The dual service-tree node (see module docstring)."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class BasicEvent(FaultTreeNode):
    """The failure of a single component."""

    component: str

    def evaluate(self, failed: Set[str]) -> bool:
        return self.component in failed

    def components(self) -> frozenset[str]:
        return frozenset({self.component})

    def to_service_node(self) -> "ServiceTreeNode":
        return ComponentService(self.component)

    def __str__(self) -> str:
        return self.component


@dataclass(frozen=True, slots=True)
class Or(FaultTreeNode):
    """Failure of *any* child causes this subtree to fail."""

    children: tuple[FaultTreeNode, ...]

    def __init__(self, *children: FaultTreeNode | Iterable[FaultTreeNode]) -> None:
        object.__setattr__(self, "children", _flatten(children))
        if len(self.children) < 1:
            raise ArcadeModelError("an OR gate needs at least one child")

    def evaluate(self, failed: Set[str]) -> bool:
        return any(child.evaluate(failed) for child in self.children)

    def components(self) -> frozenset[str]:
        return frozenset().union(*(child.components() for child in self.children))

    def to_service_node(self) -> "ServiceTreeNode":
        return MinService(tuple(child.to_service_node() for child in self.children))

    def __str__(self) -> str:
        return "OR(" + ", ".join(str(child) for child in self.children) + ")"


@dataclass(frozen=True, slots=True)
class And(FaultTreeNode):
    """Only the failure of *all* children causes this subtree to fail."""

    children: tuple[FaultTreeNode, ...]

    def __init__(self, *children: FaultTreeNode | Iterable[FaultTreeNode]) -> None:
        object.__setattr__(self, "children", _flatten(children))
        if len(self.children) < 1:
            raise ArcadeModelError("an AND gate needs at least one child")

    def evaluate(self, failed: Set[str]) -> bool:
        return all(child.evaluate(failed) for child in self.children)

    def components(self) -> frozenset[str]:
        return frozenset().union(*(child.components() for child in self.children))

    def to_service_node(self) -> "ServiceTreeNode":
        return AverageService(tuple(child.to_service_node() for child in self.children))

    def __str__(self) -> str:
        return "AND(" + ", ".join(str(child) for child in self.children) + ")"


@dataclass(frozen=True, slots=True)
class KOfN(FaultTreeNode):
    """Voting gate: the subtree fails once at least ``k`` children have failed.

    With ``n`` children this models a phase that needs ``n - k + 1`` of its
    members to be operational (e.g. the "(3+1)" pump group of Line 1 fails
    once 2 of the 4 pumps have failed).
    """

    k: int
    children: tuple[FaultTreeNode, ...]

    def __init__(self, k: int, children: Iterable[FaultTreeNode]) -> None:
        object.__setattr__(self, "k", int(k))
        object.__setattr__(self, "children", _flatten([children]))
        if not 1 <= self.k <= len(self.children):
            raise ArcadeModelError(
                f"KOfN gate: k={self.k} must be between 1 and the number of children "
                f"({len(self.children)})"
            )

    @property
    def required_up(self) -> int:
        """Members that must be operational for the phase to deliver full service."""
        return len(self.children) - self.k + 1

    def evaluate(self, failed: Set[str]) -> bool:
        count = sum(1 for child in self.children if child.evaluate(failed))
        return count >= self.k

    def components(self) -> frozenset[str]:
        return frozenset().union(*(child.components() for child in self.children))

    def to_service_node(self) -> "ServiceTreeNode":
        return CappedFractionService(
            tuple(child.to_service_node() for child in self.children),
            required=self.required_up,
        )

    def __str__(self) -> str:
        return f"{self.k}-of-{len(self.children)}(" + ", ".join(
            str(child) for child in self.children
        ) + ")"


def _flatten(items: Iterable) -> tuple[FaultTreeNode, ...]:
    flattened: list[FaultTreeNode] = []
    for item in items:
        if isinstance(item, FaultTreeNode):
            flattened.append(item)
        elif isinstance(item, str):
            flattened.append(BasicEvent(item))
        else:
            for inner in item:
                if isinstance(inner, str):
                    flattened.append(BasicEvent(inner))
                elif isinstance(inner, FaultTreeNode):
                    flattened.append(inner)
                else:
                    raise ArcadeModelError(f"cannot use {inner!r} as a fault-tree child")
    return tuple(flattened)


# ---------------------------------------------------------------------------
# service-tree nodes (evaluate over the set of UP components, return [0, 1])
# ---------------------------------------------------------------------------
class ServiceTreeNode:
    """Base class for quantitative service-tree nodes."""

    __slots__ = ()

    def evaluate(self, up: Set[str]) -> Fraction:
        """The service level delivered by this subtree (an exact fraction)."""
        raise NotImplementedError

    def components(self) -> frozenset[str]:
        raise NotImplementedError

    def attainable_levels(self) -> frozenset[Fraction]:
        """All service values this subtree can possibly produce.

        Computed compositionally (without enumerating global states); used to
        derive the paper's service intervals X1, X2, ... exactly.
        """
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class ComponentService(ServiceTreeNode):
    """Service contribution of a single component: 1 if up, 0 if failed."""

    component: str

    def evaluate(self, up: Set[str]) -> Fraction:
        return Fraction(1) if self.component in up else Fraction(0)

    def components(self) -> frozenset[str]:
        return frozenset({self.component})

    def attainable_levels(self) -> frozenset[Fraction]:
        return frozenset({Fraction(0), Fraction(1)})

    def __str__(self) -> str:
        return self.component


@dataclass(frozen=True, slots=True)
class MinService(ServiceTreeNode):
    """Quantitative AND: the bottleneck (minimum) of the children."""

    children: tuple[ServiceTreeNode, ...]

    def evaluate(self, up: Set[str]) -> Fraction:
        return min(child.evaluate(up) for child in self.children)

    def components(self) -> frozenset[str]:
        return frozenset().union(*(child.components() for child in self.children))

    def attainable_levels(self) -> frozenset[Fraction]:
        # The minimum of independent children can attain any child level that
        # is <= the maximum of every other child; since every child can reach
        # 1 and 0, the union of all child levels is attainable (and 0 always is).
        levels: set[Fraction] = set()
        for child in self.children:
            levels |= child.attainable_levels()
        return frozenset(levels)

    def __str__(self) -> str:
        return "MIN(" + ", ".join(str(child) for child in self.children) + ")"


@dataclass(frozen=True, slots=True)
class AverageService(ServiceTreeNode):
    """Quantitative OR: the average of the children (delivered fraction)."""

    children: tuple[ServiceTreeNode, ...]

    def evaluate(self, up: Set[str]) -> Fraction:
        total = sum((child.evaluate(up) for child in self.children), Fraction(0))
        return total / len(self.children)

    def components(self) -> frozenset[str]:
        return frozenset().union(*(child.components() for child in self.children))

    def attainable_levels(self) -> frozenset[Fraction]:
        sums = {Fraction(0)}
        for child in self.children:
            child_levels = child.attainable_levels()
            sums = {existing + level for existing in sums for level in child_levels}
        return frozenset(total / len(self.children) for total in sums)

    def __str__(self) -> str:
        return "AVG(" + ", ".join(str(child) for child in self.children) + ")"


@dataclass(frozen=True, slots=True)
class CappedFractionService(ServiceTreeNode):
    """Spare/voting phase: ``min(1, Σ children / required)``.

    ``required`` is the number of members needed for full service; surplus
    (spare) members raise reliability but not the service level, so they do
    not create additional service intervals.
    """

    children: tuple[ServiceTreeNode, ...]
    required: int

    def evaluate(self, up: Set[str]) -> Fraction:
        total = sum((child.evaluate(up) for child in self.children), Fraction(0))
        return min(Fraction(1), total / self.required)

    def components(self) -> frozenset[str]:
        return frozenset().union(*(child.components() for child in self.children))

    def attainable_levels(self) -> frozenset[Fraction]:
        sums = {Fraction(0)}
        for child in self.children:
            child_levels = child.attainable_levels()
            sums = {existing + level for existing in sums for level in child_levels}
        return frozenset(min(Fraction(1), total / self.required) for total in sums)

    def __str__(self) -> str:
        return (
            f"CAP[{self.required}](" + ", ".join(str(child) for child in self.children) + ")"
        )


# ---------------------------------------------------------------------------
# wrappers
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FaultTree:
    """A fault tree: the system is *down* in states where the root evaluates true."""

    root: FaultTreeNode
    name: str = "system_down"

    def is_down(self, failed: Iterable[str]) -> bool:
        """Whether the system is down when exactly ``failed`` components are failed."""
        return self.root.evaluate(frozenset(failed))

    def is_operational(self, failed: Iterable[str]) -> bool:
        return not self.is_down(failed)

    def components(self) -> frozenset[str]:
        return self.root.components()

    def to_service_tree(self) -> "ServiceTree":
        """Derive the quantitative service tree by gate dualisation."""
        return ServiceTree(self.root.to_service_node(), name=f"{self.name}_service")

    def __str__(self) -> str:
        return str(self.root)


@dataclass(frozen=True)
class ServiceTree:
    """A quantitative service tree mapping component states to a level in [0, 1]."""

    root: ServiceTreeNode
    name: str = "service"

    def service_level(self, up: Iterable[str]) -> Fraction:
        """The exact service level when exactly ``up`` components are operational."""
        return self.root.evaluate(frozenset(up))

    def delivers_service(self, up: Iterable[str]) -> bool:
        """Whether *some* service is delivered (level strictly positive)."""
        return self.service_level(up) > 0

    def components(self) -> frozenset[str]:
        return self.root.components()

    def attainable_levels(self) -> tuple[Fraction, ...]:
        """All attainable service levels, sorted ascending (includes 0 and 1)."""
        return tuple(sorted(self.root.attainable_levels()))

    def service_intervals(self) -> tuple[tuple[Fraction, Fraction], ...]:
        """The paper's service intervals ``X1, X2, ...``.

        Consecutive positive attainable levels bound half-open intervals
        ``[level_i, level_{i+1})``; the final interval is the degenerate
        ``[1, 1]``.  Every threshold ``x`` inside one interval yields the same
        set ``S_{sl(x)}`` and hence the same survivability curve.
        """
        levels = [level for level in self.attainable_levels() if level > 0]
        intervals: list[tuple[Fraction, Fraction]] = []
        for index, level in enumerate(levels):
            if level == 1:
                intervals.append((Fraction(1), Fraction(1)))
            else:
                intervals.append((level, levels[index + 1]))
        return tuple(intervals)

    def __str__(self) -> str:
        return str(self.root)
