"""XML serialisation of Arcade models.

The Arcade tool chain takes its input as an XML document (Maass 2010,
referenced as [9] in the paper).  The schema used here is a faithful,
self-contained rendition of that input format covering the constructs the
paper exercises::

    <arcade name="...">
      <components>
        <component name="pump1" class="pump" mttf="500" mttr="1"
                   priority="1" dormancy="1.0"/>
        ...
      </components>
      <repair-units>
        <repair-unit name="ru" strategy="fastest_repair_first" crews="2"
                     preemptive="true">
          <covers component="pump1"/>
          ...
        </repair-unit>
      </repair-units>
      <spare-units>
        <spare-unit name="pumps" required="3">
          <member component="pump1"/>
          ...
        </spare-unit>
      </spare-units>
      <fault-tree>
        <or>
          <k-of-n k="2"> <event component="pump1"/> ... </k-of-n>
          <event component="reservoir"/>
        </or>
      </fault-tree>
      <cost-model component-down="3" component-up="0"
                  crew-idle="1" crew-busy="0"/>
      <disasters>
        <disaster name="disaster1"> <failed component="pump1"/> ... </disaster>
      </disasters>
    </arcade>

Round-trips (model → XML → model) are loss-free for all supported features
and are covered by property-based tests.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.arcade.components import ArcadeModelError, BasicComponent
from repro.arcade.costs import CostModel
from repro.arcade.fault_tree import (
    And,
    BasicEvent,
    FaultTree,
    FaultTreeNode,
    KOfN,
    Or,
)
from repro.arcade.model import ArcadeModel, Disaster
from repro.arcade.repair import RepairUnit
from repro.arcade.spares import SpareManagementUnit


class ArcadeXMLError(ArcadeModelError):
    """Raised when an Arcade XML document cannot be interpreted."""


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------
def _fault_tree_element(node: FaultTreeNode) -> ET.Element:
    if isinstance(node, BasicEvent):
        element = ET.Element("event")
        element.set("component", node.component)
        return element
    if isinstance(node, Or):
        element = ET.Element("or")
    elif isinstance(node, And):
        element = ET.Element("and")
    elif isinstance(node, KOfN):
        element = ET.Element("k-of-n")
        element.set("k", str(node.k))
    else:
        raise ArcadeXMLError(f"cannot serialise fault-tree node {node!r}")
    for child in node.children:
        element.append(_fault_tree_element(child))
    return element


def model_to_xml(model: ArcadeModel) -> str:
    """Serialise ``model`` as an XML string."""
    root = ET.Element("arcade")
    root.set("name", model.name)

    components = ET.SubElement(root, "components")
    for component in model.components:
        element = ET.SubElement(components, "component")
        element.set("name", component.name)
        element.set("class", component.component_class)
        element.set("mttf", repr(component.mttf))
        element.set("mttr", repr(component.mttr))
        element.set("priority", str(component.priority))
        element.set("dormancy", repr(component.dormancy_factor))

    if model.repair_units:
        units = ET.SubElement(root, "repair-units")
        for unit in model.repair_units:
            element = ET.SubElement(units, "repair-unit")
            element.set("name", unit.name)
            element.set("strategy", unit.strategy.value)
            element.set("crews", str(unit.crews))
            element.set("preemptive", "true" if unit.preemptive else "false")
            for component_name in unit.components:
                covers = ET.SubElement(element, "covers")
                covers.set("component", component_name)

    if model.spare_units:
        units = ET.SubElement(root, "spare-units")
        for unit in model.spare_units:
            element = ET.SubElement(units, "spare-unit")
            element.set("name", unit.name)
            element.set("required", str(unit.required))
            for component_name in unit.components:
                member = ET.SubElement(element, "member")
                member.set("component", component_name)

    if model.fault_tree is not None:
        tree = ET.SubElement(root, "fault-tree")
        tree.set("name", model.fault_tree.name)
        tree.append(_fault_tree_element(model.fault_tree.root))

    costs = ET.SubElement(root, "cost-model")
    costs.set("component-down", repr(model.cost_model.component_down_cost))
    costs.set("component-up", repr(model.cost_model.component_up_cost))
    costs.set("crew-idle", repr(model.cost_model.crew_idle_cost))
    costs.set("crew-busy", repr(model.cost_model.crew_busy_cost))
    costs.set("repair-impulse", repr(model.cost_model.repair_impulse_cost))

    if model.disasters:
        disasters = ET.SubElement(root, "disasters")
        for disaster in model.disasters:
            element = ET.SubElement(disasters, "disaster")
            element.set("name", disaster.name)
            if disaster.description:
                element.set("description", disaster.description)
            for component_name in disaster.failed_components:
                failed = ET.SubElement(element, "failed")
                failed.set("component", component_name)

    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def write_model(model: ArcadeModel, path: str | Path) -> None:
    """Write ``model`` to an XML file."""
    Path(path).write_text(model_to_xml(model), encoding="utf-8")


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------
def _require(element: ET.Element, attribute: str) -> str:
    value = element.get(attribute)
    if value is None:
        raise ArcadeXMLError(f"<{element.tag}> is missing the {attribute!r} attribute")
    return value


def _parse_fault_tree_node(element: ET.Element) -> FaultTreeNode:
    if element.tag == "event":
        return BasicEvent(_require(element, "component"))
    children = [_parse_fault_tree_node(child) for child in element]
    if element.tag == "or":
        return Or(*children)
    if element.tag == "and":
        return And(*children)
    if element.tag == "k-of-n":
        return KOfN(int(_require(element, "k")), children)
    raise ArcadeXMLError(f"unknown fault-tree element <{element.tag}>")


def model_from_xml(text: str) -> ArcadeModel:
    """Parse an Arcade model from an XML string."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as error:
        raise ArcadeXMLError(f"not well-formed XML: {error}") from error
    if root.tag != "arcade":
        raise ArcadeXMLError(f"expected root element <arcade>, found <{root.tag}>")

    components = []
    for element in root.findall("./components/component"):
        components.append(
            BasicComponent(
                name=_require(element, "name"),
                mttf=float(_require(element, "mttf")),
                mttr=float(_require(element, "mttr")),
                component_class=element.get("class", ""),
                priority=int(element.get("priority", "0")),
                dormancy_factor=float(element.get("dormancy", "1.0")),
            )
        )

    repair_units = []
    for element in root.findall("./repair-units/repair-unit"):
        covered = [_require(child, "component") for child in element.findall("covers")]
        repair_units.append(
            RepairUnit(
                name=_require(element, "name"),
                strategy=_require(element, "strategy"),
                components=tuple(covered),
                crews=int(element.get("crews", "1")),
                preemptive=element.get("preemptive", "true").lower() == "true",
            )
        )

    spare_units = []
    for element in root.findall("./spare-units/spare-unit"):
        members = [_require(child, "component") for child in element.findall("member")]
        spare_units.append(
            SpareManagementUnit(
                name=_require(element, "name"),
                components=tuple(members),
                required=int(_require(element, "required")),
            )
        )

    fault_tree = None
    tree_element = root.find("fault-tree")
    if tree_element is not None:
        gates = list(tree_element)
        if len(gates) != 1:
            raise ArcadeXMLError("<fault-tree> must contain exactly one root gate")
        fault_tree = FaultTree(
            _parse_fault_tree_node(gates[0]),
            name=tree_element.get("name", "system_down"),
        )

    cost_element = root.find("cost-model")
    if cost_element is not None:
        cost_model = CostModel(
            component_down_cost=float(cost_element.get("component-down", "3")),
            component_up_cost=float(cost_element.get("component-up", "0")),
            crew_idle_cost=float(cost_element.get("crew-idle", "1")),
            crew_busy_cost=float(cost_element.get("crew-busy", "0")),
            repair_impulse_cost=float(cost_element.get("repair-impulse", "0")),
        )
    else:
        cost_model = CostModel.paper_default()

    disasters = []
    for element in root.findall("./disasters/disaster"):
        failed = [_require(child, "component") for child in element.findall("failed")]
        disasters.append(
            Disaster(
                name=_require(element, "name"),
                failed_components=tuple(failed),
                description=element.get("description", ""),
            )
        )

    return ArcadeModel(
        name=_require(root, "name"),
        components=tuple(components),
        repair_units=tuple(repair_units),
        spare_units=tuple(spare_units),
        fault_tree=fault_tree,
        cost_model=cost_model,
        disasters=tuple(disasters),
    )


def read_model(path: str | Path) -> ArcadeModel:
    """Read an Arcade model from an XML file."""
    return model_from_xml(Path(path).read_text(encoding="utf-8"))
