"""Cost annotations for Arcade models.

The DSN 2010 paper extends Arcade with costs so that repair strategies can
be compared economically:

    "In the model each RU has a cost of one per hour when idle and cost of
    zero when working.  For a BC a cost of zero is applied when operational
    and three per hour when failed."  (Section 5)

:class:`CostModel` captures exactly these four rate parameters plus optional
per-repair impulse costs, with per-component and per-repair-unit overrides.
The state-space generators turn a cost model into a
:class:`repro.ctmc.RewardStructure` named ``"cost"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping


@dataclass(frozen=True)
class CostModel:
    """Hourly cost rates (and optional impulse costs) of an Arcade model.

    Parameters
    ----------
    component_down_cost:
        Cost per hour while a component is failed (paper: 3).
    component_up_cost:
        Cost per hour while a component is operational (paper: 0).
    crew_idle_cost:
        Cost per hour per idle repair crew (paper: 1).
    crew_busy_cost:
        Cost per hour per busy repair crew (paper: 0).
    repair_impulse_cost:
        One-off cost charged for every completed repair (paper: 0).
    component_down_overrides / component_up_overrides:
        Optional per-component-name overrides of the hourly rates.
    """

    component_down_cost: float = 3.0
    component_up_cost: float = 0.0
    crew_idle_cost: float = 1.0
    crew_busy_cost: float = 0.0
    repair_impulse_cost: float = 0.0
    component_down_overrides: Mapping[str, float] = field(default_factory=dict)
    component_up_overrides: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for value, label in [
            (self.component_down_cost, "component_down_cost"),
            (self.component_up_cost, "component_up_cost"),
            (self.crew_idle_cost, "crew_idle_cost"),
            (self.crew_busy_cost, "crew_busy_cost"),
            (self.repair_impulse_cost, "repair_impulse_cost"),
        ]:
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")
        object.__setattr__(self, "component_down_overrides", dict(self.component_down_overrides))
        object.__setattr__(self, "component_up_overrides", dict(self.component_up_overrides))

    # ------------------------------------------------------------------
    def down_cost(self, component_name: str) -> float:
        """Hourly cost of ``component_name`` while failed."""
        return float(self.component_down_overrides.get(component_name, self.component_down_cost))

    def up_cost(self, component_name: str) -> float:
        """Hourly cost of ``component_name`` while operational."""
        return float(self.component_up_overrides.get(component_name, self.component_up_cost))

    def crew_cost(self, idle_crews: int, busy_crews: int) -> float:
        """Hourly cost of a repair unit with the given crew occupation."""
        if idle_crews < 0 or busy_crews < 0:
            raise ValueError("crew counts must be non-negative")
        return idle_crews * self.crew_idle_cost + busy_crews * self.crew_busy_cost

    @staticmethod
    def paper_default() -> "CostModel":
        """The cost parameters used in the paper's evaluation (Section 5)."""
        return CostModel(
            component_down_cost=3.0,
            component_up_cost=0.0,
            crew_idle_cost=1.0,
            crew_busy_cost=0.0,
        )

    @staticmethod
    def zero() -> "CostModel":
        """A cost model in which everything is free (useful in tests)."""
        return CostModel(0.0, 0.0, 0.0, 0.0, 0.0)
