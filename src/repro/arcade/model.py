"""The Arcade model container.

An :class:`ArcadeModel` bundles the elements of an Arcade specification —
basic components, repair units, spare management units, the fault tree and
cost annotations — validates their mutual consistency, and offers the
queries that the state-space generators and translators need (effective
failure rates, service levels, disaster states, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Iterable, Mapping, Sequence
from fractions import Fraction

from repro.arcade.components import ArcadeModelError, BasicComponent
from repro.arcade.costs import CostModel
from repro.arcade.fault_tree import FaultTree, ServiceTree
from repro.arcade.repair import RepairStrategy, RepairUnit
from repro.arcade.spares import SpareManagementUnit


@dataclass(frozen=True)
class Disaster:
    """A named disaster: the set of components that have failed simultaneously.

    Survivability is analysed on Given-Occurrence-Of-Disaster (GOOD) models
    that *start* in the state induced by a disaster (Section 3 of the paper).
    """

    name: str
    failed_components: tuple[str, ...]
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "failed_components", tuple(self.failed_components))
        if not self.failed_components:
            raise ArcadeModelError(f"disaster {self.name!r} needs at least one failed component")
        if len(set(self.failed_components)) != len(self.failed_components):
            raise ArcadeModelError(f"disaster {self.name!r} lists a component twice")


@dataclass(frozen=True)
class ArcadeModel:
    """A complete Arcade dependability model.

    Parameters
    ----------
    name:
        Model name (used in reports and XML round-trips).
    components:
        The basic components.
    repair_units:
        The repair units; each component may be covered by at most one unit.
        Components not covered by any unit are never repaired.
    spare_units:
        Spare management units (may be empty).
    fault_tree:
        Defines when the system is down.  The quantitative service tree is
        derived from it unless ``service_tree`` is given explicitly.
    cost_model:
        Cost annotations (defaults to the paper's values).
    disasters:
        Named disaster scenarios for survivability analysis.
    service_tree:
        Optional explicit service tree (otherwise derived from the fault
        tree by gate dualisation).
    """

    name: str
    components: tuple[BasicComponent, ...]
    repair_units: tuple[RepairUnit, ...] = ()
    spare_units: tuple[SpareManagementUnit, ...] = ()
    fault_tree: FaultTree | None = None
    cost_model: CostModel = field(default_factory=CostModel.paper_default)
    disasters: tuple[Disaster, ...] = ()
    service_tree: ServiceTree | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "components", tuple(self.components))
        object.__setattr__(self, "repair_units", tuple(self.repair_units))
        object.__setattr__(self, "spare_units", tuple(self.spare_units))
        object.__setattr__(self, "disasters", tuple(self.disasters))
        self.validate()

    # ------------------------------------------------------------------
    # validation and lookups
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check cross-references between the model's elements."""
        if not self.name:
            raise ArcadeModelError("an Arcade model needs a non-empty name")
        if not self.components:
            raise ArcadeModelError(f"model {self.name!r} has no components")
        names = [component.name for component in self.components]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ArcadeModelError(f"duplicate component names: {sorted(duplicates)}")
        known = set(names)

        covered: dict[str, str] = {}
        for unit in self.repair_units:
            for component_name in unit.components:
                if component_name not in known:
                    raise ArcadeModelError(
                        f"repair unit {unit.name!r} references unknown component {component_name!r}"
                    )
                if component_name in covered:
                    raise ArcadeModelError(
                        f"component {component_name!r} is covered by repair units "
                        f"{covered[component_name]!r} and {unit.name!r}"
                    )
                covered[component_name] = unit.name
        unit_names = [unit.name for unit in self.repair_units]
        if len(set(unit_names)) != len(unit_names):
            raise ArcadeModelError("duplicate repair unit names")

        spare_covered: dict[str, str] = {}
        for unit in self.spare_units:
            for component_name in unit.components:
                if component_name not in known:
                    raise ArcadeModelError(
                        f"spare unit {unit.name!r} references unknown component {component_name!r}"
                    )
                if component_name in spare_covered:
                    raise ArcadeModelError(
                        f"component {component_name!r} is managed by spare units "
                        f"{spare_covered[component_name]!r} and {unit.name!r}"
                    )
                spare_covered[component_name] = unit.name

        if self.fault_tree is not None:
            unknown = self.fault_tree.components() - known
            if unknown:
                raise ArcadeModelError(
                    f"fault tree references unknown components {sorted(unknown)}"
                )
        if self.service_tree is not None:
            unknown = self.service_tree.components() - known
            if unknown:
                raise ArcadeModelError(
                    f"service tree references unknown components {sorted(unknown)}"
                )
        for disaster in self.disasters:
            unknown = set(disaster.failed_components) - known
            if unknown:
                raise ArcadeModelError(
                    f"disaster {disaster.name!r} references unknown components {sorted(unknown)}"
                )

    # ------------------------------------------------------------------
    @property
    def component_names(self) -> tuple[str, ...]:
        return tuple(component.name for component in self.components)

    def components_by_name(self) -> dict[str, BasicComponent]:
        return {component.name: component for component in self.components}

    def component(self, name: str) -> BasicComponent:
        for component in self.components:
            if component.name == name:
                return component
        raise ArcadeModelError(f"unknown component {name!r} in model {self.name!r}")

    def repair_unit_of(self, component_name: str) -> RepairUnit | None:
        """The repair unit responsible for a component (``None`` if unrepaired)."""
        for unit in self.repair_units:
            if unit.covers(component_name):
                return unit
        return None

    def spare_unit_of(self, component_name: str) -> SpareManagementUnit | None:
        for unit in self.spare_units:
            if unit.covers(component_name):
                return unit
        return None

    def disaster(self, name: str) -> Disaster:
        for disaster in self.disasters:
            if disaster.name == name:
                return disaster
        raise ArcadeModelError(f"unknown disaster {name!r} in model {self.name!r}")

    def effective_service_tree(self) -> ServiceTree:
        """The explicit service tree, or the dual of the fault tree."""
        if self.service_tree is not None:
            return self.service_tree
        if self.fault_tree is None:
            raise ArcadeModelError(
                f"model {self.name!r} has neither a service tree nor a fault tree"
            )
        return self.fault_tree.to_service_tree()

    # ------------------------------------------------------------------
    # state-level queries (shared by the state-space generator and simulator)
    # ------------------------------------------------------------------
    def effective_failure_rate(self, component_name: str, up_components: Iterable[str]) -> float:
        """Failure rate of an (up) component given which components are up.

        Components managed by a spare unit use their dormant rate while not
        activated; all other components always use their active rate.
        """
        component = self.component(component_name)
        spare_unit = self.spare_unit_of(component_name)
        if spare_unit is None:
            return component.failure_rate
        return spare_unit.failure_rate(component, up_components)

    def is_down(self, failed_components: Iterable[str]) -> bool:
        """Whether the fault tree declares the system down."""
        if self.fault_tree is None:
            raise ArcadeModelError(f"model {self.name!r} has no fault tree")
        return self.fault_tree.is_down(failed_components)

    def service_level(self, failed_components: Iterable[str]) -> Fraction:
        """Quantitative service level of a state given its failed components."""
        failed = set(failed_components)
        up = [name for name in self.component_names if name not in failed]
        return self.effective_service_tree().service_level(up)

    def state_cost_rate(
        self,
        failed_components: Iterable[str],
        busy_crews_per_unit: Mapping[str, int],
    ) -> float:
        """Hourly cost of a state (component costs plus crew costs)."""
        failed = set(failed_components)
        total = 0.0
        for component in self.components:
            if component.name in failed:
                total += self.cost_model.down_cost(component.name)
            else:
                total += self.cost_model.up_cost(component.name)
        for unit in self.repair_units:
            busy = busy_crews_per_unit.get(unit.name, 0)
            idle = unit.effective_crews() - busy
            total += self.cost_model.crew_cost(idle, busy)
        return total

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def with_repair_strategy(
        self,
        strategy: RepairStrategy | str,
        crews: int | None = None,
        unit_names: Sequence[str] | None = None,
    ) -> "ArcadeModel":
        """Return a copy in which repair units use a different strategy.

        This is how the experiments sweep over DED / FRF-k / FFF-k: one base
        model, re-instantiated per strategy.
        """
        selected = set(unit_names) if unit_names is not None else None
        updated = tuple(
            unit.with_strategy(strategy, crews)
            if selected is None or unit.name in selected
            else unit
            for unit in self.repair_units
        )
        return replace(self, repair_units=updated)

    def with_cost_model(self, cost_model: CostModel) -> "ArcadeModel":
        return replace(self, cost_model=cost_model)

    def with_disasters(self, disasters: Iterable[Disaster]) -> "ArcadeModel":
        return replace(self, disasters=tuple(disasters))

    def strategy_label(self) -> str:
        """A short label describing the repair configuration (e.g. ``"FRF-2"``)."""
        labels = sorted({unit.label for unit in self.repair_units})
        return "+".join(labels) if labels else "none"
