"""Translation of Arcade models into I/O-IMCs (the original Arcade semantics).

Every basic component and every repair unit becomes one I/O-IMC; the whole
model is their parallel composition with the ``failed_*``/``repaired_*``
signals hidden.  The encoding mirrors the DSN 2008 Arcade paper:

* a **basic component** ``c`` delays exponentially with its failure rate,
  then *announces* its failure with the output ``failed_c!`` and waits in
  the failed state for the input ``repaired_c?``,
* a **repair unit** listens to the ``failed_*`` announcements of the
  components it covers, keeps its repair queue (ordered by the unit's
  strategy), spends an exponential repair time on each component in
  service, and announces completion with ``repaired_c!``.

After composition, hiding and maximal progress, the result is a CTMC that
the test suite compares (via lumping and via the computed measures) against
the reactive-modules translation and the direct state-space generator —
the "the two translations agree" claim of the paper's Section 2.

Limitations (by design of the comparison, not of the formalism): dormant
failure rates different from the active rate are not supported here, and
neither are components without a repair unit; both are features the case
study does not exercise through this path.
"""

from __future__ import annotations

from repro.arcade.components import ArcadeModelError, BasicComponent
from repro.arcade.model import ArcadeModel
from repro.arcade.repair import RepairStrategy, RepairUnit
from repro.ctmc import CTMC
from repro.iomc import IOIMC, Signature, compose_many, hide, to_ctmc


def component_to_iomc(component: BasicComponent, repaired_by_unit: bool) -> IOIMC:
    """The I/O-IMC of a basic component.

    States: ``"up"`` (operational), ``"announcing"`` (failure happened, about
    to be announced), ``"down"`` (failed, waiting for repair).
    """
    fail_action = f"failed_{component.name}"
    repair_action = f"repaired_{component.name}"
    if repaired_by_unit:
        signature = Signature(inputs={repair_action}, outputs={fail_action})
    else:
        signature = Signature(internals={fail_action})
    model = IOIMC(name=f"bc_{component.name}", signature=signature)
    model.add_state("up", description={component.name: "up"}, initial=True)
    model.add_state("announcing", description={component.name: "announcing"})
    model.add_state("down", description={component.name: "down"})
    model.add_markovian("up", component.failure_rate, "announcing")
    model.add_interactive("announcing", fail_action, "down")
    if repaired_by_unit:
        model.add_interactive("down", repair_action, "up")
    return model


def repair_unit_to_iomc(unit: RepairUnit, model: ArcadeModel) -> IOIMC:
    """The I/O-IMC of a repair unit (any strategy, any crew count).

    The state is the unit's repair queue, optionally paired with the name of
    a component whose repair has just finished and must still be announced
    (``repaired_c!``); the queue transitions replicate exactly the logic of
    :class:`repro.arcade.repair.RepairUnit`, so the composition agrees with
    the direct state-space generator by construction.
    """
    components_by_name = model.components_by_name()
    inputs = {f"failed_{name}" for name in unit.components}
    outputs = {f"repaired_{name}" for name in unit.components}
    automaton = IOIMC(
        name=f"ru_{unit.name}",
        signature=Signature(inputs=frozenset(inputs), outputs=frozenset(outputs)),
    )

    initial = ((), None)
    automaton.add_state(initial, description={unit.name: []}, initial=True)
    frontier = [initial]
    seen = {initial}

    def register(state) -> None:
        if state not in seen:
            seen.add(state)
            queue, announcing = state
            description = {unit.name: list(queue)}
            if announcing:
                description["announcing"] = announcing
            automaton.add_state(state, description=description)
            frontier.append(state)

    while frontier:
        state = frontier.pop()
        queue, announcing = state

        if announcing is not None:
            # Announce the finished repair before doing anything else.
            target = (queue, None)
            register(target)
            automaton.add_interactive(state, f"repaired_{announcing}", target)
            continue

        # React to failure announcements of currently-up components.
        for name in unit.components:
            if name in queue:
                continue
            new_queue = unit.insert(queue, components_by_name[name], components_by_name)
            target = (new_queue, None)
            register(target)
            automaton.add_interactive(state, f"failed_{name}", target)

        # Repair the components in service.
        for name in unit.in_service(queue):
            new_queue = unit.remove(queue, name)
            target = (new_queue, name)
            register(target)
            automaton.add_markovian(state, components_by_name[name].repair_rate, target)

    return automaton


def arcade_to_iomc(model: ArcadeModel) -> IOIMC:
    """Translate ``model`` into the parallel composition of its I/O-IMCs.

    The ``failed_*``/``repaired_*`` synchronisation actions are hidden, so
    the result is ready for :func:`repro.iomc.to_ctmc`.
    """
    for component in model.components:
        spare_unit = model.spare_unit_of(component.name)
        if spare_unit is not None and component.dormancy_factor != 1.0:
            raise ArcadeModelError(
                "the I/O-IMC translation supports hot spares only "
                f"(component {component.name!r} has dormancy factor {component.dormancy_factor})"
            )
    parts = []
    for component in model.components:
        repaired = model.repair_unit_of(component.name) is not None
        parts.append(component_to_iomc(component, repaired))
    for unit in model.repair_units:
        parts.append(repair_unit_to_iomc(unit, model))
    composed = compose_many(parts, name=f"arcade_{model.name}")
    return hide(composed)


def arcade_iomc_ctmc(model: ArcadeModel) -> CTMC:
    """Full pipeline: translate, compose, hide, apply maximal progress, build the CTMC.

    The CTMC is labelled ``"down"``/``"operational"`` using the model's fault
    tree, evaluated on each composed state's component statuses.
    """
    composed = arcade_to_iomc(model)

    def labels(description) -> list[str]:
        failed = set()
        for part in description:
            if isinstance(part, dict):
                for key, value in part.items():
                    if value == "down":
                        failed.add(key)
        if model.fault_tree is None:
            return []
        return ["down"] if model.is_down(failed) else ["operational"]

    return to_ctmc(composed, label_fn=labels)
