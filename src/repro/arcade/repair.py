"""Repair units and repair strategies.

A repair unit (RU) is responsible for a set of components.  When components
fail they enter the unit's *repair queue*; the unit's ``crews`` foremost
queue entries are *in service*, i.e. actively being repaired (each at its
own repair rate).  The **strategy** determines where a newly-failed
component is inserted into the queue:

``DEDICATED``
    Every component effectively has its own crew — all failed components are
    repaired in parallel; the queue order is irrelevant (and is kept in a
    canonical order so that the state space stays minimal, matching the
    ``2^n`` states of the paper's Table 1).
``FCFS``
    First-come-first-served: new failures are appended at the end.
``FASTEST_REPAIR_FIRST`` (FRF)
    Components with a shorter MTTR (larger repair rate) are repaired first;
    ties are broken first-come-first-served, as prescribed in Section 2 of
    the paper.
``FASTEST_FAILURE_FIRST`` (FFF)
    Components with a shorter MTTF (larger failure rate) are repaired first;
    ties FCFS.
``PRIORITY``
    Components with a smaller priority number are repaired first; ties FCFS.
    This is the "non-preemptive priority scheduling" the paper's abstract
    refers to when the priorities are chosen by the operator.

Two queueing disciplines are supported:

* ``preemptive`` (default): the queue is always kept in policy order, so a
  newly failed high-priority component moves ahead of lower-priority
  components even if one of those is currently in service.  Because repair
  times are exponential, no work is lost by pre-emption, and the reachable
  state space is independent of the number of crews (the observation made
  for Table 1 of the paper).
* ``non_preemptive``: a new arrival is never inserted ahead of a component
  that is already in service.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence

from repro.arcade.components import ArcadeModelError, BasicComponent


class RepairStrategy(enum.Enum):
    """The repair-scheduling strategies compared in the paper."""

    DEDICATED = "dedicated"
    FCFS = "fcfs"
    FASTEST_REPAIR_FIRST = "fastest_repair_first"
    FASTEST_FAILURE_FIRST = "fastest_failure_first"
    PRIORITY = "priority"

    @staticmethod
    def from_string(value: str) -> "RepairStrategy":
        """Parse a strategy name; accepts the paper's abbreviations too."""
        normalised = value.strip().lower().replace("-", "_").replace(" ", "_")
        aliases = {
            "ded": RepairStrategy.DEDICATED,
            "dedicated": RepairStrategy.DEDICATED,
            "fcfs": RepairStrategy.FCFS,
            "first_come_first_served": RepairStrategy.FCFS,
            "first_come_first_serve": RepairStrategy.FCFS,
            "frf": RepairStrategy.FASTEST_REPAIR_FIRST,
            "fastest_repair_first": RepairStrategy.FASTEST_REPAIR_FIRST,
            "fff": RepairStrategy.FASTEST_FAILURE_FIRST,
            "fastest_failure_first": RepairStrategy.FASTEST_FAILURE_FIRST,
            "priority": RepairStrategy.PRIORITY,
            "prio": RepairStrategy.PRIORITY,
        }
        try:
            return aliases[normalised]
        except KeyError:
            raise ArcadeModelError(f"unknown repair strategy {value!r}") from None

    def short_name(self, crews: int | None = None) -> str:
        """The paper's abbreviation, e.g. ``"FRF-2"``."""
        base = {
            RepairStrategy.DEDICATED: "DED",
            RepairStrategy.FCFS: "FCFS",
            RepairStrategy.FASTEST_REPAIR_FIRST: "FRF",
            RepairStrategy.FASTEST_FAILURE_FIRST: "FFF",
            RepairStrategy.PRIORITY: "PRIO",
        }[self]
        if crews is None or self is RepairStrategy.DEDICATED:
            return base
        return f"{base}-{crews}"


@dataclass(frozen=True)
class RepairUnit:
    """A repair unit: a strategy, a number of crews and a set of components.

    Parameters
    ----------
    name:
        Unique repair-unit name.
    strategy:
        The scheduling strategy (a :class:`RepairStrategy` or its string name).
    components:
        Names of the components under this unit's responsibility.
    crews:
        Number of repair crews (ignored for ``DEDICATED``, which behaves as
        if there were a crew per component).
    preemptive:
        Queueing discipline, see the module docstring.
    """

    name: str
    strategy: RepairStrategy
    components: tuple[str, ...]
    crews: int = 1
    preemptive: bool = True

    def __post_init__(self) -> None:
        if isinstance(self.strategy, str):
            object.__setattr__(self, "strategy", RepairStrategy.from_string(self.strategy))
        object.__setattr__(self, "components", tuple(self.components))
        if not self.name:
            raise ArcadeModelError("a repair unit needs a non-empty name")
        if not self.components:
            raise ArcadeModelError(f"repair unit {self.name!r} is responsible for no components")
        if len(set(self.components)) != len(self.components):
            raise ArcadeModelError(f"repair unit {self.name!r} lists a component twice")
        if self.crews < 1:
            raise ArcadeModelError(f"repair unit {self.name!r} needs at least one crew")

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Short label such as ``"FRF-2"`` used in tables and figures."""
        return self.strategy.short_name(self.crews)

    def effective_crews(self) -> int:
        """The number of crews actually available (``DEDICATED`` ⇒ one per component)."""
        if self.strategy is RepairStrategy.DEDICATED:
            return len(self.components)
        return self.crews

    def covers(self, component_name: str) -> bool:
        return component_name in self.components

    # ------------------------------------------------------------------
    # queue mechanics
    # ------------------------------------------------------------------
    def policy_key(self, component: BasicComponent) -> tuple:
        """The sort key of ``component`` under this unit's strategy.

        Smaller keys are repaired earlier.  FCFS and DEDICATED use a constant
        key, so insertion order is preserved.
        """
        strategy = self.strategy
        if strategy is RepairStrategy.FASTEST_REPAIR_FIRST:
            return (component.mttr,)
        if strategy is RepairStrategy.FASTEST_FAILURE_FIRST:
            return (component.mttf,)
        if strategy is RepairStrategy.PRIORITY:
            return (component.priority,)
        return (0,)

    def insert(
        self,
        queue: Sequence[str],
        component: BasicComponent,
        components_by_name: Mapping[str, BasicComponent],
    ) -> tuple[str, ...]:
        """Insert a newly failed ``component`` into ``queue``.

        Returns the new queue (a tuple).  The insertion point follows the
        strategy's policy order with FCFS tie-breaking; under the
        non-preemptive discipline the insertion point never lies before the
        components currently in service.
        """
        if component.name in queue:
            raise ArcadeModelError(
                f"component {component.name!r} is already in the repair queue of {self.name!r}"
            )
        if self.strategy is RepairStrategy.DEDICATED:
            # Canonical order (by name) keeps the state space minimal; every
            # queued component is in service anyway.
            return tuple(sorted([*queue, component.name]))

        key = self.policy_key(component)
        position = len(queue)
        for index, queued_name in enumerate(queue):
            queued_key = self.policy_key(components_by_name[queued_name])
            if queued_key > key:
                position = index
                break
        if not self.preemptive:
            in_service = min(self.effective_crews(), len(queue))
            position = max(position, in_service)
        updated = list(queue)
        updated.insert(position, component.name)
        return tuple(updated)

    def in_service(self, queue: Sequence[str]) -> tuple[str, ...]:
        """The components of ``queue`` currently being repaired."""
        if self.strategy is RepairStrategy.DEDICATED:
            return tuple(queue)
        return tuple(queue[: self.effective_crews()])

    def remove(self, queue: Sequence[str], component_name: str) -> tuple[str, ...]:
        """Remove a repaired component from the queue."""
        if component_name not in queue:
            raise ArcadeModelError(
                f"component {component_name!r} is not in the repair queue of {self.name!r}"
            )
        return tuple(name for name in queue if name != component_name)

    def idle_crews(self, queue: Sequence[str]) -> int:
        """Number of idle crews in the given queue state."""
        total = self.effective_crews()
        return total - min(total, len(self.in_service(queue)))

    def busy_crews(self, queue: Sequence[str]) -> int:
        """Number of busy crews in the given queue state."""
        return self.effective_crews() - self.idle_crews(queue)

    def initial_queue(
        self,
        failed: Iterable[str],
        components_by_name: Mapping[str, BasicComponent],
    ) -> tuple[str, ...]:
        """Build the repair queue for a Given-Occurrence-Of-Disaster state.

        The order in which the disaster's components failed is unknown, so —
        following Section 5 of the paper — the components' *priorities*
        define the arrival order before the strategy's own policy order is
        applied.
        """
        queue: tuple[str, ...] = ()
        ordered = sorted(
            failed,
            key=lambda name: (components_by_name[name].priority, name),
        )
        for name in ordered:
            queue = self.insert(queue, components_by_name[name], components_by_name)
        return queue

    def with_strategy(self, strategy: RepairStrategy | str, crews: int | None = None) -> "RepairUnit":
        """Return a copy with a different strategy (and optionally crew count)."""
        if isinstance(strategy, str):
            strategy = RepairStrategy.from_string(strategy)
        return RepairUnit(
            name=self.name,
            strategy=strategy,
            components=self.components,
            crews=self.crews if crews is None else crews,
            preemptive=self.preemptive,
        )
