"""Direct expansion of an Arcade model into a labelled CTMC.

This is the computational fast path used by the experiments (the reactive
modules and I/O-IMC translations are alternative routes that tests check for
agreement).  The state of the CTMC is

* one *repair queue* per repair unit — the ordered tuple of failed
  components under that unit's responsibility; the first ``crews`` entries
  are in service (see :mod:`repro.arcade.repair`), and
* the set of failed components not covered by any repair unit (they stay
  failed forever).

Transitions:

* an *up* component ``c`` fails with its effective failure rate (dormant
  rate if a spare management unit currently keeps it in standby); it is
  inserted into its repair unit's queue according to the unit's strategy,
* every component in service is repaired with its repair rate and leaves the
  queue.

Because failure and repair transitions are all exponential and no two
components share a transition, failures never occur simultaneously — the
prerequisite (noted in Section 2 of the paper) for the deterministic CTMC
translation to agree with the I/O-IMC semantics.

Each state is labelled ``"down"``/``"operational"`` via the fault tree and
``"no_service"``/``"full_service"`` via the service tree; the quantitative
service level of every state is returned alongside the chain.  The cost
model becomes a reward structure named ``"cost"``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from collections.abc import Iterable, Mapping

import numpy as np

from repro.arcade.components import ArcadeModelError
from repro.arcade.model import ArcadeModel, Disaster
from repro.ctmc import CTMC, MarkovRewardModel, RewardStructure
from repro.ctmc.ctmc import CTMCBuilder

#: A state is a pair ``(queues, uncovered_failed)`` where ``queues`` is a
#: tuple with one repair-queue tuple per repair unit (in model order) and
#: ``uncovered_failed`` is a sorted tuple of failed components that no
#: repair unit covers.
ArcadeState = tuple[tuple[tuple[str, ...], ...], tuple[str, ...]]


@dataclass
class ArcadeStateSpace:
    """The result of expanding an :class:`ArcadeModel` into a CTMC.

    Attributes
    ----------
    model:
        The Arcade model that was expanded.
    chain:
        The labelled CTMC (initial state = everything operational).
    reward_model:
        The chain wrapped with the ``"cost"`` reward structure.
    states:
        The explored states, index-aligned with the chain.
    service_levels:
        Exact service level (a :class:`fractions.Fraction`) per state.
    with_repairs:
        Whether repair transitions were generated (``False`` for the
        reliability model).
    """

    model: ArcadeModel
    chain: CTMC
    reward_model: MarkovRewardModel
    states: list[ArcadeState]
    service_levels: list[Fraction]
    with_repairs: bool

    def __post_init__(self) -> None:
        self._index = {state: index for index, state in enumerate(self.states)}

    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return self.chain.num_states

    @property
    def num_transitions(self) -> int:
        return self.chain.num_transitions

    def state_index(self, state: ArcadeState) -> int:
        try:
            return self._index[state]
        except KeyError:
            raise ArcadeModelError(f"state {state!r} was not reached during expansion") from None

    def failed_components(self, state_index: int) -> frozenset[str]:
        """The failed components of a state."""
        queues, uncovered = self.states[state_index]
        failed: set[str] = set(uncovered)
        for queue in queues:
            failed |= set(queue)
        return frozenset(failed)

    def service_level_array(self) -> np.ndarray:
        """Service levels as a float vector (index-aligned with the chain)."""
        return np.array([float(level) for level in self.service_levels])

    def states_with_service_at_least(self, threshold: float | Fraction) -> np.ndarray:
        """Indices of states whose service level is at least ``threshold``.

        This is the set ``S_{sl(x)}`` of the paper.
        """
        limit = Fraction(threshold).limit_denominator(10**6) if not isinstance(
            threshold, Fraction
        ) else threshold
        return np.array(
            [index for index, level in enumerate(self.service_levels) if level >= limit],
            dtype=int,
        )

    # ------------------------------------------------------------------
    def disaster_state(self, disaster: Disaster | str) -> int:
        """The index of the state induced by a disaster (the GOOD start state).

        The repair queues of the disaster state are built from the component
        priorities, as prescribed by the paper for Given-Occurrence-Of-
        Disaster models.
        """
        if isinstance(disaster, str):
            disaster = self.model.disaster(disaster)
        components_by_name = self.model.components_by_name()
        failed = set(disaster.failed_components)
        queues = []
        for unit in self.model.repair_units:
            covered_failed = [name for name in failed if unit.covers(name)]
            queues.append(unit.initial_queue(covered_failed, components_by_name))
        covered = {name for unit in self.model.repair_units for name in unit.components}
        uncovered = tuple(sorted(failed - covered))
        return self.state_index((tuple(queues), uncovered))

    def initial_distribution_for_disaster(self, disaster: Disaster | str) -> np.ndarray:
        """A point-mass initial distribution on the disaster state."""
        distribution = np.zeros(self.num_states)
        distribution[self.disaster_state(disaster)] = 1.0
        return distribution

    def chain_for_disaster(self, disaster: Disaster | str) -> CTMC:
        """The same CTMC, started in the disaster state (the GOOD model)."""
        return self.chain.with_initial_distribution(
            self.initial_distribution_for_disaster(disaster)
        )


def _state_failed(state: ArcadeState) -> set[str]:
    queues, uncovered = state
    failed: set[str] = set(uncovered)
    for queue in queues:
        failed |= set(queue)
    return failed


def build_state_space(
    model: ArcadeModel,
    with_repairs: bool = True,
    max_states: int | None = None,
) -> ArcadeStateSpace:
    """Expand ``model`` into an :class:`ArcadeStateSpace`.

    Parameters
    ----------
    model:
        The Arcade model.
    with_repairs:
        If ``False``, repair transitions are omitted; the resulting chain is
        the *reliability model* in which every failure is permanent (used
        for Figure 3 of the paper, where repairs are not considered).
    max_states:
        Optional safety limit on the number of reachable states.
    """
    components_by_name = model.components_by_name()
    component_names = model.component_names
    repair_units = model.repair_units
    service_tree = model.effective_service_tree()
    # Precomputed component -> repair-unit index (first covering unit wins),
    # so the expansion loop needs no linear scan over units per failure.
    unit_index_by_component: dict[str, int] = {}
    for position, unit in enumerate(repair_units):
        for name in unit.components:
            unit_index_by_component.setdefault(name, position)

    initial_state: ArcadeState = (tuple(() for _ in repair_units), ())

    index_of: dict[ArcadeState, int] = {initial_state: 0}
    states: list[ArcadeState] = [initial_state]
    queue: deque[int] = deque([0])

    builder = CTMCBuilder()
    builder.add_state(_describe(initial_state, repair_units))

    def register(state: ArcadeState) -> int:
        if state in index_of:
            return index_of[state]
        index = len(states)
        index_of[state] = index
        states.append(state)
        builder.add_state(_describe(state, repair_units))
        queue.append(index)
        if max_states is not None and len(states) > max_states:
            raise ArcadeModelError(f"state space exceeds the limit of {max_states} states")
        return index

    while queue:
        source = queue.popleft()
        state = states[source]
        queues, uncovered = state
        failed = _state_failed(state)
        up = [name for name in component_names if name not in failed]

        # Failure transitions.
        for name in up:
            rate = model.effective_failure_rate(name, up)
            if rate <= 0.0:
                continue
            unit_index = unit_index_by_component.get(name)
            if unit_index is None:
                successor: ArcadeState = (queues, tuple(sorted([*uncovered, name])))
            else:
                unit = repair_units[unit_index]
                new_queue = unit.insert(queues[unit_index], components_by_name[name], components_by_name)
                new_queues = tuple(
                    new_queue if position == unit_index else existing
                    for position, existing in enumerate(queues)
                )
                successor = (new_queues, uncovered)
            builder.add_transition(source, register(successor), rate)

        # Repair transitions.
        if with_repairs:
            for unit_index, unit in enumerate(repair_units):
                for name in unit.in_service(queues[unit_index]):
                    rate = components_by_name[name].repair_rate
                    new_queue = unit.remove(queues[unit_index], name)
                    new_queues = tuple(
                        new_queue if position == unit_index else existing
                        for position, existing in enumerate(queues)
                    )
                    successor = (new_queues, uncovered)
                    builder.add_transition(source, register(successor), rate)

    # Labels, service levels and costs.
    service_levels: list[Fraction] = []
    cost_rates = np.zeros(len(states))
    for index, state in enumerate(states):
        failed = _state_failed(state)
        up_set = [name for name in component_names if name not in failed]
        if model.fault_tree is not None:
            if model.is_down(failed):
                builder.add_label("down", index)
            else:
                builder.add_label("operational", index)
        level = service_tree.service_level(up_set)
        service_levels.append(level)
        if level == 0:
            builder.add_label("no_service", index)
        if level == 1:
            builder.add_label("full_service", index)
        busy = {
            unit.name: unit.busy_crews(state[0][position])
            for position, unit in enumerate(repair_units)
        }
        cost_rates[index] = model.state_cost_rate(failed, busy)

    chain = builder.build({0: 1.0})
    reward_model = MarkovRewardModel(chain, RewardStructure("cost", cost_rates))
    return ArcadeStateSpace(
        model=model,
        chain=chain,
        reward_model=reward_model,
        states=states,
        service_levels=service_levels,
        with_repairs=with_repairs,
    )


def _describe(state: ArcadeState, repair_units) -> dict:
    queues, uncovered = state
    description = {
        unit.name: list(queue) for unit, queue in zip(repair_units, queues)
    }
    if uncovered:
        description["unrepaired"] = list(uncovered)
    return description
