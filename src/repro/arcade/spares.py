"""Spare management units.

A spare management unit (SMU) watches over a group of interchangeable
components of which only ``required`` need to be operational for the group
to deliver full service; the remaining members are spares.  The unit
determines which up components are *active* and which are *dormant*
(standing by):

* active components fail at their full failure rate,
* dormant components fail at their dormant rate
  (``dormancy_factor / MTTF`` — hot spares use factor 1, cold spares 0).

In the water-treatment case study the pumps form such groups — "(3+1)" in
Line 1 and "(2+1)" in Line 2 — and the paper treats the spare pumps as hot
spares (all four pumps of Line 1 "can fail", Section 5), which is the
default here.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence

from repro.arcade.components import ArcadeModelError, BasicComponent


@dataclass(frozen=True)
class SpareManagementUnit:
    """A group of interchangeable components with spares.

    Parameters
    ----------
    name:
        Unique unit name.
    components:
        The member component names, in activation-preference order: the
        first ``required`` up members are activated.
    required:
        Number of active components needed for the group to deliver full
        service.
    """

    name: str
    components: tuple[str, ...]
    required: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "components", tuple(self.components))
        if not self.name:
            raise ArcadeModelError("a spare management unit needs a non-empty name")
        if len(set(self.components)) != len(self.components):
            raise ArcadeModelError(f"spare unit {self.name!r} lists a component twice")
        if not 1 <= self.required <= len(self.components):
            raise ArcadeModelError(
                f"spare unit {self.name!r}: required count {self.required} must be between 1 "
                f"and the group size {len(self.components)}"
            )

    @property
    def spares(self) -> int:
        """Number of spare members beyond the required count."""
        return len(self.components) - self.required

    def covers(self, component_name: str) -> bool:
        return component_name in self.components

    def active_members(self, up_components: Iterable[str]) -> tuple[str, ...]:
        """The members activated in a state where ``up_components`` are operational.

        The first ``required`` up members (in preference order) are active;
        any further up members stand by as dormant spares.
        """
        up = set(up_components)
        active: list[str] = []
        for name in self.components:
            if name in up:
                active.append(name)
                if len(active) == self.required:
                    break
        return tuple(active)

    def is_active(self, component_name: str, up_components: Iterable[str]) -> bool:
        """Whether ``component_name`` is active (rather than dormant) in the state."""
        if component_name not in self.components:
            raise ArcadeModelError(
                f"component {component_name!r} is not managed by spare unit {self.name!r}"
            )
        return component_name in self.active_members(up_components)

    def delivers_service(self, up_components: Iterable[str]) -> bool:
        """Whether the group can deliver full service in the given state."""
        up = set(up_components)
        available = sum(1 for name in self.components if name in up)
        return available >= self.required

    def failure_rate(
        self,
        component: BasicComponent,
        up_components: Iterable[str],
    ) -> float:
        """Effective failure rate of a member in the given state."""
        if self.is_active(component.name, up_components):
            return component.failure_rate
        return component.dormant_failure_rate
