"""Basic components of an Arcade model.

A basic component (BC) models a physical or logical part of the system with
an *operational* and a *failed* mode.  Failure and repair times are
exponentially distributed; the user may specify them either as rates or as
mean times (MTTF / MTTR), whichever is more natural — the paper's Figure 2
gives mean times.

Components may additionally carry

* a *dormant* failure rate used while the component is held in standby by a
  spare management unit (``dormancy_factor`` scales the active failure
  rate; 1.0 = hot spare, 0.0 = cold spare),
* a *priority* used by priority-scheduled repair units and to fix the
  repair order of Given-Occurrence-Of-Disaster models (Section 5 of the
  paper), and
* a *component class* name (e.g. ``"pump"``) used for reporting and for
  grouping identically-behaving components.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


class ArcadeModelError(ValueError):
    """Raised when an Arcade model element is ill-formed."""


@dataclass(frozen=True)
class BasicComponent:
    """A repairable component with exponential failure and repair behaviour.

    Parameters
    ----------
    name:
        Unique component name, e.g. ``"line1_pump1"``.
    mttf:
        Mean time to failure (hours) while the component is active.
    mttr:
        Mean time to repair (hours) once a repair crew works on it.
    component_class:
        Free-form class name used for grouping in reports (``"pump"``,
        ``"softening_tank"``, ...).  Defaults to the component name.
    priority:
        Repair priority; smaller numbers are repaired first by
        priority-scheduled repair units and come first in the initial repair
        queue of a disaster (GOOD) model.
    dormancy_factor:
        Factor applied to the failure rate while the component is a dormant
        (standby) spare: ``1.0`` models a hot spare, ``0.0`` a cold spare and
        values in between a warm spare.
    failure_modes:
        Names of the component's failure modes.  The paper's case study uses
        single-mode components; multiple modes are supported by the direct
        state-space generator by treating each mode as leading to the same
        failed state (the failure rate is split evenly across the modes).
    """

    name: str
    mttf: float
    mttr: float
    component_class: str = ""
    priority: int = 0
    dormancy_factor: float = 1.0
    failure_modes: tuple[str, ...] = ("failed",)

    def __post_init__(self) -> None:
        if not self.name:
            raise ArcadeModelError("a component needs a non-empty name")
        if self.mttf <= 0:
            raise ArcadeModelError(f"component {self.name!r}: MTTF must be positive")
        if self.mttr <= 0:
            raise ArcadeModelError(f"component {self.name!r}: MTTR must be positive")
        if not 0.0 <= self.dormancy_factor <= 1.0:
            raise ArcadeModelError(
                f"component {self.name!r}: dormancy factor must be in [0, 1]"
            )
        if not self.failure_modes:
            raise ArcadeModelError(f"component {self.name!r}: needs at least one failure mode")
        if not self.component_class:
            object.__setattr__(self, "component_class", self.name)

    # ------------------------------------------------------------------
    # rate conversions
    # ------------------------------------------------------------------
    @property
    def failure_rate(self) -> float:
        """Failure rate (per hour) while active: ``1 / MTTF``."""
        return 1.0 / self.mttf

    @property
    def dormant_failure_rate(self) -> float:
        """Failure rate while dormant: ``dormancy_factor / MTTF``."""
        return self.dormancy_factor / self.mttf

    @property
    def repair_rate(self) -> float:
        """Repair rate (per hour) while being repaired: ``1 / MTTR``."""
        return 1.0 / self.mttr

    @property
    def availability(self) -> float:
        """Stand-alone steady-state availability ``MTTF / (MTTF + MTTR)``.

        Exact for a component with its own dedicated repair crew; used by
        tests as an analytic oracle.
        """
        return self.mttf / (self.mttf + self.mttr)

    @staticmethod
    def from_rates(
        name: str,
        failure_rate: float,
        repair_rate: float,
        **kwargs: object,
    ) -> "BasicComponent":
        """Construct a component from rates instead of mean times."""
        if failure_rate <= 0 or repair_rate <= 0:
            raise ArcadeModelError(f"component {name!r}: rates must be positive")
        return BasicComponent(name, 1.0 / failure_rate, 1.0 / repair_rate, **kwargs)  # type: ignore[arg-type]

    def renamed(self, name: str) -> "BasicComponent":
        """Return a copy with a different name (keeps the class name)."""
        return replace(self, name=name, component_class=self.component_class)

    def with_priority(self, priority: int) -> "BasicComponent":
        """Return a copy with a different repair priority."""
        return replace(self, priority=priority)


@dataclass(frozen=True)
class ComponentGroup:
    """A convenience bundle of identically-parameterised components.

    Not part of the Arcade formalism itself; used by model builders (e.g. the
    water-treatment case study) to create ``n`` copies of a template
    component with systematic names.
    """

    template: BasicComponent
    count: int
    name_format: str = "{base}{index}"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ArcadeModelError("a component group needs at least one member")

    def members(self) -> list[BasicComponent]:
        """Instantiate the group's components (1-based indices)."""
        components = []
        for index in range(1, self.count + 1):
            name = self.name_format.format(base=self.template.name, index=index)
            components.append(self.template.renamed(name))
        return components
