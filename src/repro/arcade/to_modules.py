"""Translation of Arcade models into stochastic reactive modules.

This is the reproduction of the paper's "translate to PRISM" step (Figure 1):
every Arcade element becomes part of a :class:`repro.modules.ModulesFile`
that can be explored into a CTMC (:func:`repro.modules.build_ctmc`) or
exported as PRISM source text (:func:`repro.modules.export_prism_model`).

Encoding
--------
* Every basic component ``c`` owns a boolean variable ``c_up`` and two
  synchronising commands ``[fail_c]`` and ``[repair_c]``; the failure rate
  sits in the component's command, the repair rate in the repair unit's.
* A **dedicated** repair unit contributes a ``[repair_c]`` command with
  guard ``true`` for each covered component — every failed component is
  repaired concurrently.
* A **queued** repair unit (FCFS / FRF / FFF / priority) owns one bounded
  integer ``<unit>_q_c`` per covered component holding the component's
  current queue position (0 = not queued).  Failing inserts the component at
  its policy position and shifts later entries; repairing is enabled for the
  first ``crews`` positions and closes the gap.  This is the position-
  variable encoding a PRISM model of the system needs, and it keeps the
  reachable state space identical to the direct generator's queue encoding.
* The fault tree becomes the label ``"down"`` (and its negation
  ``"operational"``), and the cost model becomes a reward structure named
  ``"cost"``.

The queued encoding implements the *preemptive* discipline (see
:mod:`repro.arcade.repair`); translating non-preemptive units is rejected
explicitly rather than silently producing a different model.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.arcade.components import ArcadeModelError, BasicComponent
from repro.arcade.fault_tree import And, BasicEvent, FaultTreeNode, KOfN, Or
from repro.arcade.model import ArcadeModel, Disaster
from repro.arcade.repair import RepairStrategy, RepairUnit
from repro.expr import Const, Expression, Ite, Var
from repro.modules import (
    Command,
    Module,
    ModulesFile,
    RewardStructureDefinition,
    Update,
    VariableDeclaration,
)


def _up_var(component_name: str) -> Var:
    return Var(f"{component_name}_up")


def _queue_var(unit: RepairUnit, component_name: str) -> Var:
    return Var(f"{unit.name}_q_{component_name}")


def _indicator(condition: Expression) -> Expression:
    return Ite(condition, Const(1), Const(0))


def _sum(expressions: Sequence[Expression]) -> Expression:
    if not expressions:
        return Const(0)
    total = expressions[0]
    for expression in expressions[1:]:
        total = total + expression
    return total


def _failure_condition(node: FaultTreeNode) -> Expression:
    """Fault-tree node → boolean expression over the ``*_up`` variables."""
    if isinstance(node, BasicEvent):
        return ~_up_var(node.component)
    if isinstance(node, Or):
        children = [_failure_condition(child) for child in node.children]
        expression = children[0]
        for child in children[1:]:
            expression = expression | child
        return expression
    if isinstance(node, And):
        children = [_failure_condition(child) for child in node.children]
        expression = children[0]
        for child in children[1:]:
            expression = expression & child
        return expression
    if isinstance(node, KOfN):
        count = _sum([_indicator(_failure_condition(child)) for child in node.children])
        return count >= Const(node.k)
    raise ArcadeModelError(f"cannot translate fault-tree node {node!r}")


def _effective_failure_rate_expression(model: ArcadeModel, component: BasicComponent) -> Expression:
    """Failure-rate expression taking spare (dormancy) management into account."""
    spare_unit = model.spare_unit_of(component.name)
    active_rate = Const(component.failure_rate)
    if spare_unit is None or component.dormancy_factor == 1.0:
        return active_rate
    dormant_rate = Const(component.dormant_failure_rate)
    # The component is active iff it is up and the number of up members that
    # precede it in the unit's preference order is below the required count.
    position = spare_unit.components.index(component.name)
    predecessors = [
        _indicator(_up_var(name)) for name in spare_unit.components[:position]
    ]
    active_condition = _sum(predecessors) < Const(spare_unit.required)
    return Ite(active_condition, active_rate, dormant_rate)


def _component_module(model: ArcadeModel, component: BasicComponent) -> Module:
    module = Module(f"component_{component.name}")
    module.add_variable(VariableDeclaration.boolean(f"{component.name}_up", True))
    unit = model.repair_unit_of(component.name)
    rate = _effective_failure_rate_expression(model, component)
    fail_action = f"fail_{component.name}" if unit is not None else ""
    module.add_command(
        Command.simple(
            fail_action,
            _up_var(component.name),
            rate,
            {f"{component.name}_up": Const(False)},
        )
    )
    if unit is not None:
        module.add_command(
            Command.simple(
                f"repair_{component.name}",
                ~_up_var(component.name),
                Const(1.0),
                {f"{component.name}_up": Const(True)},
            )
        )
    return module


def _dedicated_unit_module(model: ArcadeModel, unit: RepairUnit) -> Module:
    module = Module(f"repair_unit_{unit.name}")
    for name in unit.components:
        component = model.component(name)
        module.add_command(
            Command.simple(
                f"repair_{name}",
                Const(True),
                Const(component.repair_rate),
                {},
            )
        )
    return module


def _queued_unit_module(model: ArcadeModel, unit: RepairUnit) -> Module:
    if not unit.preemptive:
        raise ArcadeModelError(
            f"repair unit {unit.name!r}: the reactive-modules translation supports the "
            "preemptive queueing discipline only"
        )
    module = Module(f"repair_unit_{unit.name}")
    size = len(unit.components)
    components_by_name = model.components_by_name()
    for name in unit.components:
        module.add_variable(
            VariableDeclaration.integer(f"{unit.name}_q_{name}", 0, size, 0)
        )

    for name in unit.components:
        component = components_by_name[name]
        own_queue = _queue_var(unit, name)
        others = [other for other in unit.components if other != name]

        # Insertion position: one past the number of queued components whose
        # policy key is not larger than ours (FCFS tie-breaking keeps earlier
        # arrivals of the same key in front).
        not_after = [
            _indicator(
                (_queue_var(unit, other) > Const(0))
                & Const(unit.policy_key(components_by_name[other]) <= unit.policy_key(component))
            )
            for other in others
        ]
        insert_position = _sum(not_after) + Const(1)

        fail_updates: dict[str, Expression] = {f"{unit.name}_q_{name}": insert_position}
        for other in others:
            other_queue = _queue_var(unit, other)
            fail_updates[f"{unit.name}_q_{other}"] = Ite(
                (other_queue > Const(0)) & (other_queue >= insert_position),
                other_queue + Const(1),
                other_queue,
            )
        module.add_command(
            Command.simple(f"fail_{name}", own_queue.eq(Const(0)), Const(1.0), fail_updates)
        )

        repair_updates: dict[str, Expression] = {f"{unit.name}_q_{name}": Const(0)}
        for other in others:
            other_queue = _queue_var(unit, other)
            repair_updates[f"{unit.name}_q_{other}"] = Ite(
                other_queue > own_queue, other_queue - Const(1), other_queue
            )
        module.add_command(
            Command.simple(
                f"repair_{name}",
                (own_queue >= Const(1)) & (own_queue <= Const(unit.effective_crews())),
                Const(component.repair_rate),
                repair_updates,
            )
        )
    return module


def _cost_rewards(model: ArcadeModel) -> RewardStructureDefinition:
    rewards = RewardStructureDefinition("cost")
    costs = model.cost_model
    for component in model.components:
        down_cost = costs.down_cost(component.name)
        up_cost = costs.up_cost(component.name)
        if down_cost:
            rewards.add_state_reward(~_up_var(component.name), down_cost)
        if up_cost:
            rewards.add_state_reward(_up_var(component.name), up_cost)
    for unit in model.repair_units:
        if unit.strategy is RepairStrategy.DEDICATED:
            # One crew per component: a crew is idle exactly while its
            # component is up.
            if costs.crew_idle_cost:
                for name in unit.components:
                    rewards.add_state_reward(_up_var(name), costs.crew_idle_cost)
            if costs.crew_busy_cost:
                for name in unit.components:
                    rewards.add_state_reward(~_up_var(name), costs.crew_busy_cost)
            continue
        queued = _sum([_indicator(_queue_var(unit, name) > Const(0)) for name in unit.components])
        for crew in range(1, unit.effective_crews() + 1):
            if costs.crew_idle_cost:
                rewards.add_state_reward(queued < Const(crew), costs.crew_idle_cost)
            if costs.crew_busy_cost:
                rewards.add_state_reward(queued >= Const(crew), costs.crew_busy_cost)
    return rewards


def arcade_to_modules(
    model: ArcadeModel,
    initial_failed: Iterable[str] | Disaster | None = None,
) -> ModulesFile:
    """Translate ``model`` into a :class:`repro.modules.ModulesFile`.

    Parameters
    ----------
    model:
        The Arcade model to translate.
    initial_failed:
        Optional set of components that have already failed in the initial
        state (or a :class:`Disaster`): the translation then encodes the
        Given-Occurrence-Of-Disaster model, with the repair queues
        pre-populated in component-priority order exactly as the direct
        state-space generator does.
    """
    system = ModulesFile()
    for component in model.components:
        system.add_module(_component_module(model, component))
    for unit in model.repair_units:
        if unit.strategy is RepairStrategy.DEDICATED:
            system.add_module(_dedicated_unit_module(model, unit))
        else:
            system.add_module(_queued_unit_module(model, unit))

    if model.fault_tree is not None:
        down = _failure_condition(model.fault_tree.root)
        system.add_label("down", down)
        system.add_label("operational", ~down)

    system.add_rewards(_cost_rewards(model))

    if initial_failed is not None:
        if isinstance(initial_failed, Disaster):
            failed = set(initial_failed.failed_components)
        else:
            failed = set(initial_failed)
        unknown = failed - set(model.component_names)
        if unknown:
            raise ArcadeModelError(f"initial_failed references unknown components {sorted(unknown)}")
        overrides: dict[str, int | bool] = {}
        components_by_name = model.components_by_name()
        for name in failed:
            overrides[f"{name}_up"] = False
        for unit in model.repair_units:
            covered_failed = [name for name in failed if unit.covers(name)]
            if unit.strategy is RepairStrategy.DEDICATED:
                continue
            queue = unit.initial_queue(covered_failed, components_by_name)
            for position, name in enumerate(queue, start=1):
                overrides[f"{unit.name}_q_{name}"] = position
        system = system.with_initial_state(overrides)

    return system
