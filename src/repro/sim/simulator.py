"""Event-driven simulation of Arcade models.

Because every delay in an Arcade model is exponential, simulation reduces to
repeatedly sampling the race between all currently-enabled transitions:

* every *up* component may fail (at its effective, possibly dormant, rate),
* every component *in service* at its repair unit may finish repair.

The state representation and the scheduling decisions (queue insertion,
in-service selection, disaster queues) are the exact same code used by the
analytic state-space generator (:mod:`repro.arcade.statespace`), so the
simulator exercises the model logic, not a re-implementation of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from collections.abc import Iterable

import numpy as np

from repro.arcade.model import ArcadeModel, Disaster
from repro.arcade.statespace import ArcadeState


@dataclass
class SimulationRun:
    """A single simulated trajectory.

    Attributes
    ----------
    times:
        Entry times of the visited states; ``times[0]`` is 0.
    states:
        The visited states (same encoding as the analytic state space), one
        per entry time; the last state persists until ``horizon``.
    horizon:
        The simulated time horizon.
    """

    times: list[float]
    states: list[ArcadeState]
    horizon: float

    def state_at(self, time: float) -> ArcadeState:
        """The state occupied at ``time`` (0 <= time <= horizon)."""
        if time < 0 or time > self.horizon:
            raise ValueError(f"time {time} outside the simulated horizon [0, {self.horizon}]")
        index = int(np.searchsorted(np.asarray(self.times), time, side="right")) - 1
        return self.states[max(index, 0)]

    def holding_intervals(self) -> Iterable[tuple[float, float, ArcadeState]]:
        """Yield ``(start, end, state)`` for every holding period of the run."""
        for index, state in enumerate(self.states):
            start = self.times[index]
            end = self.times[index + 1] if index + 1 < len(self.times) else self.horizon
            if end > start:
                yield start, min(end, self.horizon), state


class ArcadeSimulator:
    """Monte-Carlo simulator for an :class:`~repro.arcade.model.ArcadeModel`."""

    def __init__(
        self,
        model: ArcadeModel,
        with_repairs: bool = True,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self._model = model
        self._with_repairs = with_repairs
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        self._components_by_name = model.components_by_name()
        self._covered = {
            name for unit in model.repair_units for name in unit.components
        }

    @property
    def model(self) -> ArcadeModel:
        return self._model

    # ------------------------------------------------------------------
    def initial_state(self, disaster: Disaster | str | None = None) -> ArcadeState:
        """The all-up state, or the state induced by a disaster."""
        if disaster is None:
            return (tuple(() for _ in self._model.repair_units), ())
        if isinstance(disaster, str):
            disaster = self._model.disaster(disaster)
        failed = set(disaster.failed_components)
        queues = []
        for unit in self._model.repair_units:
            covered_failed = [name for name in failed if unit.covers(name)]
            queues.append(unit.initial_queue(covered_failed, self._components_by_name))
        uncovered = tuple(sorted(failed - self._covered))
        return (tuple(queues), uncovered)

    def _enabled_transitions(self, state: ArcadeState) -> list[tuple[float, ArcadeState]]:
        """All enabled transitions of ``state`` as ``(rate, successor)`` pairs."""
        model = self._model
        queues, uncovered = state
        failed: set[str] = set(uncovered)
        for queue in queues:
            failed |= set(queue)
        up = [name for name in model.component_names if name not in failed]

        transitions: list[tuple[float, ArcadeState]] = []
        for name in up:
            rate = model.effective_failure_rate(name, up)
            if rate <= 0.0:
                continue
            unit_index = None
            for position, unit in enumerate(model.repair_units):
                if unit.covers(name):
                    unit_index = position
                    break
            if unit_index is None:
                successor: ArcadeState = (queues, tuple(sorted([*uncovered, name])))
            else:
                unit = model.repair_units[unit_index]
                new_queue = unit.insert(
                    queues[unit_index], self._components_by_name[name], self._components_by_name
                )
                successor = (
                    tuple(
                        new_queue if position == unit_index else existing
                        for position, existing in enumerate(queues)
                    ),
                    uncovered,
                )
            transitions.append((rate, successor))

        if self._with_repairs:
            for unit_index, unit in enumerate(model.repair_units):
                for name in unit.in_service(queues[unit_index]):
                    rate = self._components_by_name[name].repair_rate
                    new_queue = unit.remove(queues[unit_index], name)
                    successor = (
                        tuple(
                            new_queue if position == unit_index else existing
                            for position, existing in enumerate(queues)
                        ),
                        uncovered,
                    )
                    transitions.append((rate, successor))
        return transitions

    # ------------------------------------------------------------------
    def simulate(
        self,
        horizon: float,
        disaster: Disaster | str | None = None,
    ) -> SimulationRun:
        """Simulate one trajectory of length ``horizon`` hours."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        state = self.initial_state(disaster)
        times = [0.0]
        states = [state]
        clock = 0.0
        while True:
            transitions = self._enabled_transitions(state)
            if not transitions:
                break
            total_rate = sum(rate for rate, _ in transitions)
            clock += float(self._rng.exponential(1.0 / total_rate))
            if clock >= horizon:
                break
            choice = float(self._rng.uniform(0.0, total_rate))
            cumulative = 0.0
            for rate, successor in transitions:
                cumulative += rate
                if choice <= cumulative:
                    state = successor
                    break
            times.append(clock)
            states.append(state)
        return SimulationRun(times=times, states=states, horizon=horizon)

    # ------------------------------------------------------------------
    # per-state observables (shared by the estimators)
    # ------------------------------------------------------------------
    def failed_components(self, state: ArcadeState) -> set[str]:
        queues, uncovered = state
        failed: set[str] = set(uncovered)
        for queue in queues:
            failed |= set(queue)
        return failed

    def is_operational(self, state: ArcadeState) -> bool:
        return not self._model.is_down(self.failed_components(state))

    def service_level(self, state: ArcadeState) -> Fraction:
        return self._model.service_level(self.failed_components(state))

    def cost_rate(self, state: ArcadeState) -> float:
        queues, _uncovered = state
        busy = {
            unit.name: unit.busy_crews(queues[position])
            for position, unit in enumerate(self._model.repair_units)
        }
        return self._model.state_cost_rate(self.failed_components(state), busy)
