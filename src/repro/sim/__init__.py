"""Discrete-event Monte-Carlo simulation of Arcade models.

The numerical engine of this library computes measures *exactly* (up to
truncation error) from the CTMC.  This package provides an independent
estimator for the same measures by simulating the Arcade model directly —
drawing exponential failure and repair times, replaying the repair-unit
scheduling logic, and recording the quantities of interest per run:

* :class:`~repro.sim.simulator.ArcadeSimulator` — the event-driven engine,
* :func:`~repro.sim.estimators.estimate_availability`,
  :func:`~repro.sim.estimators.estimate_unreliability`,
  :func:`~repro.sim.estimators.estimate_survivability`,
  :func:`~repro.sim.estimators.estimate_accumulated_cost` — Monte-Carlo
  estimators with confidence intervals.

The simulator shares the scheduling code (queue insertion, crews, spares)
with the analytic path, but *not* the CTMC machinery, so agreement between
simulation and numerical results is a meaningful cross-validation; the test
suite uses it exactly that way.
"""

from repro.sim.simulator import ArcadeSimulator, SimulationRun
from repro.sim.estimators import (
    ConfidenceInterval,
    estimate_accumulated_cost,
    estimate_availability,
    estimate_survivability,
    estimate_unreliability,
)

__all__ = [
    "ArcadeSimulator",
    "ConfidenceInterval",
    "SimulationRun",
    "estimate_accumulated_cost",
    "estimate_availability",
    "estimate_survivability",
    "estimate_unreliability",
]
