"""Monte-Carlo estimators with confidence intervals.

Each estimator runs the :class:`~repro.sim.simulator.ArcadeSimulator`
repeatedly and aggregates a per-run statistic into a mean with a normal-
approximation confidence interval.  They mirror the analytic measures of
:mod:`repro.measures` one-to-one, which is what makes them useful as an
independent cross-check in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.arcade.model import ArcadeModel, Disaster
from repro.sim.simulator import ArcadeSimulator

#: Two-sided z-values for the confidence levels the estimators support.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class ConfidenceInterval:
    """A Monte-Carlo estimate: mean, half-width and sample count."""

    mean: float
    half_width: float
    samples: int
    confidence: float = 0.95

    @property
    def lower(self) -> float:
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return f"{self.mean:.6g} ± {self.half_width:.2g} ({int(self.confidence * 100)}% CI, n={self.samples})"


def _interval(samples: np.ndarray, confidence: float) -> ConfidenceInterval:
    if confidence not in _Z_VALUES:
        raise ValueError(f"confidence must be one of {sorted(_Z_VALUES)}")
    count = len(samples)
    if count < 2:
        raise ValueError("need at least two samples for a confidence interval")
    mean = float(np.mean(samples))
    deviation = float(np.std(samples, ddof=1))
    half_width = _Z_VALUES[confidence] * deviation / math.sqrt(count)
    return ConfidenceInterval(mean=mean, half_width=half_width, samples=count, confidence=confidence)


def estimate_availability(
    model: ArcadeModel,
    horizon: float = 20_000.0,
    runs: int = 20,
    seed: int | None = 0,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Estimate long-run availability as the time-average over long runs."""
    simulator = ArcadeSimulator(model, with_repairs=True, seed=seed)
    samples = []
    for _ in range(runs):
        run = simulator.simulate(horizon)
        operational_time = 0.0
        for start, end, state in run.holding_intervals():
            if simulator.is_operational(state):
                operational_time += end - start
        samples.append(operational_time / horizon)
    return _interval(np.asarray(samples), confidence)


def estimate_unreliability(
    model: ArcadeModel,
    time: float,
    runs: int = 2000,
    seed: int | None = 0,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Estimate the probability of a system failure within ``time`` (no repairs)."""
    simulator = ArcadeSimulator(model, with_repairs=False, seed=seed)
    samples = []
    for _ in range(runs):
        run = simulator.simulate(time)
        failed_by_deadline = any(
            not simulator.is_operational(state) for state in run.states
        )
        samples.append(1.0 if failed_by_deadline else 0.0)
    return _interval(np.asarray(samples), confidence)


def estimate_survivability(
    model: ArcadeModel,
    disaster: Disaster | str,
    service_level: float,
    time: float,
    runs: int = 2000,
    seed: int | None = 0,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Estimate the probability of recovering to ``service_level`` within ``time``."""
    simulator = ArcadeSimulator(model, with_repairs=True, seed=seed)
    samples = []
    for _ in range(runs):
        run = simulator.simulate(time, disaster=disaster)
        recovered = any(
            float(simulator.service_level(state)) >= service_level for state in run.states
        )
        samples.append(1.0 if recovered else 0.0)
    return _interval(np.asarray(samples), confidence)


def estimate_accumulated_cost(
    model: ArcadeModel,
    time: float,
    disaster: Disaster | str | None = None,
    runs: int = 500,
    seed: int | None = 0,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Estimate the expected cost accumulated in ``[0, time]``."""
    simulator = ArcadeSimulator(model, with_repairs=True, seed=seed)
    samples = []
    for _ in range(runs):
        run = simulator.simulate(time, disaster=disaster)
        cost = 0.0
        for start, end, state in run.holding_intervals():
            cost += (end - start) * simulator.cost_rate(state)
        samples.append(cost)
    return _interval(np.asarray(samples), confidence)
