"""Parser for a PRISM-like CSL/CSRL concrete syntax.

Grammar (informal)::

    query        ::=  'P=?' '[' path ']'
                   |  'S=?' '[' state ']'
                   |  'R' ('{' '"' name '"' '}')? '=?' '[' objective ']'
                   |  state                      (a plain state formula)

    objective    ::=  'I=' number | 'C<=' number | 'S' | 'F' state

    path         ::=  'X' state
                   |  state 'U' state
                   |  state 'U<=' number state
                   |  state 'U' '[' number ',' number ']' state
                   |  'F' ('<=' number)? state
                   |  'G' ('<=' number)? state

    state        ::=  'true' | 'false' | '"' label '"'
                   |  '!' state | state '&' state | state '|' state
                   |  state '=>' state
                   |  'P' cmp number '[' path ']'
                   |  'S' cmp number '[' state ']'
                   |  '(' state ')'

Examples accepted (all appear in the paper, Section 3)::

    P=? [ true U<=100 "down" ]
    S=? [ "operational" ]
    R{"cost"}=? [ I=4.5 ]
    R{"cost"}=? [ C<=10 ]
"""

from __future__ import annotations

import re

from repro.csl import formulas as F


class CSLParseError(ValueError):
    """Raised when a CSL/CSRL string cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+([eE][-+]?\d+)?|\d+([eE][-+]?\d+)?)
  | (?P<quoted>"[^"]*")
  | (?P<op><=|>=|=\?|=>|[!&|()\[\],{}=<>])
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


def _tokenize(source: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise CSLParseError(
                f"unexpected character {source[position]!r} at position {position} in {source!r}"
            )
        if match.lastgroup != "ws":
            tokens.append(match.group())
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, source: str) -> None:
        self._source = source
        self._tokens = _tokenize(source)
        self._index = 0

    def _peek(self, offset: int = 0) -> str | None:
        position = self._index + offset
        if position < len(self._tokens):
            return self._tokens[position]
        return None

    def _advance(self) -> str:
        token = self._peek()
        if token is None:
            raise CSLParseError(f"unexpected end of input in {self._source!r}")
        self._index += 1
        return token

    def _accept(self, token: str) -> bool:
        if self._peek() == token:
            self._index += 1
            return True
        return False

    def _expect(self, token: str) -> None:
        if not self._accept(token):
            raise CSLParseError(
                f"expected {token!r} but found {self._peek()!r} in {self._source!r}"
            )

    def _number(self) -> float:
        token = self._advance()
        try:
            return float(token)
        except ValueError:
            raise CSLParseError(f"expected a number, found {token!r} in {self._source!r}") from None

    # ------------------------------------------------------------------
    def parse_query(self) -> F.Query | F.Formula:
        token = self._peek()
        if token == "P" and self._peek(1) == "=?":
            self._advance(), self._advance()
            self._expect("[")
            path = self._path()
            self._expect("]")
            self._end()
            return F.ProbabilityQuery(path)
        if token == "S" and self._peek(1) == "=?":
            self._advance(), self._advance()
            self._expect("[")
            state = self._state()
            self._expect("]")
            self._end()
            return F.SteadyStateQuery(state)
        if token == "R":
            self._advance()
            reward_name = None
            if self._accept("{"):
                quoted = self._advance()
                if not (quoted.startswith('"') and quoted.endswith('"')):
                    raise CSLParseError(f"expected a quoted reward name in {self._source!r}")
                reward_name = quoted[1:-1]
                self._expect("}")
            self._expect("=?")
            self._expect("[")
            objective = self._objective()
            self._expect("]")
            self._end()
            return F.RewardQuery(objective, reward_name)
        state = self._state()
        self._end()
        return state

    def _end(self) -> None:
        if self._peek() is not None:
            raise CSLParseError(
                f"unexpected trailing input {self._peek()!r} in {self._source!r}"
            )

    def _objective(self) -> F.RewardObjective:
        token = self._peek()
        if token == "I":
            self._advance()
            self._expect("=")
            return F.InstantaneousReward(self._number())
        if token == "C":
            self._advance()
            self._expect("<=")
            return F.CumulativeReward(self._number())
        if token == "S":
            self._advance()
            return F.SteadyStateReward()
        if token == "F":
            self._advance()
            return F.ReachabilityReward(self._state())
        raise CSLParseError(f"unknown reward objective starting at {token!r} in {self._source!r}")

    # ------------------------------------------------------------------
    def _path(self) -> F.PathFormula:
        if self._accept("X"):
            return F.Next(self._state())
        if self._peek() == "F":
            self._advance()
            upper = None
            if self._accept("<="):
                upper = self._number()
            return F.Eventually(self._state(), upper)
        if self._peek() == "G":
            self._advance()
            upper = None
            if self._accept("<="):
                upper = self._number()
            return F.Globally(self._state(), upper)
        left = self._state()
        if not self._accept("U"):
            raise CSLParseError(f"expected 'U' in path formula in {self._source!r}")
        if self._accept("<="):
            upper = self._number()
            right = self._state()
            return F.BoundedUntil(left, right, upper)
        if self._accept("["):
            lower = self._number()
            self._expect(",")
            upper = self._number()
            self._expect("]")
            right = self._state()
            return F.BoundedUntil(left, right, upper, lower)
        right = self._state()
        return F.Until(left, right)

    # ------------------------------------------------------------------
    def _state(self) -> F.Formula:
        return self._implication()

    def _implication(self) -> F.Formula:
        left = self._disjunction()
        if self._accept("=>"):
            return F.Implies(left, self._implication())
        return left

    def _disjunction(self) -> F.Formula:
        left = self._conjunction()
        while self._accept("|"):
            left = F.Or(left, self._conjunction())
        return left

    def _conjunction(self) -> F.Formula:
        left = self._negation()
        while self._accept("&"):
            left = F.And(left, self._negation())
        return left

    def _negation(self) -> F.Formula:
        if self._accept("!"):
            return F.Not(self._negation())
        return self._atom()

    def _atom(self) -> F.Formula:
        token = self._peek()
        if token is None:
            raise CSLParseError(f"unexpected end of input in {self._source!r}")
        if token == "(":
            self._advance()
            inner = self._state()
            self._expect(")")
            return inner
        if token == "true":
            self._advance()
            return F.TrueFormula()
        if token == "false":
            self._advance()
            return F.FalseFormula()
        if token.startswith('"'):
            self._advance()
            return F.Atomic(token[1:-1])
        if token in ("P", "S"):
            operator = self._advance()
            comparator = self._advance()
            if comparator not in ("<", "<=", ">", ">="):
                raise CSLParseError(
                    f"expected a comparator after {operator!r}, found {comparator!r}"
                )
            bound = self._number()
            self._expect("[")
            if operator == "P":
                path = self._path()
                self._expect("]")
                return F.ProbabilityBound(comparator, bound, path)
            state = self._state()
            self._expect("]")
            return F.SteadyStateBound(comparator, bound, state)
        raise CSLParseError(f"unexpected token {token!r} in {self._source!r}")


def parse_formula(source: str) -> F.Query | F.Formula:
    """Parse a CSL/CSRL query or state formula from text."""
    return _Parser(source).parse_query()
