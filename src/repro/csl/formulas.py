"""Abstract syntax of CSL / CSRL formulas.

The logic implemented here is the fragment used by the paper (and a little
more), matching PRISM's syntax:

State formulas
    ``true``, ``false``, atomic propositions (labels), boolean combinators,
    ``P~p [ path ]`` (probability bound), ``S~p [ state ]`` (steady-state
    bound).

Query (top-level) formulas
    ``P=? [ path ]``, ``S=? [ state ]``, ``R{"name"}=? [ I=t ]``,
    ``R{"name"}=? [ C<=t ]``, ``R{"name"}=? [ S ]``.

Path formulas
    ``X phi``, ``phi U psi``, ``phi U[<=t] psi`` (and the derived
    ``F``/``F<=t``/``G``/``G<=t``).

All nodes are immutable dataclasses whose ``str()`` prints PRISM-compatible
concrete syntax, so formulas can be written straight into a PRISM
properties file (see :func:`repro.modules.prism_export.export_prism_properties`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class Formula:
    """Base class for state formulas."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


class PathFormula:
    """Base class for path formulas."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# state formulas
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class TrueFormula(Formula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True)
class FalseFormula(Formula):
    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True, slots=True)
class Atomic(Formula):
    """An atomic proposition — the name of a CTMC label."""

    name: str

    def __str__(self) -> str:
        return f'"{self.name}"'


@dataclass(frozen=True, slots=True)
class Not(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True, slots=True)
class And(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True, slots=True)
class Or(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True, slots=True)
class Implies(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} => {self.right})"


_COMPARATORS = ("<", "<=", ">", ">=")


@dataclass(frozen=True, slots=True)
class ProbabilityBound(Formula):
    """``P~p [ path ]`` as a state formula (bounded probability operator)."""

    comparator: str
    bound: float
    path: PathFormula

    def __post_init__(self) -> None:
        if self.comparator not in _COMPARATORS:
            raise ValueError(f"invalid probability comparator {self.comparator!r}")

    def __str__(self) -> str:
        return f"P{self.comparator}{self.bound} [ {self.path} ]"


@dataclass(frozen=True, slots=True)
class SteadyStateBound(Formula):
    """``S~p [ phi ]`` as a state formula."""

    comparator: str
    bound: float
    state_formula: Formula

    def __post_init__(self) -> None:
        if self.comparator not in _COMPARATORS:
            raise ValueError(f"invalid steady-state comparator {self.comparator!r}")

    def __str__(self) -> str:
        return f"S{self.comparator}{self.bound} [ {self.state_formula} ]"


# ---------------------------------------------------------------------------
# path formulas
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Next(PathFormula):
    operand: Formula

    def __str__(self) -> str:
        return f"X {self.operand}"


@dataclass(frozen=True, slots=True)
class Until(PathFormula):
    """Unbounded until ``phi U psi``."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"{self.left} U {self.right}"


@dataclass(frozen=True, slots=True)
class BoundedUntil(PathFormula):
    """Time-bounded until ``phi U[lower, upper] psi``.

    The common case ``U<=t`` is ``lower == 0``.
    """

    left: Formula
    right: Formula
    upper: float
    lower: float = 0.0

    def __post_init__(self) -> None:
        if self.lower < 0 or self.upper < self.lower:
            raise ValueError(
                f"invalid time interval [{self.lower}, {self.upper}] in bounded until"
            )

    def __str__(self) -> str:
        if self.lower == 0.0:
            return f"{self.left} U<={self.upper} {self.right}"
        return f"{self.left} U[{self.lower},{self.upper}] {self.right}"


def Eventually(operand: Formula, upper: Optional[float] = None) -> PathFormula:
    """``F phi`` / ``F<=t phi`` as sugar for an until with ``true`` on the left."""
    if upper is None:
        return Until(TrueFormula(), operand)
    return BoundedUntil(TrueFormula(), operand, upper)


def Globally(operand: Formula, upper: Optional[float] = None) -> PathFormula:
    """``G phi`` / ``G<=t phi``; handled by the checker as ``1 - P(F ¬phi)``."""
    return _Globally(operand, upper)


@dataclass(frozen=True, slots=True)
class _Globally(PathFormula):
    operand: Formula
    upper: Optional[float] = None

    def __str__(self) -> str:
        if self.upper is None:
            return f"G {self.operand}"
        return f"G<={self.upper} {self.operand}"


# ---------------------------------------------------------------------------
# top-level queries
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ProbabilityQuery:
    """``P=? [ path ]``."""

    path: PathFormula

    def __str__(self) -> str:
        return f"P=? [ {self.path} ]"


@dataclass(frozen=True, slots=True)
class SteadyStateQuery:
    """``S=? [ phi ]``."""

    state_formula: Formula

    def __str__(self) -> str:
        return f"S=? [ {self.state_formula} ]"


@dataclass(frozen=True, slots=True)
class InstantaneousReward:
    """The reward objective ``I=t``."""

    time: float

    def __str__(self) -> str:
        return f"I={self.time}"


@dataclass(frozen=True, slots=True)
class CumulativeReward:
    """The reward objective ``C<=t``."""

    time: float

    def __str__(self) -> str:
        return f"C<={self.time}"


@dataclass(frozen=True, slots=True)
class SteadyStateReward:
    """The reward objective ``S`` (long-run reward rate)."""

    def __str__(self) -> str:
        return "S"


@dataclass(frozen=True, slots=True)
class ReachabilityReward:
    """The reward objective ``F phi`` (expected reward until reaching ``phi``)."""

    target: Formula

    def __str__(self) -> str:
        return f"F {self.target}"


RewardObjective = InstantaneousReward | CumulativeReward | SteadyStateReward | ReachabilityReward


@dataclass(frozen=True, slots=True)
class RewardQuery:
    """``R{"name"}=? [ objective ]``."""

    objective: RewardObjective
    reward_name: Optional[str] = None

    def __str__(self) -> str:
        name = f'{{"{self.reward_name}"}}' if self.reward_name else ""
        return f"R{name}=? [ {self.objective} ]"


Query = ProbabilityQuery | SteadyStateQuery | RewardQuery
