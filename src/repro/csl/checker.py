"""The CSL/CSRL model checker.

The checker maps every operator of the logic onto the numerical routines of
:mod:`repro.ctmc`:

=========================  ==================================================
operator                    routine
=========================  ==================================================
``P=? [ phi U<=t psi ]``    a one-request :class:`repro.analysis.AnalysisSession`
                            under the initial distribution;
                            :func:`repro.ctmc.transient.time_bounded_reachability_per_state`
                            for per-state vectors
``P=? [ phi U psi ]``       a one-request session (kind
                            ``UNBOUNDED_REACHABILITY``);
                            :func:`repro.ctmc.dtmc.unbounded_reachability`
                            for per-state vectors
``P=? [ X phi ]``           one-step probabilities of the embedded DTMC
``S=? [ phi ]``             a one-request session (kind ``STEADY_STATE``);
                            :func:`repro.ctmc.steady_state.steady_state_values_per_state`
                            for per-state vectors
``R=? [ I=t ]``             :func:`repro.ctmc.rewards.instantaneous_reward`
``R=? [ C<=t ]``            :func:`repro.ctmc.rewards.cumulative_reward`
``R=? [ S ]``               a one-request session (``STEADY_STATE`` with a
                            reward observable)
``R=? [ F phi ]``           a one-request session (kind
                            ``REACHABILITY_REWARD``)
=========================  ==================================================

Quantitative queries return a scalar evaluated under the model's initial
distribution (PRISM's convention for a single initial state), while
:meth:`ModelChecker.check_states` exposes the per-state value vector.

All long-run queries route through the cached linear-solver engine
(:mod:`repro.ctmc.linsolve`): one checker instance shares BSCC
decompositions, embedded matrices and LU factorizations across its queries,
and a checker constructed with an ``artifacts`` cache
(:class:`repro.service.ArtifactCache`) shares them process-wide.
"""

from __future__ import annotations

import numpy as np

import repro.csl.formulas as F
from repro.ctmc import CTMC, MarkovRewardModel
from repro.ctmc.dtmc import embedded_dtmc, unbounded_reachability
from repro.ctmc.linsolve import SolverEngine
from repro.ctmc.rewards import cumulative_reward, instantaneous_reward
from repro.ctmc.steady_state import steady_state_values_per_state
from repro.ctmc.transient import time_bounded_reachability_per_state
from repro.csl.parser import parse_formula


class CSLCheckError(ValueError):
    """Raised when a formula cannot be checked against the given model."""


class ModelChecker:
    """A CSL/CSRL model checker bound to a CTMC or Markov reward model."""

    def __init__(
        self,
        model: CTMC | MarkovRewardModel,
        epsilon: float = 1e-10,
        artifacts=None,
    ) -> None:
        if isinstance(model, MarkovRewardModel):
            self._chain = model.chain
            self._reward_model: MarkovRewardModel | None = model
        else:
            self._chain = model
            self._reward_model = None
        self._epsilon = epsilon
        # One artifact store per checker: long-run queries on this model —
        # both the one-request sessions behind check() and the per-state
        # vectors — share BSCC decompositions, embedded matrices and
        # factorizations.  A caller-supplied cache makes the sharing
        # process-wide; otherwise the checker owns a private one.
        if artifacts is None:
            from repro.service.cache import ArtifactCache

            artifacts = ArtifactCache()
        self._artifacts = artifacts
        self._engine = SolverEngine(artifacts=artifacts)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def check(self, formula: "F.Query | F.Formula | str") -> float | bool:
        """Evaluate a query under the model's initial distribution.

        Quantitative queries (``P=?``, ``S=?``, ``R=?``) return a float;
        state formulas return whether they hold with probability one under
        the initial distribution (i.e. in every initial state).
        """
        if isinstance(formula, str):
            formula = parse_formula(formula)
        initial = self._chain.initial_distribution
        if isinstance(formula, F.ProbabilityQuery):
            if isinstance(formula.path, F.BoundedUntil):
                # Evaluated under the initial distribution, the (interval)
                # bounded until is a forward measure: submit it as a
                # one-request analysis session instead of solving for every
                # start state backwards.
                return self._bounded_until_from_initial(formula.path)
            if isinstance(formula.path, F.Until):
                return self._session_scalar(
                    kind_name="UNBOUNDED_REACHABILITY",
                    target=self._state_mask(formula.path.right),
                    safe=self._state_mask(formula.path.left),
                )
            return float(initial @ self._path_probabilities(formula.path))
        if isinstance(formula, F.SteadyStateQuery):
            return self._session_scalar(
                kind_name="STEADY_STATE",
                target=self._state_mask(formula.state_formula),
            )
        if isinstance(formula, F.RewardQuery):
            return self._reward_query(formula)
        mask = self._state_mask(formula)
        return bool(np.all(mask[initial > 0]))

    def check_states(self, formula: "F.Query | F.Formula | str") -> np.ndarray:
        """Evaluate a query per state (vector of floats or booleans)."""
        if isinstance(formula, str):
            formula = parse_formula(formula)
        if isinstance(formula, F.ProbabilityQuery):
            return self._path_probabilities(formula.path)
        if isinstance(formula, F.SteadyStateQuery):
            # The steady-state value is the same for every state of an
            # irreducible chain; in general it depends on the start state
            # via BSCC reachability.  One BSCC decomposition, one stationary
            # solve per BSCC and one multi-column absorption solve cover
            # every point-mass start at once.
            mask = self._state_mask(formula.state_formula)
            return steady_state_values_per_state(
                self._chain, mask.astype(float), engine=self._engine
            )
        if isinstance(formula, F.RewardQuery):
            raise CSLCheckError("per-state reward queries are not supported; use check()")
        return self._state_mask(formula)

    # ------------------------------------------------------------------
    # state formulas
    # ------------------------------------------------------------------
    def _state_mask(self, formula: F.Formula) -> np.ndarray:
        if isinstance(formula, F.TrueFormula):
            return np.ones(self._chain.num_states, dtype=bool)
        if isinstance(formula, F.FalseFormula):
            return np.zeros(self._chain.num_states, dtype=bool)
        if isinstance(formula, F.Atomic):
            return self._chain.label_mask(formula.name)
        if isinstance(formula, F.Not):
            return ~self._state_mask(formula.operand)
        if isinstance(formula, F.And):
            return self._state_mask(formula.left) & self._state_mask(formula.right)
        if isinstance(formula, F.Or):
            return self._state_mask(formula.left) | self._state_mask(formula.right)
        if isinstance(formula, F.Implies):
            return ~self._state_mask(formula.left) | self._state_mask(formula.right)
        if isinstance(formula, F.ProbabilityBound):
            probabilities = self._path_probabilities(formula.path)
            return _compare(probabilities, formula.comparator, formula.bound)
        if isinstance(formula, F.SteadyStateBound):
            inner = F.SteadyStateQuery(formula.state_formula)
            values = self.check_states(inner)
            return _compare(values, formula.comparator, formula.bound)
        raise CSLCheckError(f"unsupported state formula {formula!r}")

    # ------------------------------------------------------------------
    # path formulas
    # ------------------------------------------------------------------
    def _path_probabilities(self, path: F.PathFormula) -> np.ndarray:
        if isinstance(path, F.Next):
            target = self._state_mask(path.operand)
            jump = embedded_dtmc(self._chain)
            return np.asarray(jump.transition_matrix @ target.astype(float)).ravel()
        if isinstance(path, F.BoundedUntil):
            return self._bounded_until(path)
        if isinstance(path, F.Until):
            left = self._state_mask(path.left)
            right = self._state_mask(path.right)
            return unbounded_reachability(self._chain, right, left, engine=self._engine)
        if isinstance(path, F._Globally):
            negated = F.Not(path.operand)
            if path.upper is None:
                inner: F.PathFormula = F.Until(F.TrueFormula(), negated)
            else:
                inner = F.BoundedUntil(F.TrueFormula(), negated, path.upper)
            return 1.0 - self._path_probabilities(inner)
        raise CSLCheckError(f"unsupported path formula {path!r}")

    def _bounded_until_from_initial(self, path: F.BoundedUntil) -> float:
        """``P=? [ left U[a,b] right ]`` under the initial distribution.

        Thin wrapper over a one-request :class:`repro.analysis.AnalysisSession`
        (kind ``REACHABILITY`` for ``a = 0``, ``INTERVAL_REACHABILITY``
        otherwise); the per-state vector of :meth:`check_states` keeps using
        the backward recursion.
        """
        from repro.analysis import AnalysisSession, MeasureKind

        left = self._state_mask(path.left)
        right = self._state_mask(path.right)
        session = AnalysisSession(epsilon=self._epsilon)
        if path.lower == 0.0:
            index = session.request(
                self._chain,
                [path.upper],
                kind=MeasureKind.REACHABILITY,
                target=right,
                safe=left,
            )
        else:
            index = session.request(
                self._chain,
                [path.upper],
                kind=MeasureKind.INTERVAL_REACHABILITY,
                target=right,
                safe=left,
                lower=path.lower,
            )
        return float(session.execute()[index].squeezed[0])

    def _bounded_until(self, path: F.BoundedUntil) -> np.ndarray:
        left = self._state_mask(path.left)
        right = self._state_mask(path.right)
        if path.lower == 0.0:
            return time_bounded_reachability_per_state(
                self._chain, right, path.upper, safe=left, epsilon=self._epsilon
            )
        # Interval until [a, b]: split at a.  In the first phase only "left"
        # states may be traversed and the target plays no role; in the second
        # phase the standard bounded until applies for the remaining b - a.
        second = time_bounded_reachability_per_state(
            self._chain, right, path.upper - path.lower, safe=left, epsilon=self._epsilon
        )
        # First phase: stay within "left" for time a, then continue with the
        # probabilities of the second phase.  Make non-left states absorbing
        # with value 0.
        blocked = ~left
        transformed = self._chain.make_absorbing(np.flatnonzero(blocked))
        probabilities, q = transformed.uniformized_matrix()
        from repro.ctmc.foxglynn import fox_glynn
        from repro.ctmc.uniformization import poisson_mixture_sweep

        start_values = np.where(blocked, 0.0, second)
        if transformed.max_exit_rate == 0.0:
            return start_values
        weights = fox_glynn(q * path.lower, self._epsilon)
        mixtures, _ = poisson_mixture_sweep(probabilities, start_values, [weights])
        return np.where(blocked, 0.0, np.clip(mixtures[0], 0.0, 1.0))

    # ------------------------------------------------------------------
    # reward queries
    # ------------------------------------------------------------------
    def _reward_query(self, query: F.RewardQuery) -> float:
        if self._reward_model is None:
            raise CSLCheckError(
                "reward query on a model without reward structures; "
                "construct the checker with a MarkovRewardModel"
            )
        name = query.reward_name
        objective = query.objective
        if isinstance(objective, F.InstantaneousReward):
            return instantaneous_reward(self._reward_model, objective.time, name, epsilon=self._epsilon)
        if isinstance(objective, F.CumulativeReward):
            return cumulative_reward(self._reward_model, objective.time, name, epsilon=self._epsilon)
        if isinstance(objective, F.SteadyStateReward):
            return self._session_scalar(
                kind_name="STEADY_STATE",
                rewards=self._reward_model.reward_structure(name).state_rewards,
            )
        if isinstance(objective, F.ReachabilityReward):
            return self._session_scalar(
                kind_name="REACHABILITY_REWARD",
                target=self._state_mask(objective.target),
                rewards=self._reward_model.reward_structure(name).state_rewards,
            )
        raise CSLCheckError(f"unsupported reward objective {objective!r}")

    # ------------------------------------------------------------------
    # long-run session glue
    # ------------------------------------------------------------------
    def _session_scalar(self, kind_name: str, **fields) -> float:
        """Evaluate one long-run measure under the initial distribution.

        A thin one-request :class:`repro.analysis.AnalysisSession` over the
        named long-run kind; the checker's artifact cache (when given) makes
        the underlying factorizations and BSCC decompositions shared
        process-wide.
        """
        from repro.analysis import AnalysisSession, MeasureKind

        session = AnalysisSession(artifacts=self._artifacts)
        index = session.request(
            self._chain, (), kind=MeasureKind[kind_name], **fields
        )
        return float(session.execute()[index].squeezed[0])


def _compare(values: np.ndarray, comparator: str, bound: float) -> np.ndarray:
    if comparator == "<":
        return values < bound
    if comparator == "<=":
        return values <= bound
    if comparator == ">":
        return values > bound
    if comparator == ">=":
        return values >= bound
    raise CSLCheckError(f"unknown comparator {comparator!r}")


def check(
    model: CTMC | MarkovRewardModel,
    formula: "F.Query | F.Formula | str",
    epsilon: float = 1e-10,
    artifacts=None,
) -> float | bool:
    """Convenience wrapper: build a :class:`ModelChecker` and evaluate ``formula``."""
    return ModelChecker(model, epsilon, artifacts).check(formula)
