"""CSL and CSRL: syntax, parser, and model checker.

The paper expresses all of its measures as CSL (continuous stochastic
logic) and CSRL (continuous stochastic reward logic) queries and relies on
PRISM's stochastic model checking engine to evaluate them.  This package
provides the equivalent functionality:

* :mod:`~repro.csl.formulas` — the abstract syntax of state formulas, path
  formulas and reward queries (``P``, ``S`` and ``R`` operators with
  optional probability/reward bounds),
* :mod:`~repro.csl.parser` — a parser for a PRISM-like concrete syntax,
  e.g. ``P=? [ true U<=100 "down" ]`` or ``R{"cost"}=? [ C<=10 ]``,
* :mod:`~repro.csl.checker` — the model checker, mapping each operator to
  the numerical routines of :mod:`repro.ctmc`.
"""

from repro.csl.formulas import (
    Atomic,
    BoundedUntil,
    CumulativeReward,
    Eventually,
    Globally,
    InstantaneousReward,
    Next,
    Not,
    And,
    Or,
    Implies,
    ProbabilityQuery,
    RewardQuery,
    SteadyStateQuery,
    SteadyStateReward,
    TrueFormula,
    FalseFormula,
    Until,
)
from repro.csl.parser import CSLParseError, parse_formula
from repro.csl.checker import ModelChecker, check

__all__ = [
    "And",
    "Atomic",
    "BoundedUntil",
    "CSLParseError",
    "CumulativeReward",
    "Eventually",
    "FalseFormula",
    "Globally",
    "Implies",
    "InstantaneousReward",
    "ModelChecker",
    "Next",
    "Not",
    "Or",
    "ProbabilityQuery",
    "RewardQuery",
    "SteadyStateQuery",
    "SteadyStateReward",
    "TrueFormula",
    "Until",
    "check",
    "parse_formula",
]
