"""Maximal progress and conversion of closed I/O-IMCs to CTMCs.

A composed and fully hidden I/O-IMC is *closed*: it has no input actions
left (or its remaining inputs are never triggered) and its interactive
transitions are all internal.  Under the maximal-progress assumption,
internal transitions take place immediately and therefore pre-empt the
Markovian delays of the same state.  If the internal behaviour is
deterministic (at most one internal move per vanishing state, possibly in a
chain), every vanishing state can be short-circuited to the stable state it
inevitably reaches, and what remains is a CTMC over the stable states.

Nondeterminism — several internal moves to genuinely different successors —
is reported as an error: exactly as the paper notes, the absence of
simultaneous failures is the prerequisite for translating the case study to
a CTMC, and the Arcade models produced by :mod:`repro.arcade.to_iomc`
satisfy it by construction.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Mapping

from repro.ctmc import CTMC
from repro.ctmc.ctmc import CTMCBuilder
from repro.iomc.iomc import IOIMC, IOIMCError


def apply_maximal_progress(model: IOIMC) -> IOIMC:
    """Remove Markovian transitions from states that have urgent (internal/output) moves."""
    urgent_actions = model.signature.outputs | model.signature.internals
    urgent_states = {
        transition.source
        for transition in model.interactive_transitions
        if transition.action in urgent_actions
    }
    reduced = IOIMC(
        name=f"maxprogress({model.name})",
        signature=model.signature,
        states=set(model.states),
        initial_state=model.initial_state,
        interactive_transitions=list(model.interactive_transitions),
        markovian_transitions=[
            transition
            for transition in model.markovian_transitions
            if transition.source not in urgent_states
        ],
        descriptions=dict(model.descriptions),
    )
    return reduced


def _stable_successor(
    state: Hashable,
    internal_successors: Mapping[Hashable, list[Hashable]],
    cache: dict[Hashable, Hashable],
) -> Hashable:
    """Follow internal moves from ``state`` until a stable state is reached."""
    if state in cache:
        return cache[state]
    seen: list[Hashable] = []
    current = state
    visited = set()
    while True:
        if current in cache:
            result = cache[current]
            break
        successors = internal_successors.get(current, [])
        if not successors:
            result = current
            break
        distinct = set(successors)
        if len(distinct) > 1:
            raise IOIMCError(
                f"nondeterministic internal behaviour in state {current!r}: "
                f"successors {sorted(map(repr, distinct))}"
            )
        if current in visited:
            raise IOIMCError(f"divergent internal loop through state {current!r}")
        visited.add(current)
        seen.append(current)
        current = successors[0]
    for visited_state in seen:
        cache[visited_state] = result
    cache[state] = result
    return result


def to_ctmc(model: IOIMC, label_fn=None) -> CTMC:
    """Convert a closed, deterministic I/O-IMC into a CTMC.

    Parameters
    ----------
    model:
        The I/O-IMC; its outputs and internals are treated as urgent, and
        any remaining input actions are assumed never to be triggered by the
        environment (they are ignored).
    label_fn:
        Optional callable ``description -> iterable of label names`` used to
        attach atomic propositions to the CTMC's states; it receives the
        stored description of each stable state.

    Returns
    -------
    repro.ctmc.CTMC
        The CTMC over the reachable stable states.
    """
    model.validate()
    reduced = apply_maximal_progress(model)

    urgent_actions = reduced.signature.outputs | reduced.signature.internals
    internal_successors: dict[Hashable, list[Hashable]] = {}
    for transition in reduced.interactive_transitions:
        if transition.action in urgent_actions:
            internal_successors.setdefault(transition.source, []).append(transition.target)

    markovian_by_source: dict[Hashable, list] = {}
    for transition in reduced.markovian_transitions:
        markovian_by_source.setdefault(transition.source, []).append(transition)

    cache: dict[Hashable, Hashable] = {}
    initial_stable = _stable_successor(reduced.initial_state, internal_successors, cache)

    builder = CTMCBuilder()
    index_of: dict[Hashable, int] = {}
    descriptions: list = []

    def register(stable_state: Hashable) -> int:
        if stable_state in index_of:
            return index_of[stable_state]
        index = builder.add_state(reduced.describe(stable_state))
        index_of[stable_state] = index
        descriptions.append(reduced.describe(stable_state))
        queue.append(stable_state)
        return index

    queue: deque[Hashable] = deque()
    register(initial_stable)

    while queue:
        stable_state = queue.popleft()
        source_index = index_of[stable_state]
        for transition in markovian_by_source.get(stable_state, []):
            target_stable = _stable_successor(transition.target, internal_successors, cache)
            target_index = register(target_stable)
            builder.add_transition(source_index, target_index, transition.rate)

    chain = builder.build({0: 1.0})
    if label_fn is not None:
        labels: dict[str, list[int]] = {}
        for index, description in enumerate(descriptions):
            for label in label_fn(description):
                labels.setdefault(label, []).append(index)
        for name, states in labels.items():
            chain.add_label(name, states)
    return chain
