"""Hiding of output actions.

Hiding turns output actions into internal actions.  In the Arcade tool
chain this is done after composition: once a ``failed_x``/``repaired_x``
signal has been wired from the component to its repair unit (and vice
versa), the action is no longer of interest to the environment and is
hidden, which enables the maximal-progress reduction and the conversion to
a CTMC (:mod:`repro.iomc.conversion`).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.iomc.iomc import IOIMC, IOIMCError, Signature


def hide(model: IOIMC, actions: Iterable[str] | None = None) -> IOIMC:
    """Return a copy of ``model`` with the given output actions made internal.

    Parameters
    ----------
    model:
        The I/O-IMC to transform.
    actions:
        The output actions to hide; ``None`` hides *all* outputs (the usual
        step before converting a closed composition to a CTMC).
    """
    if actions is None:
        to_hide = set(model.signature.outputs)
    else:
        to_hide = set(actions)
        unknown = to_hide - model.signature.outputs
        if unknown:
            raise IOIMCError(
                f"cannot hide {sorted(unknown)}: not output actions of {model.name!r}"
            )

    signature = Signature(
        inputs=model.signature.inputs,
        outputs=model.signature.outputs - to_hide,
        internals=model.signature.internals | to_hide,
    )
    hidden = IOIMC(
        name=f"hide({model.name})",
        signature=signature,
        states=set(model.states),
        initial_state=model.initial_state,
        interactive_transitions=list(model.interactive_transitions),
        markovian_transitions=list(model.markovian_transitions),
        descriptions=dict(model.descriptions),
    )
    return hidden
