"""Input/Output Interactive Markov Chains (I/O-IMCs).

The original Arcade semantics (Boudali et al., DSN 2008) maps every basic
component, repair unit and spare management unit to an I/O-IMC — an
automaton with

* **input actions** (suffix ``?``) that the component reacts to,
* **output actions** (suffix ``!``) that it generates,
* **internal actions** (suffix ``;``), and
* **Markovian transitions** carrying exponential rates —

and composes them in parallel, synchronising outputs with matching inputs.
After hiding the synchronised actions and applying the *maximal progress*
assumption (internal actions pre-empt Markovian delays), a closed,
deterministic I/O-IMC reduces to a CTMC.

The DSN 2010 paper replaces this back end with a direct translation to
PRISM reactive modules, but argues that "the two translations agree ...
for the constructs occurring in this case study".  This package exists to
back that claim up: :mod:`repro.arcade.to_iomc` translates Arcade models to
I/O-IMCs, and the test suite checks that the CTMC obtained through
composition + hiding + maximal progress is lumping-equivalent to the ones
produced by the other two translation paths.
"""

from repro.iomc.iomc import (
    IOIMC,
    IOIMCError,
    InteractiveTransition,
    MarkovianTransition,
    Signature,
)
from repro.iomc.composition import compose, compose_many
from repro.iomc.hiding import hide
from repro.iomc.conversion import apply_maximal_progress, to_ctmc

__all__ = [
    "IOIMC",
    "IOIMCError",
    "InteractiveTransition",
    "MarkovianTransition",
    "Signature",
    "apply_maximal_progress",
    "compose",
    "compose_many",
    "hide",
    "to_ctmc",
]
