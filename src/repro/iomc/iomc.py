"""The I/O-IMC data structure.

An Input/Output Interactive Markov Chain consists of a set of states, an
initial state, a *signature* partitioning its action alphabet into input,
output and internal actions, and two transition relations:

* interactive transitions ``s --a--> t`` labelled with an action, and
* Markovian transitions ``s --λ--> t`` labelled with an exponential rate.

Conventions used here (matching the Arcade papers):

* action names are plain strings; the customary decorations (``a?``, ``a!``,
  ``a;``) are added only when printing,
* I/O-IMCs are *input enabled* by convention: an input action that has no
  explicit transition in a state is interpreted as a self-loop (the
  composition operator applies this completion), and
* states may carry arbitrary hashable identifiers plus an optional
  human-readable description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable, Iterable, Mapping
from typing import Any


class IOIMCError(ValueError):
    """Raised when an I/O-IMC is constructed or used inconsistently."""


@dataclass(frozen=True)
class Signature:
    """The action alphabet of an I/O-IMC, split into inputs, outputs and internals."""

    inputs: frozenset[str] = frozenset()
    outputs: frozenset[str] = frozenset()
    internals: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", frozenset(self.inputs))
        object.__setattr__(self, "outputs", frozenset(self.outputs))
        object.__setattr__(self, "internals", frozenset(self.internals))
        overlaps = (self.inputs & self.outputs) | (self.inputs & self.internals) | (
            self.outputs & self.internals
        )
        if overlaps:
            raise IOIMCError(f"actions {sorted(overlaps)} appear in more than one class")

    @property
    def actions(self) -> frozenset[str]:
        return self.inputs | self.outputs | self.internals

    def classify(self, action: str) -> str:
        """Return ``"input"``, ``"output"`` or ``"internal"``."""
        if action in self.inputs:
            return "input"
        if action in self.outputs:
            return "output"
        if action in self.internals:
            return "internal"
        raise IOIMCError(f"action {action!r} is not part of the signature")

    def decorate(self, action: str) -> str:
        """Add the customary suffix (``?``, ``!`` or ``;``) to an action name."""
        suffix = {"input": "?", "output": "!", "internal": ";"}[self.classify(action)]
        return f"{action}{suffix}"


@dataclass(frozen=True)
class InteractiveTransition:
    """An action-labelled transition ``source --action--> target``."""

    source: Hashable
    action: str
    target: Hashable


@dataclass(frozen=True)
class MarkovianTransition:
    """A rate-labelled transition ``source --rate--> target``."""

    source: Hashable
    rate: float
    target: Hashable

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise IOIMCError(f"Markovian transition needs a positive rate, got {self.rate}")


@dataclass
class IOIMC:
    """An Input/Output Interactive Markov Chain."""

    name: str
    signature: Signature
    states: set = field(default_factory=set)
    initial_state: Hashable = None
    interactive_transitions: list[InteractiveTransition] = field(default_factory=list)
    markovian_transitions: list[MarkovianTransition] = field(default_factory=list)
    descriptions: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_state(self, state: Hashable, description: Any = None, initial: bool = False) -> "IOIMC":
        self.states.add(state)
        if description is not None:
            self.descriptions[state] = description
        if initial or self.initial_state is None:
            self.initial_state = state
        return self

    def add_interactive(self, source: Hashable, action: str, target: Hashable) -> "IOIMC":
        if action not in self.signature.actions:
            raise IOIMCError(
                f"{self.name}: action {action!r} is not declared in the signature"
            )
        self.states.add(source)
        self.states.add(target)
        self.interactive_transitions.append(InteractiveTransition(source, action, target))
        return self

    def add_markovian(self, source: Hashable, rate: float, target: Hashable) -> "IOIMC":
        self.states.add(source)
        self.states.add(target)
        self.markovian_transitions.append(MarkovianTransition(source, rate, target))
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.initial_state is None:
            raise IOIMCError(f"{self.name}: no initial state")
        if self.initial_state not in self.states:
            raise IOIMCError(f"{self.name}: initial state is not a state")

    def interactive_from(self, state: Hashable) -> list[InteractiveTransition]:
        return [t for t in self.interactive_transitions if t.source == state]

    def markovian_from(self, state: Hashable) -> list[MarkovianTransition]:
        return [t for t in self.markovian_transitions if t.source == state]

    def enabled_actions(self, state: Hashable) -> frozenset[str]:
        return frozenset(t.action for t in self.interactive_from(state))

    def successors(self, state: Hashable, action: str) -> list[Hashable]:
        """Targets of ``action`` from ``state``; inputs default to a self-loop."""
        targets = [t.target for t in self.interactive_from(state) if t.action == action]
        if not targets and action in self.signature.inputs:
            return [state]
        return targets

    def is_vanishing(self, state: Hashable) -> bool:
        """Whether the state has outgoing output or internal transitions.

        Under the maximal-progress assumption such transitions pre-empt the
        Markovian delays, so the state is left immediately.
        """
        urgent = self.signature.outputs | self.signature.internals
        return any(t.action in urgent for t in self.interactive_from(state))

    def transition_index(self) -> tuple[Mapping, Mapping]:
        """Pre-computed ``state -> transitions`` maps (used by composition)."""
        interactive: dict[Hashable, list[InteractiveTransition]] = {}
        markovian: dict[Hashable, list[MarkovianTransition]] = {}
        for transition in self.interactive_transitions:
            interactive.setdefault(transition.source, []).append(transition)
        for transition in self.markovian_transitions:
            markovian.setdefault(transition.source, []).append(transition)
        return interactive, markovian

    def describe(self, state: Hashable) -> Any:
        return self.descriptions.get(state, state)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"IOIMC({self.name!r}, states={len(self.states)}, "
            f"interactive={len(self.interactive_transitions)}, "
            f"markovian={len(self.markovian_transitions)})"
        )


def relabel(model: IOIMC, prefix: str) -> IOIMC:
    """Return a copy of ``model`` with states wrapped as ``(prefix, state)``.

    Useful when composing several instances of the same template automaton.
    """
    renamed = IOIMC(
        name=f"{prefix}{model.name}",
        signature=model.signature,
        states={(prefix, state) for state in model.states},
        initial_state=(prefix, model.initial_state),
        interactive_transitions=[
            InteractiveTransition((prefix, t.source), t.action, (prefix, t.target))
            for t in model.interactive_transitions
        ],
        markovian_transitions=[
            MarkovianTransition((prefix, t.source), t.rate, (prefix, t.target))
            for t in model.markovian_transitions
        ],
        descriptions={(prefix, state): desc for state, desc in model.descriptions.items()},
    )
    return renamed
