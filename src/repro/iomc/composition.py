"""Parallel composition of I/O-IMCs.

The composition synchronises an output action of one automaton with the
equal-named input actions of the others (multi-way synchronisation: the
output drives every component that listens to it).  The composed signature
follows the I/O-IMC rules:

* an action that is an output of one operand stays an *output* of the
  composition (outputs are never consumed, they can be hidden later),
* an action that is only an input of the operands stays an *input*,
* internal actions stay internal (their names are assumed disjoint).

Markovian transitions interleave.  Input enabledness is applied implicitly:
an operand without an explicit transition for a synchronised input simply
stays in its current state.

Only the *reachable* part of the product is built, which keeps composition
of many automata tractable.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.iomc.iomc import IOIMC, IOIMCError, Signature


def _composed_signature(parts: Sequence[IOIMC]) -> Signature:
    outputs: set[str] = set()
    inputs: set[str] = set()
    internals: set[str] = set()
    for part in parts:
        duplicate_outputs = outputs & part.signature.outputs
        if duplicate_outputs:
            raise IOIMCError(
                f"action(s) {sorted(duplicate_outputs)} are outputs of more than one operand"
            )
        outputs |= part.signature.outputs
        internals |= part.signature.internals
        inputs |= part.signature.inputs
    # Inputs that some operand outputs are driven internally by the
    # composition; they remain outputs of the whole (and are typically hidden
    # afterwards).
    inputs -= outputs
    overlap = internals & (inputs | outputs)
    if overlap:
        raise IOIMCError(f"internal action(s) {sorted(overlap)} clash with visible actions")
    return Signature(inputs=frozenset(inputs), outputs=frozenset(outputs), internals=frozenset(internals))


def compose_many(parts: Sequence[IOIMC], name: str | None = None) -> IOIMC:
    """Compose any number of I/O-IMCs in parallel (reachable product only)."""
    if not parts:
        raise IOIMCError("compose_many needs at least one operand")
    for part in parts:
        part.validate()
    signature = _composed_signature(parts)
    composed = IOIMC(
        name=name or "||".join(part.name for part in parts),
        signature=signature,
    )

    indexes = [part.transition_index() for part in parts]

    initial = tuple(part.initial_state for part in parts)
    composed.add_state(initial, description=tuple(part.describe(part.initial_state) for part in parts), initial=True)
    queue: deque[tuple] = deque([initial])
    seen = {initial}

    def register(state: tuple) -> None:
        if state not in seen:
            seen.add(state)
            composed.add_state(
                state,
                description=tuple(part.describe(local) for part, local in zip(parts, state)),
            )
            queue.append(state)

    while queue:
        state = queue.popleft()

        # Markovian transitions: interleave.
        for position, part in enumerate(parts):
            _interactive, markovian = indexes[position]
            for transition in markovian.get(state[position], []):
                successor = list(state)
                successor[position] = transition.target
                target = tuple(successor)
                register(target)
                composed.add_markovian(state, transition.rate, target)

        # Interactive transitions.
        for position, part in enumerate(parts):
            interactive, _markovian = indexes[position]
            for transition in interactive.get(state[position], []):
                action = transition.action
                kind = part.signature.classify(action)
                if kind == "internal":
                    successor = list(state)
                    successor[position] = transition.target
                    target = tuple(successor)
                    register(target)
                    composed.add_interactive(state, action, target)
                    continue
                if kind == "input":
                    # Inputs only move together with the driving output; an
                    # input that nobody outputs stays an input of the whole
                    # and can still be triggered by the environment.
                    if action in signature.outputs:
                        continue
                    successor = list(state)
                    successor[position] = transition.target
                    target = tuple(successor)
                    register(target)
                    composed.add_interactive(state, action, target)
                    continue
                # Output: synchronise with every listener's input transition.
                successor = list(state)
                successor[position] = transition.target
                for other_position, other in enumerate(parts):
                    if other_position == position:
                        continue
                    if action in other.signature.inputs:
                        targets = other.successors(state[other_position], action)
                        if len(targets) > 1:
                            raise IOIMCError(
                                f"{other.name}: nondeterministic input {action!r} in state "
                                f"{state[other_position]!r}"
                            )
                        successor[other_position] = targets[0]
                target = tuple(successor)
                register(target)
                composed.add_interactive(state, action, target)

    return composed


def compose(left: IOIMC, right: IOIMC, name: str | None = None) -> IOIMC:
    """Binary parallel composition (a convenience wrapper around :func:`compose_many`)."""
    return compose_many([left, right], name=name)
