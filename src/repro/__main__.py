"""Allow ``python -m repro ...`` to run the experiment command line."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
