"""Batched analysis sessions: plan measure requests, execute shared sweeps.

This package is the batch-service layer over the uniformization engine
(:mod:`repro.ctmc.uniformization`): callers declare
:class:`MeasureRequest` objects, an :class:`AnalysisSession` plans them
into groups that agree on (chain identity, uniformization rate, time grid,
epsilon), and each group is dispatched as one sweep that batches all the
group's initial distributions and observable vectors.  Every legacy measure
entry point (``repro.ctmc.transient``, ``repro.ctmc.rewards``,
``repro.measures``, the CSL checker) is a thin wrapper that submits a
one-request session, so the batched path is the *only* numerical path.
"""

from repro.analysis.executor import ExecutionUnit, execute_plan, execution_units
from repro.analysis.planner import (
    ExecutionGroup,
    ExecutionPlan,
    LumpedChain,
    build_plan,
    normalise_request,
)
from repro.analysis.requests import (
    LONGRUN_KINDS,
    MeasureKind,
    MeasureRequest,
    MeasureResult,
)
from repro.analysis.session import AnalysisSession, SessionStats

__all__ = [
    "LONGRUN_KINDS",
    "AnalysisSession",
    "ExecutionGroup",
    "ExecutionPlan",
    "ExecutionUnit",
    "LumpedChain",
    "MeasureKind",
    "MeasureRequest",
    "MeasureResult",
    "SessionStats",
    "build_plan",
    "execute_plan",
    "execution_units",
    "normalise_request",
]
