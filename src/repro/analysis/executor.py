"""Execution: dispatch each planned group as one uniformization sweep.

For a regular group the executor stacks

* the union of all members' initial distributions (deduplicated
  bit-for-bit) into the sweep's ``(num_initials, num_states)`` block, and
* the union of all members' observable vectors — target indicators for
  reachability, reward-rate vectors for the reward kinds — into the sweep's
  ``(num_states, num_rewards)`` reward matrix,

then calls :func:`repro.ctmc.uniformization.evaluate_grid_block` exactly
once, so the whole group shares a single vector-power sweep and one set of
Fox–Glynn windows.  Reachability rides on the reward axis: with the target
states absorbed, ``P[ safe U^{<=t} target ]`` is the instantaneous
"reward" of the target-indicator vector.

Interval-until groups (CSL ``U[a, b]``) are the one exception: they need a
backward sweep on the target-absorbed chain for the ``[a, b]`` phase and a
forward sweep on the safe-restricted chain for the ``[0, a]`` phase.  All
interval groups that agree on the (base chain, safe, target, lower,
epsilon) signature — i.e. differ only in their time grids — are bundled
into one :class:`ExecutionUnit`: the backward phase runs once over the
union of every grid's residual horizons (merged with a relative tolerance,
so 1-ULP grid-arithmetic noise does not spawn near-duplicate Fox–Glynn
windows) and the forward phase runs once with every grid's value vectors
stacked on the reward axis, so ``G`` grids cost two sweeps total instead
of two each.

Long-run groups (steady state, unbounded reachability, reachability
rewards) never sweep at all: each becomes one unit that routes through the
cached linear-solver engine (:mod:`repro.ctmc.linsolve`) — at most one LU
factorization per group, its members' observables stacked as right-hand-side
columns, and BSCC decompositions / stationary vectors / factorizations
fetched from the artifact cache when one is attached.

When the planner attached a quotient (:class:`~repro.analysis.planner.LumpedChain`),
the sweep runs on the quotient chain: initial distributions are projected
blockwise and the observable vectors are restricted to one value per block
(they are block-constant by construction of the lumping partition).  This
covers long-run groups too — their BSCC decomposition and restricted
solves run on the quotient, whose factorizations persist in the cache
under the quotient chain's own fingerprint.  Interval bundles use **two**
quotients: the planner's backward quotient of the target-absorbed chain
(values are lifted back to full states between the phases) and a
forward-phase quotient of the safe-restricted chain that the executor
builds here, seeded with the quantized phase-2 value vectors — the seeds
only exist once the backward sweep ran.  Both live in the cache under the
``quotient`` kind, so warm bundles skip both refinements.

The plan is materialised as a list of :class:`ExecutionUnit` objects
(:func:`execution_units`), each independently runnable: the scenario
service executes units concurrently on a worker pool and fails one unit's
requests without touching the others, while :func:`execute_plan` simply
runs them in order.  An optional artifact cache
(:class:`repro.service.ArtifactCache`) supplies transformed chains,
uniformized operators and Fox–Glynn windows across plans.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.ctmc.ctmc import CTMC
from repro.ctmc.dtmc import unbounded_reachability
from repro.ctmc.engines import EngineSelector
from repro.ctmc.foxglynn import fox_glynn
from repro.ctmc.linsolve import (
    LinearSolveStats,
    SolverEngine,
    expected_values_under,
    reachability_reward_values,
)
from repro.ctmc.steady_state import steady_state_distribution_block
from repro.ctmc.uniformization import (
    UniformizationStats,
    evaluate_grid_block,
    poisson_mixture_sweep,
)
from repro.analysis.planner import (
    ExecutionGroup,
    ExecutionPlan,
    LumpedChain,
    cached_quotient,
    observable_signature,
)
from repro.analysis.requests import MeasureKind, MeasureResult

#: Relative tolerance merging near-identical residual horizons of bundled
#: interval grids (``times - lower`` produces 1-ULP noise across grids).
#: The induced value error is bounded by ``q·t·rtol`` per sweep — orders of
#: magnitude below the Poisson truncation epsilon.
HORIZON_MERGE_RTOL = 1e-12

#: Decimals the forward-phase lumping seeds are rounded to.  States whose
#: phase-2 values agree to this quantum may share a block, bounding the
#: lumped-vs-unlumped deviation by the quantum (5e-13 < the 1e-12 gate)
#: while letting the refinement collapse states whose values differ only
#: by accumulated rounding noise.
_FORWARD_SEED_DECIMALS = 12


class _ColumnPool:
    """Deduplicate vectors bit-for-bit while preserving first-seen order."""

    def __init__(self) -> None:
        self._index: dict[bytes, int] = {}
        self._vectors: list[np.ndarray] = []

    def add(self, vector: np.ndarray) -> int:
        key = vector.tobytes()
        position = self._index.get(key)
        if position is None:
            position = len(self._vectors)
            self._index[key] = position
            self._vectors.append(vector)
        return position

    def stack(self) -> np.ndarray:
        return np.stack(self._vectors)

    def __len__(self) -> int:
        return len(self._vectors)


# ----------------------------------------------------------------------
# execution units
# ----------------------------------------------------------------------
@dataclass
class ExecutionUnit:
    """An independently runnable slice of an execution plan.

    Either a single regular group, or a bundle of interval-until groups
    sharing a (base chain, safe, target, lower, epsilon) signature.  Units
    touch disjoint ``results`` slots, so the scenario service may run them
    concurrently on worker threads.
    """

    groups: list[tuple[int, ExecutionGroup]]
    interval: bool = False
    longrun: bool = False

    @property
    def request_indices(self) -> list[int]:
        """Indices (into the plan's request list) this unit will resolve."""
        return [
            member.index for _, group in self.groups for member in group.members
        ]

    def run(
        self,
        results: list[MeasureResult | None],
        engine_stats: UniformizationStats | None = None,
        artifacts: Any | None = None,
        linear_stats: LinearSolveStats | None = None,
        solver: SolverEngine | None = None,
    ) -> None:
        """Execute this unit, writing each member's result into ``results``.

        ``solver`` optionally shares one :class:`SolverEngine` across units
        (so artifact-less plans still reuse e.g. the embedded matrix between
        long-run groups of one chain); callers running units concurrently —
        the scenario service — omit it and rely on the thread-safe artifact
        cache instead.
        """
        if self.longrun:
            group_index, group = self.groups[0]
            _execute_longrun_group(
                group, group_index, results, linear_stats, artifacts, solver
            )
        elif self.interval:
            _execute_interval_bundle(self.groups, results, engine_stats, artifacts)
        else:
            group_index, group = self.groups[0]
            _execute_group(group, group_index, results, engine_stats, artifacts)


def execution_units(plan: ExecutionPlan) -> list[ExecutionUnit]:
    """Split ``plan`` into independently runnable units.

    Regular groups become one unit each.  Interval groups that agree on the
    full (base chain, target, safe, lower, epsilon) signature are bundled so
    their backward and forward phases are shared (see module docstring).
    """
    units: list[ExecutionUnit] = []
    interval_bundles: dict[tuple, ExecutionUnit] = {}
    for group_index, group in enumerate(plan.groups):
        if group.longrun:
            units.append(ExecutionUnit(groups=[(group_index, group)], longrun=True))
            continue
        if not group.interval:
            units.append(ExecutionUnit(groups=[(group_index, group)]))
            continue
        if not plan.batched:
            # Comparison mode: the unbatched baseline must sweep every
            # request independently, so interval groups stay unbundled too.
            units.append(ExecutionUnit(groups=[(group_index, group)], interval=True))
            continue
        first = group.members[0]
        signature = (
            id(group.chain),
            first.target_mask.tobytes(),
            first.safe_mask.tobytes(),
            float(first.request.lower),
            float(group.epsilon),
        )
        bundle = interval_bundles.get(signature)
        if bundle is None:
            bundle = ExecutionUnit(groups=[], interval=True)
            interval_bundles[signature] = bundle
            units.append(bundle)
        bundle.groups.append((group_index, group))
    return units


def execute_plan(
    plan: ExecutionPlan,
    engine_stats: UniformizationStats | None = None,
    artifacts: Any | None = None,
    linear_stats: LinearSolveStats | None = None,
) -> list[MeasureResult]:
    """Run every group of ``plan`` and return results in request order."""
    results: list[MeasureResult | None] = [None] * plan.num_requests
    solver = SolverEngine(artifacts=artifacts, stats=linear_stats)
    for unit in execution_units(plan):
        unit.run(results, engine_stats, artifacts, linear_stats, solver)
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# cache plumbing
# ----------------------------------------------------------------------
def _transformed(base: CTMC, mask: np.ndarray, artifacts: Any | None) -> CTMC:
    """The absorbing transform of ``base``, via the artifact cache if given."""
    if artifacts is not None:
        return artifacts.transformed_chain(base, mask)
    return base.make_absorbing(mask)


def _lookups(artifacts: Any | None) -> dict[str, Any]:
    """``evaluate_grid_block`` keyword hooks backed by the artifact cache."""
    if artifacts is None:
        return {}
    return {
        "window_lookup": artifacts.fox_glynn_window,
        "operator_lookup": artifacts.uniformized_transpose,
    }


# ----------------------------------------------------------------------
# regular groups: one forward sweep
# ----------------------------------------------------------------------
def _execute_group(
    group: ExecutionGroup,
    group_index: int,
    results: list[MeasureResult | None],
    engine_stats: UniformizationStats | None,
    artifacts: Any | None = None,
) -> None:
    initial_pool = _ColumnPool()
    reward_pool = _ColumnPool()
    member_rows: list[list[int]] = []
    member_columns: list[int | None] = []
    need_distributions = need_instantaneous = need_cumulative = False

    for member in group.members:
        member_rows.append([initial_pool.add(row) for row in member.initials])
        kind = member.kind
        if kind is MeasureKind.TRANSIENT:
            need_distributions = True
            member_columns.append(None)
        elif kind is MeasureKind.REACHABILITY:
            need_instantaneous = True
            member_columns.append(reward_pool.add(member.target_mask.astype(float)))
        elif kind is MeasureKind.INSTANTANEOUS_REWARD:
            need_instantaneous = True
            member_columns.append(reward_pool.add(member.rewards))
        elif kind is MeasureKind.CUMULATIVE_REWARD:
            need_cumulative = True
            member_columns.append(reward_pool.add(member.rewards))
        else:  # pragma: no cover - the planner routes interval kinds elsewhere
            raise AssertionError(f"unexpected kind {kind} in a regular group")

    chain = group.chain
    initial_block = initial_pool.stack()
    reward_matrix = reward_pool.stack().T if len(reward_pool) else None
    lumped = group.lumped
    if lumped is not None:
        chain = lumped.quotient
        initial_block = lumped.project_distributions(initial_block)
        if reward_matrix is not None:
            reward_matrix = lumped.project_statewise(reward_matrix)

    block_result = evaluate_grid_block(
        chain,
        group.times,
        initial_block,
        rewards_matrix=reward_matrix,
        distributions=need_distributions,
        instantaneous=need_instantaneous,
        cumulative=need_cumulative,
        epsilon=group.epsilon,
        stats=engine_stats,
        engine=group.engine,
        dtype=group.dtype,
        selector=EngineSelector(artifacts),
        **_lookups(artifacts),
    )

    lumped_states = lumped.num_blocks if lumped is not None else None
    for member, rows, column in zip(group.members, member_rows, member_columns):
        kind = member.kind
        if kind is MeasureKind.TRANSIENT:
            values = block_result.distributions[rows]
        elif kind is MeasureKind.REACHABILITY:
            values = np.clip(block_result.instantaneous[rows][:, :, column], 0.0, 1.0)
        elif kind is MeasureKind.INSTANTANEOUS_REWARD:
            values = block_result.instantaneous[rows][:, :, column]
        else:  # CUMULATIVE_REWARD
            values = block_result.cumulative[rows][:, :, column]
        results[member.index] = MeasureResult(
            request=member.request,
            times=member.times.copy(),
            values=values,
            group_index=group_index,
            lumped_states=lumped_states,
            _squeeze=member.squeeze,
        )


# ----------------------------------------------------------------------
# long-run groups: one cached-factorization solve, all RHS columns stacked
# ----------------------------------------------------------------------
def _execute_longrun_group(
    group: ExecutionGroup,
    group_index: int,
    results: list[MeasureResult | None],
    linear_stats: LinearSolveStats | None,
    artifacts: Any | None = None,
    solver: SolverEngine | None = None,
) -> None:
    """Execute a steady-state / unbounded-reachability / reachability-reward group.

    The group's members agree on the restricted linear system (the planner
    grouped them by subset signature), so the whole group costs at most one
    factorization — fetched from the artifact cache when one is attached —
    with every member's observable batched as a right-hand-side column and
    every member's initial distributions reduced by plain dense algebra.

    When the planner attached a quotient, everything — the BSCC
    decomposition, the stationary vectors, the restricted solves and their
    factorizations — runs on the quotient chain (whose own fingerprint
    keys those artifacts in the cache): ordinary lumpability preserves
    steady-state observables, unbounded reachability values and
    reachability rewards, since the seeded partition keeps every member's
    target/safe indicator and reward vector block-constant.
    """
    # A forced (non-"auto") group mode cannot reuse the shared auto-mode
    # solver: its factorization backend — and therefore its cache tokens —
    # differ (see :class:`repro.ctmc.linsolve.SolverEngine`).
    if solver is not None and solver.mode == group.engine:
        engine = solver
    else:
        engine = SolverEngine(
            artifacts=artifacts, stats=linear_stats, mode=group.engine
        )
    chain = group.chain
    lumped = group.lumped
    if lumped is not None:
        chain = lumped.quotient

    def statewise(vector: np.ndarray) -> np.ndarray:
        return lumped.project_statewise(vector) if lumped is not None else vector

    def distributions_of(block: np.ndarray) -> np.ndarray:
        return lumped.project_distributions(block) if lumped is not None else block

    kind = group.members[0].kind

    if kind is MeasureKind.STEADY_STATE:
        initial_pool = _ColumnPool()
        member_rows = [
            [initial_pool.add(row) for row in member.initials]
            for member in group.members
        ]
        distributions = steady_state_distribution_block(
            chain, distributions_of(initial_pool.stack()), engine=engine
        )
        member_values = [
            distributions[rows]
            @ statewise(
                member.target_mask.astype(float)
                if member.target_mask is not None
                else member.rewards
            )
            for member, rows in zip(group.members, member_rows)
        ]
    elif kind is MeasureKind.UNBOUNDED_REACHABILITY:
        first = group.members[0]
        per_state = unbounded_reachability(
            chain,
            statewise(first.target_mask),
            statewise(first.safe_mask),
            engine=engine,
        )
        member_values = [
            np.clip(distributions_of(member.initials) @ per_state, 0.0, 1.0)
            for member in group.members
        ]
    else:  # REACHABILITY_REWARD
        reward_pool = _ColumnPool()
        member_columns = [reward_pool.add(member.rewards) for member in group.members]
        values_matrix = reachability_reward_values(
            chain,
            statewise(group.members[0].target_mask),
            statewise(reward_pool.stack().T),
            engine=engine,
        )
        member_values = [
            expected_values_under(
                distributions_of(member.initials), values_matrix[:, [column]]
            )[:, 0]
            for member, column in zip(group.members, member_columns)
        ]

    lumped_states = lumped.num_blocks if lumped is not None else None
    for member, values in zip(group.members, member_values):
        results[member.index] = MeasureResult(
            request=member.request,
            times=member.times.copy(),
            values=np.asarray(values, dtype=float).reshape(-1, 1),
            group_index=group_index,
            lumped_states=lumped_states,
            _squeeze=member.squeeze,
        )


# ----------------------------------------------------------------------
# interval-until bundles: one backward [a, t] phase shared by every grid,
# then one forward [0, a] phase with all grids' value vectors stacked
# ----------------------------------------------------------------------
def _merge_close_horizons(
    group_horizons: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Union of the bundled grids' residual horizons, merged tolerantly.

    ``times - lower`` computed per grid yields horizons that differ by an
    ULP between grids even when the grids were meant to coincide; exact
    ``np.unique`` would keep both and spawn near-duplicate Fox–Glynn
    windows.  Adjacent sorted values whose gap is within
    :data:`HORIZON_MERGE_RTOL` (relative to their magnitude) share one
    cluster, represented by the cluster's smallest member — exact zeros
    always form their own cluster, so the t = a grid points stay exact.

    Returns ``(representatives, cluster_of)`` where ``cluster_of`` maps
    each position of ``np.concatenate(group_horizons)`` to its cluster.
    """
    concatenated = np.concatenate(group_horizons)
    order = np.argsort(concatenated, kind="stable")
    sorted_values = concatenated[order]
    gaps = np.diff(sorted_values)
    scale = np.maximum(np.abs(sorted_values[1:]), np.abs(sorted_values[:-1]))
    starts_cluster = gaps > HORIZON_MERGE_RTOL * scale
    cluster_of_sorted = np.concatenate(
        ([0], np.cumsum(starts_cluster))
    ) if sorted_values.size else np.zeros(0, dtype=int)
    first_positions = (
        np.concatenate(([0], np.flatnonzero(starts_cluster) + 1))
        if sorted_values.size
        else np.zeros(0, dtype=int)
    )
    representatives = sorted_values[first_positions]
    cluster_of = np.empty(concatenated.shape[0], dtype=int)
    cluster_of[order] = cluster_of_sorted
    return representatives, cluster_of


def _forward_interval_quotient(
    restricted: CTMC,
    value_columns: np.ndarray,
    artifacts: Any | None,
) -> LumpedChain | None:
    """The forward-phase quotient of the safe-restricted chain.

    Seeded with the *joint* class of the quantized phase-2 value vectors:
    two states may share a block only when every stacked value column
    agrees on them to the rounding quantum (after which ordinary
    lumpability refinement runs as usual).  Combining the columns into one
    row-identity observable keeps the seeding cost at one ``np.unique``
    over rows instead of one label mask per (column, value) pair.

    The cache signature hashes the quantized columns themselves — the
    backward phase is deterministic, so a warm repeat of the same bundle
    reproduces the same bytes and hits.  A failed build degrades to the
    full restricted chain with a one-time warning (and leaves a tombstone
    behind when a cache is attached, like the planner-side quotients).
    """
    quantized = np.round(value_columns, _FORWARD_SEED_DECIMALS)
    _, combined = np.unique(quantized, axis=0, return_inverse=True)
    signature = "interval-forward|" + observable_signature([quantized])
    try:
        return cached_quotient(
            restricted,
            [np.asarray(combined, dtype=float)],
            artifacts,
            signature=signature,
        )
    except Exception as error:
        warnings.warn(
            f"interval forward-phase lumping failed for a "
            f"{restricted.num_states}-state chain "
            f"({type(error).__name__}: {error}); sweeping the full chain",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


def _execute_interval_bundle(
    entries: list[tuple[int, ExecutionGroup]],
    results: list[MeasureResult | None],
    engine_stats: UniformizationStats | None,
    artifacts: Any | None = None,
) -> None:
    first_group = entries[0][1]
    first = first_group.members[0]
    target_mask = first.target_mask
    safe_mask = first.safe_mask
    lower = float(first.request.lower)
    epsilon = first_group.epsilon
    base = first_group.chain
    selector = EngineSelector(artifacts)

    # Phase 2 (backward): per-state P[ safe U^{<= t-a} target ] on the chain
    # with decided states absorbed, for every residual horizon appearing in
    # *any* bundled grid — one sweep over the (tolerantly merged) union.
    # With lumping the sweep walks the planner's quotient of the absorbed
    # chain and the per-block values are lifted back to full states; the
    # quotient's own (smaller) uniformization rate keys its Fox–Glynn
    # windows, so the lumped and unlumped bundles never share windows.
    absorbing = target_mask | ~(safe_mask | target_mask)
    backward_lumped = first_group.lumped
    backward_chain = (
        backward_lumped.quotient
        if backward_lumped is not None
        else _transformed(base, absorbing, artifacts)
    )
    group_horizons = [
        np.maximum(group.times - lower, 0.0) for _, group in entries
    ]
    unique_horizons, cluster_of = _merge_close_horizons(group_horizons)
    per_state = np.empty((unique_horizons.shape[0], base.num_states))
    indicator = target_mask.astype(float)
    start = (
        backward_lumped.project_statewise(indicator)
        if backward_lumped is not None
        else indicator
    )
    positive = np.flatnonzero(unique_horizons > 0.0)
    make_window = fox_glynn if artifacts is None else artifacts.fox_glynn_window
    if positive.size and backward_chain.max_exit_rate > 0.0:
        probabilities, q2 = backward_chain.uniformized_matrix()
        windows = [
            make_window(q2 * float(unique_horizons[i]), epsilon) for i in positive
        ]
        # The backward value sweep routes through the engine layer like the
        # forward phases do (dense chains get the BLAS walk), always on the
        # float64 lane: the float32 renormalization trick assumes a
        # mass-conserving forward operator, which a value sweep is not.
        backward_engine = selector.engine_for(
            backward_chain,
            probabilities,
            q2,
            mode=first_group.engine,
            dtype="float64",
            backward=True,
        )
        mixtures, _ = poisson_mixture_sweep(
            probabilities,
            start,
            windows,
            stats=engine_stats,
            engine=backward_engine,
        )
        for window_index, horizon_index in enumerate(positive):
            values = np.clip(mixtures[window_index], 0.0, 1.0)
            per_state[horizon_index] = (
                backward_lumped.lift_statewise(values)
                if backward_lumped is not None
                else values
            )
        zero_horizons = np.flatnonzero(unique_horizons == 0.0)
    else:
        # Either every horizon is zero, or the (possibly lumped) chain has
        # no between-block transitions left — values stay at the indicator.
        zero_horizons = np.arange(unique_horizons.shape[0])
    per_state[zero_horizons] = indicator

    # Phase 1 (forward): evolve every initial distribution through the
    # safe-restricted chain for time a, then weigh it against the phase-2
    # value vectors — one instantaneous-reward sweep whose reward axis
    # stacks every bundled grid's columns.  The planner routes a = 0 to the
    # plain reachability path, so here a > 0 and zeroing the non-safe rows
    # is sound: a path sitting in a non-safe state strictly before time a
    # has already failed the until formula.
    initial_pool = _ColumnPool()
    member_rows = [
        [
            [initial_pool.add(row) for row in member.initials]
            for member in group.members
        ]
        for _, group in entries
    ]
    initial_block = initial_pool.stack()
    column_indices = cluster_of
    value_columns = per_state[column_indices].T  # (num_states, sum of grid sizes)
    blocked = ~safe_mask
    value_columns = np.where(blocked[:, None], 0.0, value_columns)

    restricted = _transformed(base, blocked, artifacts)
    forward_lumped = (
        _forward_interval_quotient(restricted, value_columns, artifacts)
        if first_group.lump
        else None
    )
    sweep_chain = restricted
    sweep_initials = initial_block
    sweep_columns = value_columns
    if forward_lumped is not None:
        sweep_chain = forward_lumped.quotient
        sweep_initials = forward_lumped.project_distributions(initial_block)
        sweep_columns = forward_lumped.project_statewise(value_columns)
    phase1 = evaluate_grid_block(
        sweep_chain,
        np.array([lower]),
        sweep_initials,
        rewards_matrix=sweep_columns,
        distributions=False,
        instantaneous=True,
        epsilon=epsilon,
        stats=engine_stats,
        engine=first_group.engine,
        dtype=first_group.dtype,
        selector=selector,
        **_lookups(artifacts),
    )
    per_initial = np.clip(phase1.instantaneous[:, 0, :], 0.0, 1.0)

    lumped_states = None
    if backward_lumped is not None:
        lumped_states = backward_lumped.num_blocks
    elif forward_lumped is not None:
        lumped_states = forward_lumped.num_blocks
    offset = 0
    for (group_index, group), rows_per_member in zip(entries, member_rows):
        width = group.times.shape[0]
        columns = np.arange(offset, offset + width)
        offset += width
        for member, rows in zip(group.members, rows_per_member):
            results[member.index] = MeasureResult(
                request=member.request,
                times=member.times.copy(),
                values=per_initial[np.ix_(rows, columns)],
                group_index=group_index,
                lumped_states=lumped_states,
                _squeeze=member.squeeze,
            )
