"""Execution: dispatch each planned group as one uniformization sweep.

For a regular group the executor stacks

* the union of all members' initial distributions (deduplicated
  bit-for-bit) into the sweep's ``(num_initials, num_states)`` block, and
* the union of all members' observable vectors — target indicators for
  reachability, reward-rate vectors for the reward kinds — into the sweep's
  ``(num_states, num_rewards)`` reward matrix,

then calls :func:`repro.ctmc.uniformization.evaluate_grid_block` exactly
once, so the whole group shares a single vector-power sweep and one set of
Fox–Glynn windows.  Reachability rides on the reward axis: with the target
states absorbed, ``P[ safe U^{<=t} target ]`` is the instantaneous
"reward" of the target-indicator vector.

Interval-until groups (CSL ``U[a, b]``) are the one exception: they need a
backward sweep on the target-absorbed chain for the ``[a, b]`` phase and a
forward sweep on the safe-restricted chain for the ``[0, a]`` phase — two
sweeps per group, with all member initials still batched through the
forward phase.

When the planner attached a quotient (:class:`~repro.analysis.planner.LumpedChain`),
the sweep runs on the quotient chain: initial distributions are projected
blockwise and the observable vectors are restricted to one value per block
(they are block-constant by construction of the lumping partition).
"""

from __future__ import annotations

import numpy as np

from repro.ctmc.foxglynn import fox_glynn
from repro.ctmc.uniformization import (
    UniformizationStats,
    evaluate_grid_block,
    poisson_mixture_sweep,
)
from repro.analysis.planner import ExecutionGroup, ExecutionPlan, PlannedRequest
from repro.analysis.requests import MeasureKind, MeasureResult


class _ColumnPool:
    """Deduplicate vectors bit-for-bit while preserving first-seen order."""

    def __init__(self) -> None:
        self._index: dict[bytes, int] = {}
        self._vectors: list[np.ndarray] = []

    def add(self, vector: np.ndarray) -> int:
        key = vector.tobytes()
        position = self._index.get(key)
        if position is None:
            position = len(self._vectors)
            self._index[key] = position
            self._vectors.append(vector)
        return position

    def stack(self) -> np.ndarray:
        return np.stack(self._vectors)

    def __len__(self) -> int:
        return len(self._vectors)


def execute_plan(
    plan: ExecutionPlan, engine_stats: UniformizationStats | None = None
) -> list[MeasureResult]:
    """Run every group of ``plan`` and return results in request order."""
    results: list[MeasureResult | None] = [None] * plan.num_requests
    for group_index, group in enumerate(plan.groups):
        if group.interval:
            _execute_interval_group(group, group_index, results, engine_stats)
        else:
            _execute_group(group, group_index, results, engine_stats)
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# regular groups: one forward sweep
# ----------------------------------------------------------------------
def _execute_group(
    group: ExecutionGroup,
    group_index: int,
    results: list[MeasureResult | None],
    engine_stats: UniformizationStats | None,
) -> None:
    initial_pool = _ColumnPool()
    reward_pool = _ColumnPool()
    member_rows: list[list[int]] = []
    member_columns: list[int | None] = []
    need_distributions = need_instantaneous = need_cumulative = False

    for member in group.members:
        member_rows.append([initial_pool.add(row) for row in member.initials])
        kind = member.kind
        if kind is MeasureKind.TRANSIENT:
            need_distributions = True
            member_columns.append(None)
        elif kind is MeasureKind.REACHABILITY:
            need_instantaneous = True
            member_columns.append(reward_pool.add(member.target_mask.astype(float)))
        elif kind is MeasureKind.INSTANTANEOUS_REWARD:
            need_instantaneous = True
            member_columns.append(reward_pool.add(member.rewards))
        elif kind is MeasureKind.CUMULATIVE_REWARD:
            need_cumulative = True
            member_columns.append(reward_pool.add(member.rewards))
        else:  # pragma: no cover - the planner routes interval kinds elsewhere
            raise AssertionError(f"unexpected kind {kind} in a regular group")

    chain = group.chain
    initial_block = initial_pool.stack()
    reward_matrix = reward_pool.stack().T if len(reward_pool) else None
    lumped = group.lumped
    if lumped is not None:
        chain = lumped.quotient
        initial_block = lumped.project_distributions(initial_block)
        if reward_matrix is not None:
            reward_matrix = lumped.project_statewise(reward_matrix)

    block_result = evaluate_grid_block(
        chain,
        group.times,
        initial_block,
        rewards_matrix=reward_matrix,
        distributions=need_distributions,
        instantaneous=need_instantaneous,
        cumulative=need_cumulative,
        epsilon=group.epsilon,
        stats=engine_stats,
    )

    lumped_states = lumped.num_blocks if lumped is not None else None
    for member, rows, column in zip(group.members, member_rows, member_columns):
        kind = member.kind
        if kind is MeasureKind.TRANSIENT:
            values = block_result.distributions[rows]
        elif kind is MeasureKind.REACHABILITY:
            values = np.clip(block_result.instantaneous[rows][:, :, column], 0.0, 1.0)
        elif kind is MeasureKind.INSTANTANEOUS_REWARD:
            values = block_result.instantaneous[rows][:, :, column]
        else:  # CUMULATIVE_REWARD
            values = block_result.cumulative[rows][:, :, column]
        results[member.index] = MeasureResult(
            request=member.request,
            times=member.times.copy(),
            values=values,
            group_index=group_index,
            lumped_states=lumped_states,
            _squeeze=member.squeeze,
        )


# ----------------------------------------------------------------------
# interval-until groups: backward [a, t] phase, then forward [0, a] phase
# ----------------------------------------------------------------------
def _execute_interval_group(
    group: ExecutionGroup,
    group_index: int,
    results: list[MeasureResult | None],
    engine_stats: UniformizationStats | None,
) -> None:
    first = group.members[0]
    target_mask = first.target_mask
    safe_mask = first.safe_mask
    lower = float(first.request.lower)
    base = group.chain
    times = group.times

    # Phase 2 (backward): per-state P[ safe U^{<= t-a} target ] on the chain
    # with decided states absorbed, for every residual horizon of the grid.
    absorbing = target_mask | ~(safe_mask | target_mask)
    transformed = base.make_absorbing(np.flatnonzero(absorbing))
    horizons = np.maximum(times - lower, 0.0)
    unique_horizons, inverse = np.unique(horizons, return_inverse=True)
    per_state = np.empty((unique_horizons.shape[0], base.num_states))
    indicator = target_mask.astype(float)
    positive = np.flatnonzero(unique_horizons > 0.0)
    if positive.size and transformed.max_exit_rate > 0.0:
        probabilities, q2 = transformed.uniformized_matrix()
        windows = [
            fox_glynn(q2 * float(unique_horizons[i]), group.epsilon) for i in positive
        ]
        mixtures, _ = poisson_mixture_sweep(
            probabilities, indicator, windows, stats=engine_stats
        )
        for window_index, horizon_index in enumerate(positive):
            per_state[horizon_index] = np.clip(mixtures[window_index], 0.0, 1.0)
        zero_horizons = np.flatnonzero(unique_horizons == 0.0)
    else:
        zero_horizons = np.arange(unique_horizons.shape[0])
    per_state[zero_horizons] = indicator

    # Phase 1 (forward): evolve every initial distribution through the
    # safe-restricted chain for time a, then weigh it against the phase-2
    # value vectors — one instantaneous-reward sweep with T reward columns.
    # The planner routes a = 0 to the plain reachability path, so here a > 0
    # and zeroing the non-safe rows is sound: a path sitting in a non-safe
    # state strictly before time a has already failed the until formula.
    initial_pool = _ColumnPool()
    member_rows = [
        [initial_pool.add(row) for row in member.initials] for member in group.members
    ]
    initial_block = initial_pool.stack()
    value_columns = per_state[inverse].T  # (num_states, len(times))
    blocked = ~safe_mask
    value_columns = np.where(blocked[:, None], 0.0, value_columns)

    restricted = base.make_absorbing(np.flatnonzero(blocked))
    phase1 = evaluate_grid_block(
        restricted,
        np.array([lower]),
        initial_block,
        rewards_matrix=value_columns,
        distributions=False,
        instantaneous=True,
        epsilon=group.epsilon,
        stats=engine_stats,
    )
    per_initial = np.clip(phase1.instantaneous[:, 0, :], 0.0, 1.0)

    for member, rows in zip(group.members, member_rows):
        results[member.index] = MeasureResult(
            request=member.request,
            times=member.times.copy(),
            values=per_initial[rows],
            group_index=group_index,
            lumped_states=None,
            _squeeze=member.squeeze,
        )
