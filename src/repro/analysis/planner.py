"""Planning: group compatible measure requests into shared sweeps.

Two requests can ride the same uniformization sweep exactly when they walk
the same vector-power sequence, i.e. when they agree on

* the operating chain — the request's chain after the measure-specific
  transformation (reachability absorbs its decided states), compared by
  *identity* of the base chain plus the transformation signature,
* the uniformization rate (derived from the operating chain),
* the time grid (bit-for-bit), and
* the truncation error ``epsilon``.

Requests that differ in any of these are never merged; requests that agree
may still differ in initial distributions and reward vectors, which the
executor stacks into the sweep's batch axes.

Long-run requests (``STEADY_STATE``, ``UNBOUNDED_REACHABILITY``,
``REACHABILITY_REWARD``) never sweep: they are grouped by (chain identity,
state-subset signature) instead, so the executor can batch all their
right-hand-side columns against one cached LU factorization
(:mod:`repro.ctmc.linsolve`).

The planner can additionally run ordinary lumpability
(:mod:`repro.ctmc.lumping`) on each group's operating chain before the
sweep (``lump=True``).  The lumping partition is seeded with exactly the
vectors the group's requests observe — target indicator vectors and reward
vectors — so every observable is block-constant and the quotient preserves
all requested measures; the (typically much smaller) quotient chain then
shrinks every product of the sweep.  Lumping now covers every group kind
except full-distribution requests:

* regular sweep groups quotient their operating chain (as before);
* long-run groups quotient the base chain seeded with their target/safe
  indicators and reward vectors — ordinary lumpability preserves
  steady-state observables, unbounded reachability values and reachability
  rewards, so the BSCC decomposition and the restricted solves all run on
  the quotient (``S=?``-per-state and other full-distribution requests
  stay unlumped);
* interval-until groups quotient the *target-absorbed* chain for the
  backward value sweep here (seeded with the target indicator); the
  executor builds a second quotient of the safe-restricted chain for the
  forward phase, seeded with the quantized phase-2 value vectors (see
  :func:`repro.analysis.executor._execute_interval_bundle`).

Groups containing ``TRANSIENT`` requests are never lumped (their full
distributions live on the original state space).  A quotient build that
*fails* degrades the group to its full chain; with an artifact cache
attached the failure is recorded as a :class:`QuotientTombstone` under the
same key, so warm plans skip the doomed refinement silently instead of
re-failing (and re-warning, and re-counting) on every plan.
"""

from __future__ import annotations

import hashlib
import warnings
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np
from scipy import sparse

from repro.ctmc.ctmc import CTMC, CTMCError
from repro.ctmc.engines import (
    EngineSelector,
    default_dtype as process_default_dtype,
    default_engine_mode as process_default_engine_mode,
    normalise_dtype,
    normalise_engine_mode,
)
from repro.ctmc.lumping import lump_ctmc, lumping_partition
from repro.ctmc.uniformization import DEFAULT_EPSILON
from repro.analysis.requests import (
    LONGRUN_KINDS,
    REACHABILITY_KINDS,
    REWARD_KINDS,
    MeasureKind,
    MeasureRequest,
)


@dataclass
class PlannedRequest:
    """A validated request with its derived vectors, ready for execution."""

    index: int
    request: MeasureRequest
    kind: MeasureKind  # effective kind (U[0,t] is planned as plain reachability)
    times: np.ndarray
    initials: np.ndarray  # (num_initials, num_states) on the original chain
    squeeze: bool
    target_mask: np.ndarray | None = None
    safe_mask: np.ndarray | None = None
    rewards: np.ndarray | None = None


@dataclass
class LumpedChain:
    """A quotient chain plus the projections needed to use it."""

    quotient: CTMC
    partition: np.ndarray  # (num_states,) block index per state
    representatives: np.ndarray  # (num_blocks,) one member state per block
    aggregation: sparse.csr_matrix  # (num_blocks, num_states) 0/1 matrix

    @property
    def num_blocks(self) -> int:
        return self.quotient.num_states

    def project_distributions(self, block: np.ndarray) -> np.ndarray:
        """Sum each distribution's mass per quotient block: ``(B, n) -> (B, n')``."""
        return np.ascontiguousarray((self.aggregation @ block.T).T)

    def project_statewise(self, vector: np.ndarray) -> np.ndarray:
        """Restrict a block-constant state vector to one value per block."""
        return vector[self.representatives]

    def lift_statewise(self, vector: np.ndarray) -> np.ndarray:
        """Expand per-block values back to per-state (inverse of
        :meth:`project_statewise` on block-constant vectors)."""
        return vector[..., self.partition]


@dataclass
class ExecutionGroup:
    """Requests that will share one uniformization sweep.

    ``engine`` is the numeric backend the sweep (or the long-run solver)
    will use.  For regular sweep groups :func:`build_plan` resolves
    ``"auto"`` through the :class:`repro.ctmc.engines.EngineSelector`
    against the chain actually swept (the lumping quotient when one
    exists), so the executor always sees a concrete backend; long-run
    groups keep the requested mode and let the solver pick per restricted
    system, and interval-until groups keep it too because their two phases
    sweep two *different* transformed chains (the executor resolves per
    phase).  ``dtype`` is the sweep lane (always ``"float64"`` for
    interval and long-run groups).

    ``lump`` records whether lumping was requested for the plan at all —
    the executor needs it for the interval forward-phase quotient, which
    only exists after the backward phase produced its value vectors (so
    ``lumped`` alone, which may legitimately be ``None`` when nothing
    collapsed, cannot carry the request).
    """

    chain: CTMC  # the operating chain (after the absorbing transform)
    rate: float
    times: np.ndarray
    epsilon: float
    members: list[PlannedRequest] = field(default_factory=list)
    interval: bool = False
    longrun: bool = False
    lumped: LumpedChain | None = None
    lump: bool = False
    engine: str = "auto"
    dtype: str = "float64"


@dataclass
class ExecutionPlan:
    """The grouping the session will execute.

    ``batched`` records the planning mode: with ``False`` (the comparison
    mode) the executor must also refrain from bundling interval groups, so
    the per-request baseline really runs every sweep independently.
    ``lump_failures`` counts groups whose quotient build crashed and was
    degraded to the full chain (see :func:`build_plan`).
    """

    groups: list[ExecutionGroup]
    num_requests: int
    batched: bool = True
    lump_failures: int = 0

    @property
    def num_groups(self) -> int:
        return len(self.groups)


def normalise_request(request: MeasureRequest, index: int = 0) -> PlannedRequest:
    """Validate one request and derive its vectors (masks, rewards, initials).

    Raises :class:`~repro.ctmc.ctmc.CTMCError` on an invalid request.  The
    scenario service calls this per submission so a poisoned request fails
    its own future instead of aborting a whole coalesced batch.
    """
    times = np.asarray(request.times, dtype=float)
    if times.ndim != 1:
        raise CTMCError("time grid must be one-dimensional")
    if request.engine is not None:
        normalise_engine_mode(request.engine)
    requested_dtype = (
        normalise_dtype(request.dtype).name if request.dtype is not None else None
    )
    kind = request.kind
    if kind in LONGRUN_KINDS:
        if times.size:
            raise CTMCError(
                f"{kind.value} is a long-run measure and takes no time grid; "
                "pass times=()"
            )
        if request.lower:
            raise CTMCError(
                f"lower bound only applies to interval reachability, not {kind.value}"
            )
        return _normalise_longrun(request, kind, index)
    if not np.all(np.isfinite(times)):
        raise CTMCError("time points must be finite")
    if np.any(times < 0):
        raise CTMCError("time points must be non-negative")
    initials, squeeze = request.initial_block()
    if kind is MeasureKind.INTERVAL_REACHABILITY:
        if request.lower < 0:
            raise CTMCError("interval lower bound must be non-negative")
        if times.size and float(times.min()) < request.lower - 1e-12:
            raise CTMCError(
                "interval-until grid points must not lie below the lower bound"
            )
        if request.lower == 0.0:
            # U[0, t] is the plain bounded until: plan it as REACHABILITY so
            # it shares regular groups (and gets the correct CSL semantics —
            # target states outside `safe` still count as immediate wins).
            kind = MeasureKind.REACHABILITY
        elif requested_dtype == "float32":
            # The float32 lane's mass renormalization is only valid for the
            # forward (column-stochastic) sweep; the interval backward value
            # sweep is not mass-conserving, so the lane is rejected rather
            # than silently degraded.
            raise CTMCError(
                "interval reachability does not support the float32 lane"
            )
    elif request.lower:
        raise CTMCError(
            f"lower bound only applies to interval reachability, not {request.kind.value}"
        )
    planned = PlannedRequest(
        index=index,
        request=request,
        kind=kind,
        times=times,
        initials=initials,
        squeeze=squeeze,
    )
    if kind in REACHABILITY_KINDS:
        planned.target_mask = request.target_mask()
        planned.safe_mask = request.safe_mask()
    if kind in REWARD_KINDS:
        planned.rewards = request.reward_vector()
    return planned


def _normalise_longrun(
    request: MeasureRequest, kind: MeasureKind, index: int
) -> PlannedRequest:
    """Validate a long-run request; its single "grid point" is t = ∞."""
    initials, squeeze = request.initial_block()
    planned = PlannedRequest(
        index=index,
        request=request,
        kind=kind,
        times=np.array([np.inf]),
        initials=initials,
        squeeze=squeeze,
    )
    if kind is MeasureKind.STEADY_STATE:
        if (request.target is None) == (request.rewards is None):
            raise CTMCError(
                "a steady-state request observes exactly one of a target set "
                "(S=?) or a reward vector (R=?[S])"
            )
        if request.safe is not None:
            raise CTMCError("steady-state requests take no safe set")
        if request.target is not None:
            planned.target_mask = request.target_mask()
        else:
            planned.rewards = request.reward_vector()
    elif kind is MeasureKind.UNBOUNDED_REACHABILITY:
        if request.rewards is not None:
            raise CTMCError("unbounded-reachability requests take no rewards")
        planned.target_mask = request.target_mask()
        planned.safe_mask = request.safe_mask()
    else:  # REACHABILITY_REWARD
        if request.safe is not None:
            raise CTMCError("reachability-reward requests take no safe set")
        planned.target_mask = request.target_mask()
        planned.rewards = request.reward_vector()
    return planned


def build_plan(
    requests: Sequence[MeasureRequest],
    *,
    lump: bool = False,
    batched: bool = True,
    default_epsilon: float = DEFAULT_EPSILON,
    artifacts: Any | None = None,
    default_engine: str | None = None,
    default_dtype: Any | None = None,
) -> ExecutionPlan:
    """Group ``requests`` into execution groups (see module docstring).

    With ``batched=False`` every request is placed in its own group — the
    per-curve behaviour of the pre-session API, kept for comparison runs
    and the CLI's ``--no-batched`` flag.

    ``artifacts`` is an optional :class:`repro.service.ArtifactCache` (any
    object with its ``transformed_chain``/``quotient`` methods works): when
    given, absorbing transforms and lumping quotients are looked up in the
    process-wide cache by chain fingerprint instead of being rebuilt per
    plan, so repeated portfolio sweeps reuse them across sessions.

    ``default_engine``/``default_dtype`` fill in for requests that leave
    their own knobs at ``None``; ``None`` here falls through to the
    process-wide defaults (:func:`repro.ctmc.engines.default_engine_mode` /
    :func:`repro.ctmc.engines.default_dtype`, which the CLI flags set).
    Engine mode and dtype take part in the group keys — requests on
    different backends or lanes never share a sweep — and ``"auto"`` is
    resolved to a concrete backend per sweep group before the plan is
    returned, consulting the selector against the chain the executor will
    actually sweep (the lumping quotient when one exists).
    """
    plan_engine = (
        process_default_engine_mode()
        if default_engine is None
        else normalise_engine_mode(default_engine)
    )
    plan_dtype = (
        process_default_dtype()
        if default_dtype is None
        else normalise_dtype(default_dtype)
    ).name
    groups: dict[tuple, ExecutionGroup] = {}
    transformed_cache: dict[tuple[int, bytes], CTMC] = {}

    for index, request in enumerate(requests):
        planned = normalise_request(request, index)
        epsilon = request.epsilon if request.epsilon is not None else default_epsilon
        engine_mode = (
            normalise_engine_mode(request.engine)
            if request.engine is not None
            else plan_engine
        )
        dtype_name = (
            normalise_dtype(request.dtype).name
            if request.dtype is not None
            else plan_dtype
        )
        base = request.chain

        if planned.kind in LONGRUN_KINDS:
            # Long-run requests never sweep: they group by (chain, subset
            # signature) so the executor can batch their RHS columns into
            # one cached-factorization solve.  Steady-state requests all
            # share the chain's one long-run distribution regardless of
            # their observables; unbounded reachability and reachability
            # rewards group per target(/safe) signature, which determines
            # the restricted linear system.
            if planned.kind is MeasureKind.STEADY_STATE:
                longrun_token = b"steady-state"
            elif planned.kind is MeasureKind.UNBOUNDED_REACHABILITY:
                longrun_token = b"".join(
                    (
                        b"unbounded",
                        planned.target_mask.tobytes(),
                        planned.safe_mask.tobytes(),
                    )
                )
            else:  # REACHABILITY_REWARD
                longrun_token = b"reach-reward" + planned.target_mask.tobytes()
            key = (id(base), longrun_token, planned.kind.value, engine_mode)
            if not batched:
                key = key + (index,)
            group = groups.get(key)
            if group is None:
                group = ExecutionGroup(
                    chain=base,
                    rate=0.0,
                    times=planned.times,
                    epsilon=float(epsilon),
                    longrun=True,
                    engine=engine_mode,  # the solver picks per system size
                )
                groups[key] = group
            group.members.append(planned)
            continue

        interval = planned.kind is MeasureKind.INTERVAL_REACHABILITY
        if planned.kind is MeasureKind.REACHABILITY:
            absorbing = planned.target_mask | ~(planned.safe_mask | planned.target_mask)
            transform_token = absorbing.tobytes()
            cache_key = (id(base), transform_token)
            operating = transformed_cache.get(cache_key)
            if operating is None:
                if artifacts is not None:
                    operating = artifacts.transformed_chain(base, absorbing)
                else:
                    operating = base.make_absorbing(absorbing)
                transformed_cache[cache_key] = operating
        elif interval:
            # Interval-until groups sweep two transformed chains; members are
            # merged only when they agree on the full (safe, target, lower)
            # signature, so the executor can batch their initials.
            operating = base
            transform_token = b"".join(
                (
                    b"interval",
                    planned.target_mask.tobytes(),
                    planned.safe_mask.tobytes(),
                    np.float64(request.lower).tobytes(),
                )
            )
        else:
            operating = base
            transform_token = b""

        if interval:
            dtype_name = "float64"  # the backward value sweep needs float64

        key = (
            id(base),
            transform_token,
            float(operating.max_exit_rate),
            planned.times.tobytes(),
            float(epsilon),
            engine_mode,
            dtype_name,
        )
        if not batched:
            key = key + (index,)

        group = groups.get(key)
        if group is None:
            group = ExecutionGroup(
                chain=operating,
                rate=float(operating.max_exit_rate),
                times=planned.times,
                epsilon=float(epsilon),
                interval=interval,
                engine=engine_mode,
                dtype=dtype_name,
            )
            groups[key] = group
        group.members.append(planned)

    plan = ExecutionPlan(
        groups=list(groups.values()), num_requests=len(requests), batched=batched
    )
    if lump:
        for group in plan.groups:
            # Lumping is an optimisation: a failing refinement/quotient
            # build must never poison the plan (the scenario service
            # coalesces many clients into one), so the group degrades to
            # its full chain and the sweep stays exact — but visibly: the
            # first failure is warned about and counted into the session
            # stats.  With an artifact cache attached the failure leaves a
            # tombstone behind, so warm plans degrade *silently* (no
            # re-refinement, no repeat warning, no repeat count).
            group.lump = True
            try:
                group.lumped = _lump_group(group, artifacts)
            except Exception as error:
                group.lumped = None
                plan.lump_failures += 1
                warnings.warn(
                    f"lumping failed for a {group.chain.num_states}-state group "
                    f"({type(error).__name__}: {error}); sweeping the full chain",
                    RuntimeWarning,
                    stacklevel=2,
                )

    # The planner consults the selector: resolve "auto" per sweep group
    # against the chain the executor will actually sweep (the quotient once
    # lumping collapsed it), persisting the decision in the artifact cache.
    # Interval groups stay at "auto": their two phases sweep two different
    # transformed chains (each possibly quotiented), so the executor
    # resolves per phase against the chain each phase actually walks.
    selector = EngineSelector(artifacts)
    for group in plan.groups:
        if group.longrun or group.interval or group.engine != "auto":
            continue
        swept = group.lumped.quotient if group.lumped is not None else group.chain
        group.engine = selector.resolve(swept, "auto", group.dtype)
    return plan


# ----------------------------------------------------------------------
# lumping glue
# ----------------------------------------------------------------------
def observable_signature(observables: Sequence[np.ndarray]) -> str:
    """A canonical digest of a group's observable vectors.

    Together with the operating chain's fingerprint this keys a lumping
    quotient in the process-wide artifact cache.  The digest is taken over
    the *sorted set* of vector byte strings: the refined partition depends
    only on which distinct observables must stay block-constant, not on how
    many group members observe each or in which order they were submitted —
    so a re-coalesced batch (different client mix, different flush split)
    still hits the cached quotient.
    """
    digest = hashlib.sha256()
    for raw in sorted({np.asarray(vector, dtype=float).tobytes() for vector in observables}):
        digest.update(raw)
        digest.update(b"|")
    return digest.hexdigest()


@dataclass
class QuotientTombstone:
    """Negative cache record: building this quotient failed once already.

    Stored in the artifact cache under the same ``quotient`` key a
    successful build would use, so warm plans recognise the doomed
    refinement and degrade to the full chain silently — no repeated
    refinement attempt, warning or failure count.
    """

    message: str


class QuotientBuildError(CTMCError):
    """A quotient build failed for the first time (fresh tombstone).

    Raised exactly once per (chain, observable signature): subsequent
    cached lookups hit the :class:`QuotientTombstone` and return ``None``
    without raising.
    """


def cached_quotient(
    chain: CTMC,
    observables: Sequence[np.ndarray],
    artifacts: Any | None = None,
    signature: str | None = None,
) -> LumpedChain | None:
    """Build (or fetch) the quotient of ``chain`` seeded with ``observables``.

    With ``artifacts`` given, the quotient is fetched from (or stored into)
    the process-wide cache under ``(chain fingerprint, signature)``; an
    unprofitable quotient is cached as ``None`` so repeat runs skip the
    refinement entirely, and a *crashing* build is cached as a
    :class:`QuotientTombstone` — the first caller sees
    :class:`QuotientBuildError`, warm callers get a silent ``None``.
    """
    if artifacts is None:
        return _build_quotient(chain, observables)
    if signature is None:
        signature = observable_signature(observables)
    fresh_failure = False

    def factory() -> Any:
        nonlocal fresh_failure
        try:
            return _build_quotient(chain, observables)
        except Exception as error:
            fresh_failure = True
            return QuotientTombstone(f"{type(error).__name__}: {error}")

    cached = artifacts.quotient(chain, signature, factory)
    if isinstance(cached, QuotientTombstone):
        if fresh_failure:
            raise QuotientBuildError(cached.message)
        return None
    return cached


def _lump_group(group: ExecutionGroup, artifacts: Any | None = None) -> LumpedChain | None:
    """Build the quotient of a group's operating chain, if worthwhile.

    The initial partition is seeded with one state-class per distinct value
    of every observable vector of the group (target indicators and reward
    vectors; long-run groups additionally seed their safe-set indicators,
    which regular reachability groups bake into the absorbing transform
    instead), so the refined partition keeps all of them block-constant.
    Initial distributions need no seeding: ordinary lumpability holds for
    arbitrary initial distributions, which simply project blockwise.

    Interval-until groups quotient the *target-absorbed* transform of their
    base chain — the chain the backward value sweep walks — seeded with the
    target indicator; the executor lifts the per-block values back to full
    states before the forward phase (and builds the forward-phase quotient
    itself, since its seeds only exist after the backward sweep ran).
    """
    if group.interval:
        first = group.members[0]
        absorbing = first.target_mask | ~(first.safe_mask | first.target_mask)
        if artifacts is not None:
            transformed = artifacts.transformed_chain(group.chain, absorbing)
        else:
            transformed = group.chain.make_absorbing(absorbing)
        return cached_quotient(
            transformed, [first.target_mask.astype(float)], artifacts
        )
    observables: list[np.ndarray] = []
    for member in group.members:
        if member.kind is MeasureKind.TRANSIENT:
            return None  # full distributions live on the original states
        if member.target_mask is not None:
            observables.append(member.target_mask.astype(float))
        if group.longrun and member.safe_mask is not None:
            # For long-run reachability the chain is *not* pre-absorbed, so
            # the safe set must stay block-constant for prob0/prob1 and the
            # restricted system to commute with the quotient.
            observables.append(member.safe_mask.astype(float))
        if member.rewards is not None:
            observables.append(member.rewards)

    return cached_quotient(group.chain, observables, artifacts)


def _build_quotient(chain: CTMC, observables: Sequence[np.ndarray]) -> LumpedChain | None:
    """Refine and build the quotient of ``chain`` seeded with ``observables``."""
    labels: dict[str, np.ndarray] = {}
    for observable_index, vector in enumerate(observables):
        _, classes = np.unique(vector, return_inverse=True)
        for class_index in range(int(classes.max()) + 1):
            labels[f"obs{observable_index}c{class_index}"] = classes == class_index

    bare = CTMC(
        chain.rate_matrix,
        chain.initial_distribution,
        labels=labels,
    )
    partition = np.asarray(lumping_partition(bare), dtype=int)
    num_blocks = int(partition.max()) + 1 if partition.size else 0
    if num_blocks >= bare.num_states:
        return None  # nothing collapsed; the quotient would only add overhead

    quotient, _ = lump_ctmc(bare, partition.tolist(), respect_initial=False)
    num_states = bare.num_states
    representatives = np.full(num_blocks, -1, dtype=int)
    seen_first = np.unique(partition, return_index=True)
    representatives[seen_first[0]] = seen_first[1]
    aggregation = sparse.csr_matrix(
        (np.ones(num_states), (partition, np.arange(num_states))),
        shape=(num_blocks, num_states),
    )
    return LumpedChain(
        quotient=quotient,
        partition=partition,
        representatives=representatives,
        aggregation=aggregation,
    )
