"""Declarative measure requests for the batched analysis session.

A :class:`MeasureRequest` describes *what* to compute — a chain, one or more
initial distributions, a time grid, and a measure kind — without saying
anything about *how*.  The session planner (:mod:`repro.analysis.planner`)
groups compatible requests and the executor (:mod:`repro.analysis.executor`)
dispatches each group as a single uniformization sweep, so the request
objects are deliberately plain data.

The measure kinds mirror the paper's toolbox:

===========================  ==============================================
kind                          meaning
===========================  ==============================================
``TRANSIENT``                 state distributions ``π(t)`` on the grid
``REACHABILITY``              ``P[ safe U^{<=t} target ]`` per grid point
``INTERVAL_REACHABILITY``     ``P[ safe U^{[a, t]} target ]`` (CSL interval
                              until; ``a`` is :attr:`MeasureRequest.lower`)
``INSTANTANEOUS_REWARD``      expected reward rate, ``R=?[ I=t ]``
``CUMULATIVE_REWARD``         expected accumulated reward, ``R=?[ C<=t ]``
``STEADY_STATE``              long-run probability of the target set
                              (``S=?``) or long-run reward rate (``R=?[S]``
                              when ``rewards`` is given instead)
``UNBOUNDED_REACHABILITY``    ``P[ safe U target ]`` (no time bound)
``REACHABILITY_REWARD``       expected reward until the target, ``R=?[F phi]``
===========================  ==============================================

The last three are the *long-run* kinds: they take no time grid
(``times=()``) and are computed by the cached linear-solver engine
(:mod:`repro.ctmc.linsolve`) instead of a uniformization sweep; their
result values have a single column (the value "at t = ∞").
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.ctmc.ctmc import CTMC, CTMCError, as_state_mask


class MeasureKind(enum.Enum):
    """The measure families the analysis session can compute."""

    TRANSIENT = "transient"
    REACHABILITY = "reachability"
    INTERVAL_REACHABILITY = "interval_reachability"
    INSTANTANEOUS_REWARD = "instantaneous_reward"
    CUMULATIVE_REWARD = "cumulative_reward"
    STEADY_STATE = "steady_state"
    UNBOUNDED_REACHABILITY = "unbounded_reachability"
    REACHABILITY_REWARD = "reachability_reward"


#: Kinds that are defined by a target (and optional safe) state set.
REACHABILITY_KINDS = frozenset(
    {MeasureKind.REACHABILITY, MeasureKind.INTERVAL_REACHABILITY}
)

#: Kinds that are defined by a state reward-rate vector.
REWARD_KINDS = frozenset(
    {MeasureKind.INSTANTANEOUS_REWARD, MeasureKind.CUMULATIVE_REWARD}
)

#: Time-independent kinds computed by the cached linear-solver engine
#: rather than a uniformization sweep; they take no time grid.
LONGRUN_KINDS = frozenset(
    {
        MeasureKind.STEADY_STATE,
        MeasureKind.UNBOUNDED_REACHABILITY,
        MeasureKind.REACHABILITY_REWARD,
    }
)


@dataclass
class MeasureRequest:
    """One declarative measure over a chain, a grid and some initial states.

    Attributes
    ----------
    chain:
        The CTMC to analyse.  Requests on the *same* chain object (by
        identity) are candidates for sharing a sweep.
    times:
        The time grid (non-negative, any order, duplicates allowed).
    kind:
        Which measure family to compute.
    initial_distributions:
        ``None`` (use the chain's initial distribution), a single vector of
        shape ``(num_states,)``, or a block ``(num_initials, num_states)``.
        A block batches all rows through the shared sweep and the result
        keeps the leading ``num_initials`` axis.
    target, safe:
        State sets (label name, index list or boolean mask) for the
        reachability kinds; ``safe`` defaults to all states.
    lower:
        Lower time bound ``a`` of the CSL interval until (only meaningful
        for ``INTERVAL_REACHABILITY``; every grid point must be ``>= a``).
    rewards:
        State reward-rate vector for the reward kinds.
    epsilon:
        Truncation error of the Poisson mixture; ``None`` uses the session
        default.
    tag:
        Free-form caller identifier, carried through to the result
        untouched (e.g. a ``(strategy, disaster, interval)`` triple).
    engine:
        Numeric backend for this request's sweep/solves — one of
        :data:`repro.ctmc.engines.ENGINE_MODES` (``"auto"`` lets the
        planner's :class:`repro.ctmc.engines.EngineSelector` decide per
        chain); ``None`` uses the session default.
    dtype:
        Sweep lane, ``"float64"`` (default) or ``"float32"`` — the float32
        lane is ≤1e-6 from float64 (see :mod:`repro.ctmc.engines`) and
        applies to forward sweeps only: interval reachability rejects it
        and long-run solves always run float64.  ``None`` uses the session
        default.
    """

    chain: CTMC
    times: Sequence[float] | np.ndarray
    kind: MeasureKind = MeasureKind.TRANSIENT
    initial_distributions: np.ndarray | Sequence[float] | None = None
    target: Iterable[int] | np.ndarray | str | None = None
    safe: Iterable[int] | np.ndarray | str | None = None
    lower: float = 0.0
    rewards: np.ndarray | Sequence[float] | None = None
    epsilon: float | None = None
    tag: Any = None
    engine: str | None = None
    dtype: str | np.dtype | None = None

    # ------------------------------------------------------------------
    def initial_block(self) -> tuple[np.ndarray, bool]:
        """The initial distributions as a ``(num_initials, num_states)`` block.

        Returns the block and whether the request was given a single
        distribution (so results should drop the batch axis again).
        """
        if self.initial_distributions is None:
            return self.chain.initial_distribution[None, :], True
        array = np.asarray(self.initial_distributions, dtype=float)
        if array.ndim == 1:
            if array.shape != (self.chain.num_states,):
                raise CTMCError("initial distribution has the wrong length")
            return array[None, :], True
        if array.ndim != 2 or array.shape[1] != self.chain.num_states:
            raise CTMCError(
                "initial distributions must be a vector or a (num_initials, "
                "num_states) block"
            )
        if array.shape[0] == 0:
            raise CTMCError("initial distribution block is empty")
        return array, False

    def target_mask(self) -> np.ndarray:
        if self.target is None:
            raise CTMCError(f"{self.kind.value} request needs a target state set")
        return as_state_mask(self.chain, self.target)

    def safe_mask(self) -> np.ndarray:
        if self.safe is None:
            return np.ones(self.chain.num_states, dtype=bool)
        return as_state_mask(self.chain, self.safe)

    def reward_vector(self) -> np.ndarray:
        if self.rewards is None:
            raise CTMCError(f"{self.kind.value} request needs a reward vector")
        vector = np.asarray(self.rewards, dtype=float)
        if vector.shape != (self.chain.num_states,):
            raise CTMCError("reward vector has the wrong length")
        return vector


@dataclass
class MeasureResult:
    """The values computed for one :class:`MeasureRequest`.

    Attributes
    ----------
    request:
        The request this result answers.
    times:
        The request's grid (original order).
    values:
        ``(num_initials, len(times), num_states)`` for ``TRANSIENT``
        requests and ``(num_initials, len(times))`` for all scalar-valued
        kinds.  The leading axis is always present; :attr:`squeezed` drops
        it when the request supplied a single initial distribution.
    group_index:
        Index of the execution group that produced this result (results of
        equal ``group_index`` shared one uniformization sweep).
    lumped_states:
        Number of quotient states the group was solved on, or ``None`` when
        the group ran unlumped.
    """

    request: MeasureRequest
    times: np.ndarray
    values: np.ndarray
    group_index: int
    lumped_states: int | None = None
    _squeeze: bool = field(default=False, repr=False)

    @property
    def squeezed(self) -> np.ndarray:
        """``values`` without the batch axis if the request was unbatched."""
        return self.values[0] if self._squeeze else self.values

    def curve(self, initial_index: int = 0) -> np.ndarray:
        """The series for one initial distribution (shape ``(len(times),)``)."""
        return self.values[initial_index]
