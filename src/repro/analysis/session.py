"""The batched analysis session: plan once, sweep once per group.

:class:`AnalysisSession` is the front door of the batch architecture.
Callers declare :class:`~repro.analysis.requests.MeasureRequest` objects
(``add``/``request``), then ``execute()`` plans them into groups that share
a (chain, uniformization rate, grid, epsilon) signature and dispatches each
group as a single uniformization sweep — a whole figure family of the paper
(five repair strategies × disasters × service levels) costs one sweep per
distinct transformed chain instead of one per curve.

A quick example — both Figure-4 curves of one strategy in one plan::

    session = AnalysisSession()
    for disaster in ("disaster1", "disaster2"):
        session.request(
            chain,
            times,
            kind=MeasureKind.REACHABILITY,
            target=recovered_states,
            initial_distributions=space.initial_distribution_for_disaster(disaster),
            tag=disaster,
        )
    results = session.execute()      # one sweep: both disasters share it
    print(session.stats.summary())

The session records what it did in :class:`SessionStats` (groups, sweeps,
matvec/flop counters, lumping compression), which the CLI prints and the
benchmarks gate on.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.ctmc.linsolve import LinearSolveStats
from repro.ctmc.uniformization import DEFAULT_EPSILON, UniformizationStats
from repro.analysis.executor import execute_plan
from repro.analysis.planner import ExecutionPlan, build_plan
from repro.analysis.requests import MeasureRequest, MeasureResult


@dataclass
class SessionStats:
    """Work counters aggregated over one or more ``execute()`` calls.

    ``matvecs``/``applies``/``sparse_flops``/``sweeps`` follow the engine's
    conventions (see
    :class:`repro.ctmc.uniformization.UniformizationStats`); the lumping
    counters record how many groups ran on a quotient chain and how much
    state space that removed.  ``factorizations``/``linear_solves``/
    ``solved_columns`` mirror the long-run solver engine
    (:class:`repro.ctmc.linsolve.LinearSolveStats`): LU factorizations
    actually built (warm cache hits do not count), triangular solve calls
    and the right-hand-side columns they carried.  ``equivalent_nnz`` and
    the ``*_seconds`` timers are the backend-invariant work and wall-clock
    accounting introduced with the pluggable engine layer
    (:mod:`repro.ctmc.engines`); ``dense_factorizations`` counts how many
    of the LU builds took the dense LAPACK path.
    """

    requests: int = 0
    groups: int = 0
    sweeps: int = 0
    matvecs: int = 0
    applies: int = 0
    sparse_flops: int = 0
    equivalent_nnz: int = 0
    sweep_seconds: float = 0.0
    factorizations: int = 0
    dense_factorizations: int = 0
    linear_solves: int = 0
    solved_columns: int = 0
    factor_seconds: float = 0.0
    solve_seconds: float = 0.0
    lumped_groups: int = 0
    lumped_states_before: int = 0
    lumped_states_after: int = 0
    lump_failures: int = 0

    def absorb_engine(self, engine: UniformizationStats) -> None:
        self.sweeps += engine.sweeps
        self.matvecs += engine.matvecs
        self.applies += engine.applies
        self.sparse_flops += engine.sparse_flops
        self.equivalent_nnz += engine.equivalent_nnz
        self.sweep_seconds += engine.sweep_seconds

    def absorb_linear(self, linear: LinearSolveStats) -> None:
        self.factorizations += linear.factorizations
        self.dense_factorizations += linear.dense_factorizations
        self.linear_solves += linear.solves
        self.solved_columns += linear.columns
        self.factor_seconds += linear.factor_seconds
        self.solve_seconds += linear.solve_seconds

    def absorb(self, other: "SessionStats") -> None:
        """Accumulate another stats object field-by-field.

        Used by the sharded scenario service to merge per-shard session
        counters into one aggregate for ``/metrics``.
        """
        self.requests += other.requests
        self.groups += other.groups
        self.sweeps += other.sweeps
        self.matvecs += other.matvecs
        self.applies += other.applies
        self.sparse_flops += other.sparse_flops
        self.equivalent_nnz += other.equivalent_nnz
        self.sweep_seconds += other.sweep_seconds
        self.factorizations += other.factorizations
        self.dense_factorizations += other.dense_factorizations
        self.linear_solves += other.linear_solves
        self.solved_columns += other.solved_columns
        self.factor_seconds += other.factor_seconds
        self.solve_seconds += other.solve_seconds
        self.lumped_groups += other.lumped_groups
        self.lumped_states_before += other.lumped_states_before
        self.lumped_states_after += other.lumped_states_after
        self.lump_failures += other.lump_failures

    def absorb_plan(self, plan: ExecutionPlan) -> None:
        """Account for an executed plan's requests, groups and lumping.

        The single bookkeeping site shared by :meth:`AnalysisSession.execute`
        and the scenario service's flush, so the two never drift.
        """
        self.requests += plan.num_requests
        self.groups += plan.num_groups
        self.lump_failures += plan.lump_failures
        for group in plan.groups:
            if group.lumped is not None:
                self.lumped_groups += 1
                self.lumped_states_before += group.chain.num_states
                self.lumped_states_after += group.lumped.num_blocks

    def summary(self) -> str:
        """One line for CLI output and logs."""
        parts = [
            f"requests={self.requests}",
            f"groups={self.groups}",
            f"sweeps={self.sweeps}",
            f"matvecs={self.matvecs}",
            f"applies={self.applies}",
            f"sparse_flops={self.sparse_flops}",
        ]
        if self.equivalent_nnz:
            parts.append(f"equivalent_nnz={self.equivalent_nnz}")
        if self.sweep_seconds:
            parts.append(f"sweep_seconds={self.sweep_seconds:.3f}")
        if self.linear_solves or self.factorizations:
            parts.append(
                f"factorizations={self.factorizations}"
                f" linear_solves={self.linear_solves}"
                f" solved_columns={self.solved_columns}"
            )
        if self.dense_factorizations:
            parts.append(f"dense_factorizations={self.dense_factorizations}")
        if self.lumped_groups:
            parts.append(
                f"lumped {self.lumped_groups} groups "
                f"({self.lumped_states_before}->{self.lumped_states_after} states)"
            )
        if self.lump_failures:
            parts.append(f"lump_failures={self.lump_failures}")
        return "session: " + " ".join(parts)


class AnalysisSession:
    """Collect measure requests, plan shared sweeps, execute them.

    Parameters
    ----------
    lump:
        Run ordinary lumpability on each group's operating chain before
        sweeping or solving (the quotient preserves every requested
        measure; see :func:`repro.analysis.planner._lump_group`).  Covers
        regular bounded reachability, interval-until bundles (separate
        backward/forward quotients) and long-run groups; per-state
        distribution requests stay unlumped.  A failed quotient build
        degrades the group to its full chain: the *first* failure warns and
        increments ``SessionStats.lump_failures``, while warm repeats hit
        the cached tombstone and skip the refinement silently — the failure
        is counted once per cold build, not once per plan.
    batched:
        With ``False``, every request is planned into its own group — the
        per-curve behaviour of the legacy API, kept for comparison runs.
    epsilon:
        Default Poisson-truncation error for requests that do not set one.
    stats:
        Optional shared :class:`SessionStats`; several sessions (e.g. all
        experiments of one CLI invocation) may accumulate into one object.
    artifacts:
        Optional :class:`repro.service.ArtifactCache`: absorbing transforms,
        lumping quotients, uniformized operators and Fox–Glynn windows are
        then looked up process-wide (keyed by chain fingerprint) instead of
        being rebuilt per session.  The scenario service passes its cache
        here; standalone sessions default to no cross-session caching.
    engine:
        Default numeric backend for requests that do not set one — one of
        :data:`repro.ctmc.engines.ENGINE_MODES`.  ``None`` falls back to
        the process-wide default (``"auto"`` unless the CLI overrode it).
    dtype:
        Default sweep lane (``"float64"``/``"float32"``) for requests that
        do not set one; ``None`` falls back to the process-wide default.
    """

    def __init__(
        self,
        *,
        lump: bool = False,
        batched: bool = True,
        epsilon: float = DEFAULT_EPSILON,
        stats: SessionStats | None = None,
        artifacts=None,
        engine: str | None = None,
        dtype=None,
    ) -> None:
        self.lump = lump
        self.batched = batched
        self.default_epsilon = float(epsilon)
        self.stats = stats if stats is not None else SessionStats()
        self.artifacts = artifacts
        self.engine = engine
        self.dtype = dtype
        self._requests: list[MeasureRequest] = []

    # ------------------------------------------------------------------
    def add(self, request: MeasureRequest) -> int:
        """Register a request; returns its index into ``execute()``'s result list."""
        self._requests.append(request)
        return len(self._requests) - 1

    def extend(self, requests: Iterable[MeasureRequest]) -> list[int]:
        """Register several requests at once."""
        return [self.add(request) for request in requests]

    def request(self, chain, times, **fields) -> int:
        """Build a :class:`MeasureRequest` from keyword fields and register it."""
        return self.add(MeasureRequest(chain=chain, times=times, **fields))

    def __len__(self) -> int:
        return len(self._requests)

    @property
    def requests(self) -> tuple[MeasureRequest, ...]:
        return tuple(self._requests)

    # ------------------------------------------------------------------
    def plan(self) -> ExecutionPlan:
        """Group the registered requests without executing them."""
        return build_plan(
            self._requests,
            lump=self.lump,
            batched=self.batched,
            default_epsilon=self.default_epsilon,
            artifacts=self.artifacts,
            default_engine=self.engine,
            default_dtype=self.dtype,
        )

    def execute(self) -> list[MeasureResult]:
        """Plan and run all registered requests; results in registration order."""
        plan = self.plan()
        engine = UniformizationStats()
        linear = LinearSolveStats()
        results = execute_plan(
            plan, engine_stats=engine, artifacts=self.artifacts, linear_stats=linear
        )
        self.stats.absorb_plan(plan)
        self.stats.absorb_engine(engine)
        self.stats.absorb_linear(linear)
        return results
