"""repro — Arcade-style architectural dependability evaluation in Python.

This library is a full reproduction of

    B.R. Haverkort, M. Kuntz, A. Remke, S. Roolvink, M.I.A. Stoelinga:
    *Evaluating Repair Strategies for a Water-Treatment Facility using
    Arcade*, DSN 2010.

It contains everything the paper's tool chain needs, implemented from
scratch:

* :mod:`repro.arcade` — the Arcade modelling framework: basic components,
  repair units (dedicated / FCFS / fastest-repair-first /
  fastest-failure-first / priority, with any number of crews), spare
  management, fault trees, quantitative service trees, cost annotations and
  an XML input format,
* :mod:`repro.ctmc` — the numerical engine: labelled CTMCs, uniformization,
  steady-state solution, Markov reward models, lumping,
* :mod:`repro.modules` and :mod:`repro.csl` — stochastic reactive modules
  and a CSL/CSRL model checker (the role PRISM plays in the paper),
  including a PRISM source exporter,
* :mod:`repro.iomc` — I/O-IMC composition, the original Arcade semantics,
  used to cross-validate the translations,
* :mod:`repro.measures` — reliability, availability, quantitative
  survivability, service levels and repair-cost measures,
* :mod:`repro.sim` — an independent Monte-Carlo simulator,
* :mod:`repro.casestudy` — the water-treatment facility of the paper and
  one experiment function per table/figure of its evaluation.

Quickstart
----------
>>> from repro.casestudy import build_line2
>>> from repro.arcade import build_state_space
>>> from repro.measures import steady_state_availability
>>> space = build_state_space(build_line2("fastest_repair_first", crews=2))
>>> round(steady_state_availability(space), 4)
0.8186
"""

from repro.arcade import (
    ArcadeModel,
    BasicComponent,
    CostModel,
    FaultTree,
    RepairStrategy,
    RepairUnit,
    SpareManagementUnit,
    build_state_space,
)
from repro.ctmc import CTMC, MarkovRewardModel
from repro.csl import ModelChecker, parse_formula

__version__ = "1.0.0"

__all__ = [
    "ArcadeModel",
    "BasicComponent",
    "CTMC",
    "CostModel",
    "FaultTree",
    "MarkovRewardModel",
    "ModelChecker",
    "RepairStrategy",
    "RepairUnit",
    "SpareManagementUnit",
    "__version__",
    "build_state_space",
    "parse_formula",
]
