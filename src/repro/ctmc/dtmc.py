"""Discrete-time helpers: embedded and uniformized DTMCs, unbounded reachability.

The CTMC algorithms occasionally need discrete-time machinery:

* the *embedded* DTMC (jump chain) is used for unbounded reachability
  probabilities and BSCC absorption probabilities,
* the *uniformized* DTMC is the P matrix of uniformization.

A tiny :class:`DTMC` class keeps these self-contained and testable.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.ctmc.ctmc import CTMC, CTMCError


class DTMC:
    """An explicit-state discrete-time Markov chain."""

    def __init__(
        self,
        transition_matrix: sparse.spmatrix | np.ndarray,
        initial_distribution: np.ndarray | None = None,
    ) -> None:
        matrix = sparse.csr_matrix(transition_matrix, dtype=float)
        if matrix.shape[0] != matrix.shape[1]:
            raise CTMCError("transition matrix must be square")
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        if np.any(row_sums > 1.0 + 1e-9):
            raise CTMCError("transition matrix rows must sum to at most 1")
        self._matrix = matrix
        self._num_states = matrix.shape[0]
        if initial_distribution is None:
            initial = np.zeros(self._num_states)
            if self._num_states:
                initial[0] = 1.0
        else:
            initial = np.asarray(initial_distribution, dtype=float)
            if initial.shape != (self._num_states,):
                raise CTMCError("initial distribution has the wrong length")
        self._initial = initial

    @property
    def num_states(self) -> int:
        return self._num_states

    @property
    def transition_matrix(self) -> sparse.csr_matrix:
        return self._matrix

    @property
    def initial_distribution(self) -> np.ndarray:
        return self._initial.copy()

    def step(self, distribution: np.ndarray, steps: int = 1) -> np.ndarray:
        """Advance a distribution by ``steps`` steps."""
        vector = np.asarray(distribution, dtype=float)
        transposed = self._matrix.T.tocsr()
        for _ in range(steps):
            vector = transposed @ vector
        return vector

    def reachability_probabilities(
        self,
        target: Iterable[int] | np.ndarray,
        safe: Iterable[int] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-state probabilities of eventually reaching ``target`` via ``safe``.

        Solves the standard linear system over the "maybe" states (those that
        can reach the target without leaving the safe set).
        """
        target_mask = _mask(self._num_states, target)
        if safe is None:
            safe_mask = np.ones(self._num_states, dtype=bool)
        else:
            safe_mask = _mask(self._num_states, safe)

        result = np.zeros(self._num_states)
        result[target_mask] = 1.0

        # Precomputation ("prob0"): only states that can reach the target via
        # safe states have a positive probability.  Solving the linear system
        # on the remaining states alone also keeps it non-singular when some
        # safe states are absorbing.
        reachable = _backward_reachable(self._matrix, target_mask, safe_mask)
        maybe = safe_mask & ~target_mask & reachable
        maybe_states = np.flatnonzero(maybe)
        if maybe_states.size == 0:
            return result

        # Restrict to maybe states; right-hand side is the one-step
        # probability of jumping straight into the target.
        submatrix = self._matrix[np.ix_(maybe_states, maybe_states)].tocsc()
        to_target = np.asarray(
            self._matrix[np.ix_(maybe_states, np.flatnonzero(target_mask))].sum(axis=1)
        ).ravel()
        identity = sparse.identity(len(maybe_states), format="csc")
        solution = sparse_linalg.spsolve((identity - submatrix).tocsc(), to_target)
        result[maybe_states] = np.clip(np.asarray(solution, dtype=float), 0.0, 1.0)
        return result


def _backward_reachable(
    matrix: sparse.csr_matrix, target_mask: np.ndarray, safe_mask: np.ndarray
) -> np.ndarray:
    """States from which the target is reachable through safe states (graph only)."""
    transposed = matrix.T.tocsr()
    reachable = target_mask.copy()
    frontier = list(np.flatnonzero(target_mask))
    while frontier:
        state = frontier.pop()
        row = transposed.getrow(state)
        for predecessor in row.indices:
            predecessor = int(predecessor)
            if not reachable[predecessor] and safe_mask[predecessor]:
                reachable[predecessor] = True
                frontier.append(predecessor)
    return reachable


def _mask(size: int, states: Iterable[int] | np.ndarray) -> np.ndarray:
    array = np.asarray(list(states) if not isinstance(states, np.ndarray) else states)
    mask = np.zeros(size, dtype=bool)
    if array.size == 0:
        return mask
    if array.dtype == bool:
        if array.shape != (size,):
            raise CTMCError("boolean state mask has the wrong length")
        return array.copy()
    mask[array.astype(int)] = True
    return mask


def embedded_dtmc(chain: CTMC) -> DTMC:
    """The jump chain of ``chain``: ``P[i, j] = R[i, j] / E[i]``.

    Absorbing CTMC states become absorbing DTMC states (self-loop).
    """
    exit_rates = chain.exit_rates
    with np.errstate(divide="ignore", invalid="ignore"):
        inverse = np.where(exit_rates > 0, 1.0 / exit_rates, 0.0)
    matrix = sparse.diags(inverse) @ chain.rate_matrix
    matrix = sparse.csr_matrix(matrix)
    absorbing = np.flatnonzero(exit_rates == 0.0)
    if absorbing.size:
        matrix = matrix + sparse.coo_matrix(
            (np.ones(absorbing.size), (absorbing, absorbing)),
            shape=matrix.shape,
        )
    return DTMC(matrix, chain.initial_distribution)


def uniformized_dtmc(chain: CTMC, rate: float | None = None) -> tuple[DTMC, float]:
    """The uniformized DTMC of ``chain`` and the uniformization rate used."""
    matrix, q = chain.uniformized_matrix(rate)
    return DTMC(matrix, chain.initial_distribution), q


def unbounded_reachability(
    chain: CTMC,
    target: Iterable[int] | np.ndarray | str,
    safe: Iterable[int] | np.ndarray | str | None = None,
) -> np.ndarray:
    """Per-state probability of *eventually* reaching ``target`` (CSL ``P=?[F target]``).

    Time-unbounded reachability in a CTMC coincides with reachability in its
    embedded DTMC, so this simply delegates to the jump chain.
    """
    from repro.ctmc.transient import _as_state_mask

    target_mask = _as_state_mask(chain, target)
    safe_mask = None if safe is None else _as_state_mask(chain, safe)
    jump_chain = embedded_dtmc(chain)
    return jump_chain.reachability_probabilities(target_mask, safe_mask)
