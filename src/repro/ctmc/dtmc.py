"""Discrete-time helpers: embedded and uniformized DTMCs, unbounded reachability.

The CTMC algorithms occasionally need discrete-time machinery:

* the *embedded* DTMC (jump chain) is used for unbounded reachability
  probabilities and BSCC absorption probabilities,
* the *uniformized* DTMC is the P matrix of uniformization.

A tiny :class:`DTMC` class keeps these self-contained and testable.

Unbounded reachability runs the standard qualitative precomputation first:
:func:`qualitative_reachability` classifies every state as probability-0,
probability-1 or genuinely uncertain ("maybe") with two graph traversals,
so the linear system ``(I - P|_maybe) x = b`` covers only the maybe states
— a smaller factorization with better conditioning than solving over all
undecided-by-prob0 states.  :func:`unbounded_reachability` additionally
accepts a :class:`repro.ctmc.linsolve.SolverEngine`, which caches the
embedded matrix and the LU factorization per (chain fingerprint, maybe-set
signature) so repeated ``P=?[phi U psi]`` queries on one chain share them.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.ctmc.ctmc import CTMC, CTMCError
from repro.ctmc.linsolve import SolverEngine, subset_signature


class DTMC:
    """An explicit-state discrete-time Markov chain."""

    def __init__(
        self,
        transition_matrix: sparse.spmatrix | np.ndarray,
        initial_distribution: np.ndarray | None = None,
    ) -> None:
        matrix = sparse.csr_matrix(transition_matrix, dtype=float)
        if matrix.shape[0] != matrix.shape[1]:
            raise CTMCError("transition matrix must be square")
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        if np.any(row_sums > 1.0 + 1e-9):
            raise CTMCError("transition matrix rows must sum to at most 1")
        self._matrix = matrix
        self._num_states = matrix.shape[0]
        if initial_distribution is None:
            initial = np.zeros(self._num_states)
            if self._num_states:
                initial[0] = 1.0
        else:
            initial = np.asarray(initial_distribution, dtype=float)
            if initial.shape != (self._num_states,):
                raise CTMCError("initial distribution has the wrong length")
        self._initial = initial

    @property
    def num_states(self) -> int:
        return self._num_states

    @property
    def transition_matrix(self) -> sparse.csr_matrix:
        return self._matrix

    @property
    def initial_distribution(self) -> np.ndarray:
        return self._initial.copy()

    def step(self, distribution: np.ndarray, steps: int = 1) -> np.ndarray:
        """Advance a distribution by ``steps`` steps."""
        vector = np.asarray(distribution, dtype=float)
        transposed = self._matrix.T.tocsr()
        for _ in range(steps):
            vector = transposed @ vector
        return vector

    def reachability_probabilities(
        self,
        target: Iterable[int] | np.ndarray,
        safe: Iterable[int] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-state probabilities of eventually reaching ``target`` via ``safe``.

        Solves the standard linear system over the "maybe" states (those that
        can reach the target without leaving the safe set).
        """
        target_mask = _mask(self._num_states, target)
        if safe is None:
            safe_mask = np.ones(self._num_states, dtype=bool)
        else:
            safe_mask = _mask(self._num_states, safe)
        return reachability_from_matrix(self._matrix, target_mask, safe_mask)


def _backward_reachable(
    matrix: sparse.csr_matrix, target_mask: np.ndarray, safe_mask: np.ndarray
) -> np.ndarray:
    """States from which the target is reachable through safe states (graph only)."""
    transposed = matrix.T.tocsr()
    reachable = target_mask.copy()
    frontier = list(np.flatnonzero(target_mask))
    while frontier:
        state = frontier.pop()
        row = transposed.getrow(state)
        for predecessor in row.indices:
            predecessor = int(predecessor)
            if not reachable[predecessor] and safe_mask[predecessor]:
                reachable[predecessor] = True
                frontier.append(predecessor)
    return reachable


def qualitative_reachability(
    matrix: sparse.csr_matrix, target_mask: np.ndarray, safe_mask: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Classify states for ``P[ safe U target ]`` by graph analysis alone.

    Returns ``(certain, maybe)`` boolean masks: ``certain`` holds the states
    that reach the target (via safe states) with probability **one** and
    ``maybe`` the genuinely uncertain states with probability strictly
    between 0 and 1; everything else has probability zero.  Two backward
    traversals implement the textbook prob0/prob1 precomputation:

    * prob0 — states from which the target is graph-unreachable through
      safe states;
    * prob1 — states that cannot reach a prob0 state while traversing only
      safe non-target states (in a finite chain such a path must then hit
      the target almost surely; any BSCC avoiding the target lies entirely
      inside prob0, so it cannot hide from the second traversal).

    Substochastic rows (row sum < 1) leak probability mass, so a non-target
    state with a deficit row can never be classified probability-1; such
    states seed the second traversal alongside prob0.
    """
    reachable = _backward_reachable(matrix, target_mask, safe_mask)
    prob0 = ~reachable
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    leaky = (row_sums < 1.0 - 1e-12) & ~target_mask
    at_risk = _backward_reachable(matrix, prob0 | leaky, safe_mask & ~target_mask)
    certain = ~at_risk & ~prob0
    maybe = ~prob0 & ~certain
    return certain, maybe


def reachability_from_matrix(
    matrix: sparse.csr_matrix,
    target_mask: np.ndarray,
    safe_mask: np.ndarray,
    engine: SolverEngine | None = None,
    chain: CTMC | None = None,
) -> np.ndarray:
    """Per-state ``P[ safe U target ]`` on a stochastic ``matrix``.

    The shared core of :meth:`DTMC.reachability_probabilities` and
    :func:`unbounded_reachability`: after the qualitative 0/1 precomputation
    only the maybe states enter the linear system, whose right-hand side is
    the one-step probability of jumping into a certain (probability-1)
    state.  With an ``engine`` and owning ``chain`` given, the system's LU
    factorization is cached per (chain fingerprint, maybe-set signature).
    """
    num_states = matrix.shape[0]
    certain, maybe = qualitative_reachability(matrix, target_mask, safe_mask)
    result = np.zeros(num_states)
    result[certain] = 1.0
    maybe_states = np.flatnonzero(maybe)
    if maybe_states.size == 0:
        return result

    certain_states = np.flatnonzero(certain)
    to_certain = np.asarray(
        matrix[np.ix_(maybe_states, certain_states)].sum(axis=1)
    ).ravel()

    def build_system() -> sparse.csc_matrix:
        submatrix = matrix[np.ix_(maybe_states, maybe_states)].tocsc()
        identity = sparse.identity(len(maybe_states), format="csc")
        return (identity - submatrix).tocsc()

    if engine is not None and chain is not None:
        factorization = engine.factorization(
            chain, b"unbounded|" + subset_signature(maybe), build_system
        )
        solution = engine.solve(factorization, to_certain)
    else:
        solution = sparse_linalg.spsolve(build_system(), to_certain)
    result[maybe_states] = np.clip(np.asarray(solution, dtype=float), 0.0, 1.0)
    return result


def _mask(size: int, states: Iterable[int] | np.ndarray) -> np.ndarray:
    array = np.asarray(list(states) if not isinstance(states, np.ndarray) else states)
    mask = np.zeros(size, dtype=bool)
    if array.size == 0:
        return mask
    if array.dtype == bool:
        if array.shape != (size,):
            raise CTMCError("boolean state mask has the wrong length")
        return array.copy()
    mask[array.astype(int)] = True
    return mask


def embedded_dtmc(chain: CTMC) -> DTMC:
    """The jump chain of ``chain``: ``P[i, j] = R[i, j] / E[i]``.

    Absorbing CTMC states become absorbing DTMC states (self-loop).
    """
    exit_rates = chain.exit_rates
    with np.errstate(divide="ignore", invalid="ignore"):
        inverse = np.where(exit_rates > 0, 1.0 / exit_rates, 0.0)
    matrix = sparse.diags(inverse) @ chain.rate_matrix
    matrix = sparse.csr_matrix(matrix)
    absorbing = np.flatnonzero(exit_rates == 0.0)
    if absorbing.size:
        matrix = matrix + sparse.coo_matrix(
            (np.ones(absorbing.size), (absorbing, absorbing)),
            shape=matrix.shape,
        )
    return DTMC(matrix, chain.initial_distribution)


def uniformized_dtmc(chain: CTMC, rate: float | None = None) -> tuple[DTMC, float]:
    """The uniformized DTMC of ``chain`` and the uniformization rate used."""
    matrix, q = chain.uniformized_matrix(rate)
    return DTMC(matrix, chain.initial_distribution), q


def unbounded_reachability(
    chain: CTMC,
    target: Iterable[int] | np.ndarray | str,
    safe: Iterable[int] | np.ndarray | str | None = None,
    engine: SolverEngine | None = None,
) -> np.ndarray:
    """Per-state probability of *eventually* reaching ``target`` (CSL ``P=?[F target]``).

    Time-unbounded reachability in a CTMC coincides with reachability in its
    embedded DTMC.  With an ``engine`` given, both the embedded transition
    matrix (per chain fingerprint) and the LU factorization over the maybe
    states (per target/safe-induced subset signature) are cached, so
    repeated queries — and stacked queries sharing a maybe set — reuse one
    factorization.
    """
    from repro.ctmc.transient import _as_state_mask

    target_mask = _as_state_mask(chain, target)
    safe_mask = (
        np.ones(chain.num_states, dtype=bool)
        if safe is None
        else _as_state_mask(chain, safe)
    )
    if engine is None:
        matrix = embedded_dtmc(chain).transition_matrix
    else:
        matrix = engine.cached(
            "embedded",
            (chain.fingerprint,),
            lambda: embedded_dtmc(chain).transition_matrix,
        )
    return reachability_from_matrix(
        matrix, target_mask, safe_mask, engine=engine, chain=chain
    )
