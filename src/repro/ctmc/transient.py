"""Transient analysis of CTMCs by uniformization.

The central routine is :func:`transient_distribution`, which computes the
state distribution ``π(t)`` of a CTMC at time ``t`` from its initial
distribution using uniformization with Fox–Glynn Poisson weights.  On top of
it:

* :func:`transient_distributions` evaluates a whole grid of time points in a
  single shared uniformization sweep (the vector-power sequence ``π₀·Pᵏ`` is
  walked once and every grid point's Poisson mixture is folded in along the
  way, see :mod:`repro.ctmc.uniformization`),
* :func:`time_bounded_reachability` computes
  ``P[ F^{<= t} target ]`` / ``P[ safe U^{<= t} target ]`` — the probability
  of reaching target states within a time bound, the backbone of the CSL
  time-bounded until operator and of the paper's reliability and
  survivability measures.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.ctmc.ctmc import CTMC, as_state_mask
from repro.ctmc.foxglynn import fox_glynn
from repro.ctmc.uniformization import DEFAULT_EPSILON, poisson_mixture_sweep

__all__ = [
    "DEFAULT_EPSILON",
    "expected_time_in_states",
    "time_bounded_reachability",
    "time_bounded_reachability_per_state",
    "transient_distribution",
    "transient_distributions",
]


#: Normalise a state set (label name, index list or boolean mask); kept under
#: the historical name for the callers in dtmc.py / steady_state.py.
_as_state_mask = as_state_mask


def transient_distribution(
    chain: CTMC,
    time: float,
    initial_distribution: np.ndarray | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> np.ndarray:
    """Return the transient distribution ``π(time)`` of ``chain``.

    Parameters
    ----------
    chain:
        The CTMC to analyse.
    time:
        The (non-negative) time point.
    initial_distribution:
        Optional override of the chain's initial distribution.
    epsilon:
        Truncation error of the Poisson mixture.
    """
    return transient_distributions(chain, [time], initial_distribution, epsilon)[0]


def transient_distributions(
    chain: CTMC,
    times: Sequence[float],
    initial_distribution: np.ndarray | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> np.ndarray:
    """Return transient distributions for several time points.

    The result is an array of shape ``(len(times), num_states)``; row ``i``
    is ``π(times[i])``.  Time points may be given in any order and may
    contain duplicates; the whole grid is evaluated in one shared
    uniformization sweep, so the cost is governed by the *largest* Fox–Glynn
    truncation point rather than the sum over all grid points.

    This is a thin wrapper over a one-request
    :class:`repro.analysis.AnalysisSession`; to batch several initial
    distributions or several measures through the same sweep, build the
    session yourself (see :mod:`repro.analysis`).
    """
    from repro.analysis import AnalysisSession, MeasureKind

    session = AnalysisSession(epsilon=epsilon)
    index = session.request(
        chain,
        times,
        kind=MeasureKind.TRANSIENT,
        initial_distributions=initial_distribution,
    )
    return session.execute()[index].squeezed


def time_bounded_reachability(
    chain: CTMC,
    target: Iterable[int] | np.ndarray | str,
    time: float | Sequence[float],
    safe: Iterable[int] | np.ndarray | str | None = None,
    initial_distribution: np.ndarray | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> float | np.ndarray:
    """Probability of reaching ``target`` within ``time`` while staying in ``safe``.

    Implements the standard CSL reduction: states outside ``safe ∪ target``
    and states inside ``target`` are made absorbing, after which
    ``P[ safe U^{<=t} target ]`` equals the transient probability of being in
    a target state at time ``t``.

    Parameters
    ----------
    chain:
        The CTMC.
    target:
        Target states (label name, indices, or boolean mask).
    time:
        A single time bound or a sequence of time bounds.
    safe:
        States that may be traversed (defaults to all states, i.e. the
        formula ``true U^{<=t} target``).
    initial_distribution:
        Optional override of the chain's initial distribution; the result is
        the probability weighted by this distribution.  Pass a point
        distribution to get the value for a single state.
    epsilon:
        Truncation error of the Poisson mixture.

    Returns
    -------
    float or numpy.ndarray
        The reachability probability, scalar if ``time`` is scalar.

    Notes
    -----
    This is a thin wrapper over a one-request
    :class:`repro.analysis.AnalysisSession` (kind ``REACHABILITY``): the
    session absorbs the decided states — targets are "won", states outside
    ``safe ∪ target`` are "lost" — and folds the target-indicator products
    of all time bounds into one uniformization sweep.
    """
    from repro.analysis import AnalysisSession, MeasureKind

    scalar_input = np.isscalar(time)
    times = [float(time)] if scalar_input else [float(value) for value in time]

    session = AnalysisSession(epsilon=epsilon)
    index = session.request(
        chain,
        times,
        kind=MeasureKind.REACHABILITY,
        target=target,
        safe=safe,
        initial_distributions=initial_distribution,
    )
    probabilities = session.execute()[index].squeezed
    if scalar_input:
        return float(probabilities[0])
    return probabilities


def time_bounded_reachability_per_state(
    chain: CTMC,
    target: Iterable[int] | np.ndarray | str,
    time: float,
    safe: Iterable[int] | np.ndarray | str | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> np.ndarray:
    """Per-state probabilities ``P_s[ safe U^{<=t} target ]`` for all states ``s``.

    Computed with a single backward pass: rather than running the forward
    uniformization from every state, the Poisson mixture is applied to the
    indicator vector of the target states using the transposed recursion
    ``u_{k+1} = P u_k``, which yields the probabilities for all start states
    simultaneously.
    """
    target_mask = _as_state_mask(chain, target)
    if safe is None:
        safe_mask = np.ones(chain.num_states, dtype=bool)
    else:
        safe_mask = _as_state_mask(chain, safe)

    absorbing = target_mask | ~(safe_mask | target_mask)
    transformed = chain.make_absorbing(np.flatnonzero(absorbing))
    probabilities, q = transformed.uniformized_matrix()

    if float(time) == 0.0 or transformed.max_exit_rate == 0.0:
        return target_mask.astype(float)

    weights = fox_glynn(q * float(time), epsilon)
    mixtures, _ = poisson_mixture_sweep(
        probabilities, target_mask.astype(float), [weights]
    )
    return np.clip(mixtures[0], 0.0, 1.0)


def expected_time_in_states(
    chain: CTMC,
    states: Iterable[int] | np.ndarray | str,
    horizon: float,
    initial_distribution: np.ndarray | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> float:
    """Expected total time spent in ``states`` during ``[0, horizon]``.

    Computed as the cumulative reward of an indicator reward structure, via
    the uniformization formula for accumulated rewards (see
    :func:`repro.ctmc.rewards.cumulative_reward`); provided here as a
    convenience for interval-availability style measures.
    """
    from repro.ctmc.rewards import cumulative_reward  # local import to avoid a cycle
    from repro.ctmc.ctmc import MarkovRewardModel, RewardStructure

    mask = _as_state_mask(chain, states)
    structure = RewardStructure("indicator", mask.astype(float))
    model = MarkovRewardModel(chain, structure)
    return cumulative_reward(
        model, horizon, reward_name="indicator",
        initial_distribution=initial_distribution, epsilon=epsilon,
    )
