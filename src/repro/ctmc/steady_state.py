"""Steady-state (long-run) analysis of CTMCs.

The long-run distribution of a finite CTMC is determined by its bottom
strongly connected components (BSCCs): mass that reaches a BSCC stays there
and distributes according to the BSCC's local stationary distribution.  The
functions here implement the general procedure used by stochastic model
checkers:

1. decompose the chain into BSCCs (:func:`bottom_strongly_connected_components`),
2. solve the local balance equations of each BSCC
   (:func:`_bscc_stationary_distribution`),
3. compute the probability of eventually reaching each BSCC from the initial
   distribution (an unbounded-reachability problem on the embedded DTMC), and
4. combine the pieces into the global long-run distribution
   (:func:`steady_state_distribution`).

For the irreducible chains produced by repairable Arcade models, step 3 is
trivial (there is a single BSCC covering every state), but the general code
path is retained so that e.g. reliability models without repair — which have
absorbing failure states — are handled correctly too.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

import networkx as nx

from repro.ctmc.ctmc import CTMC, CTMCError


def bottom_strongly_connected_components(chain: CTMC) -> list[np.ndarray]:
    """Return the BSCCs of ``chain`` as arrays of state indices.

    A strongly connected component is *bottom* if no transition leaves it.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(range(chain.num_states))
    matrix = chain.rate_matrix.tocoo()
    graph.add_edges_from(zip(matrix.row.tolist(), matrix.col.tolist()))

    bsccs: list[np.ndarray] = []
    for component in nx.strongly_connected_components(graph):
        component_set = set(component)
        is_bottom = True
        for state in component:
            for successor in graph.successors(state):
                if successor not in component_set:
                    is_bottom = False
                    break
            if not is_bottom:
                break
        if is_bottom:
            bsccs.append(np.array(sorted(component), dtype=int))
    bsccs.sort(key=lambda indices: int(indices[0]))
    return bsccs


#: Above this size the "auto" method switches from the direct sparse solve
#: to power iteration on the uniformized DTMC (direct LU factorisations of
#: the balance equations suffer from severe fill-in for the repair-queue
#: chains of this project, whereas power iteration converges in a few
#: thousand sparse matrix-vector products).
_AUTO_DIRECT_LIMIT = 4000


def _bscc_stationary_distribution(
    chain: CTMC, states: np.ndarray, method: str = "auto"
) -> np.ndarray:
    """Stationary distribution of the sub-chain induced by a BSCC.

    Solves ``π Q = 0`` with ``Σ π = 1`` restricted to ``states``.
    """
    size = len(states)
    if size == 1:
        return np.array([1.0])

    sub_rates = chain.rate_matrix[np.ix_(states, states)].tocsr()
    exit_rates = np.asarray(sub_rates.sum(axis=1)).ravel()
    generator = sub_rates - sparse.diags(exit_rates)

    if method == "auto":
        method = "direct" if size <= _AUTO_DIRECT_LIMIT else "power"

    if method == "direct":
        # Replace one balance equation with the normalisation constraint.
        system = generator.T.tolil()
        system[size - 1, :] = 1.0
        rhs = np.zeros(size)
        rhs[size - 1] = 1.0
        try:
            solution = sparse_linalg.spsolve(system.tocsr(), rhs)
        except Exception as error:  # pragma: no cover - fallback path
            raise CTMCError(f"direct steady-state solve failed: {error}") from error
        solution = np.asarray(solution, dtype=float)
    elif method == "power":
        solution = _power_iteration(generator, size)
    else:
        raise CTMCError(f"unknown steady-state method {method!r}")

    solution = np.clip(solution, 0.0, None)
    total = solution.sum()
    if total <= 0:
        raise CTMCError("steady-state solver produced a zero vector")
    return solution / total


def _power_iteration(
    generator: sparse.spmatrix,
    size: int,
    tolerance: float = 1e-14,
    max_iterations: int = 500_000,
    check_every: int = 100,
) -> np.ndarray:
    """Stationary vector via power iteration on the uniformized DTMC.

    The iteration matrix ``P = I + Q/q`` is stochastic for any uniformization
    rate ``q`` at least as large as the maximal exit rate; a slightly larger
    rate avoids periodicity.  Convergence is checked every ``check_every``
    iterations on the maximum-norm difference of successive iterates, with a
    tolerance tight enough that the propagated error stays far below the
    1e-10 accuracy targeted by the transient analysis.
    """
    exit_rates = -np.asarray(generator.diagonal()).ravel()
    q = float(exit_rates.max()) * 1.02 + 1e-12
    transition = sparse.identity(size, format="csr") + generator / q
    transposed = transition.T.tocsr()
    vector = np.full(size, 1.0 / size)
    for iteration in range(1, max_iterations + 1):
        updated = transposed @ vector
        if iteration % check_every == 0 and np.abs(updated - vector).max() < tolerance:
            vector = updated
            break
        vector = updated
    return np.asarray(vector).ravel()


def _bscc_reachability_probabilities(
    chain: CTMC, bsccs: list[np.ndarray], initial: np.ndarray
) -> np.ndarray:
    """Probability of eventually being absorbed into each BSCC.

    Uses the embedded DTMC and solves the standard linear system for
    absorption probabilities from transient states.
    """
    num_states = chain.num_states
    bscc_of_state = np.full(num_states, -1, dtype=int)
    for index, states in enumerate(bsccs):
        bscc_of_state[states] = index

    transient_states = np.flatnonzero(bscc_of_state < 0)
    probabilities = np.zeros(len(bsccs))

    # Mass starting inside a BSCC stays there.
    for index, states in enumerate(bsccs):
        probabilities[index] += float(initial[states].sum())

    if transient_states.size == 0:
        return probabilities

    # Embedded DTMC restricted to transient states.
    exit_rates = chain.exit_rates
    rates = chain.rate_matrix
    with np.errstate(divide="ignore", invalid="ignore"):
        inverse_exit = np.where(exit_rates > 0, 1.0 / exit_rates, 0.0)
    embedded = sparse.diags(inverse_exit) @ rates

    transient_index = {state: position for position, state in enumerate(transient_states)}
    embedded_tt = embedded[np.ix_(transient_states, transient_states)].tocsr()

    # For each BSCC, the one-step probability of jumping from a transient
    # state directly into it.
    identity = sparse.identity(len(transient_states), format="csc")
    system = (identity - embedded_tt.tocsc()).tocsc()
    lu = sparse_linalg.splu(system)

    initial_transient = initial[transient_states]
    for index, states in enumerate(bsccs):
        one_step = np.asarray(embedded[np.ix_(transient_states, states)].sum(axis=1)).ravel()
        absorption = lu.solve(one_step)
        probabilities[index] += float(initial_transient @ absorption)

    # Guard against numerical drift.
    total = probabilities.sum()
    if total > 0:
        probabilities = probabilities / total
    return probabilities


def steady_state_distribution(
    chain: CTMC,
    initial_distribution: np.ndarray | None = None,
    method: str = "auto",
) -> np.ndarray:
    """Return the long-run (steady-state) distribution of ``chain``.

    For irreducible chains this is the unique stationary distribution; in
    general it is the BSCC-weighted mixture reachable from the initial
    distribution.
    """
    if initial_distribution is None:
        initial = chain.initial_distribution
    else:
        initial = np.asarray(initial_distribution, dtype=float)
        if initial.shape != (chain.num_states,):
            raise CTMCError("initial distribution has the wrong length")

    bsccs = bottom_strongly_connected_components(chain)
    if not bsccs:
        raise CTMCError("chain has no bottom strongly connected component")

    if len(bsccs) == 1 and len(bsccs[0]) == chain.num_states:
        return _bscc_stationary_distribution(chain, bsccs[0], method)

    reach = _bscc_reachability_probabilities(chain, bsccs, initial)
    distribution = np.zeros(chain.num_states)
    for probability, states in zip(reach, bsccs):
        if probability <= 0.0:
            continue
        local = _bscc_stationary_distribution(chain, states, method)
        distribution[states] += probability * local
    return distribution


def steady_state_probability(
    chain: CTMC,
    states: Iterable[int] | np.ndarray | str,
    initial_distribution: np.ndarray | None = None,
    method: str = "auto",
) -> float:
    """Long-run probability of residing in ``states`` (CSL ``S=?[states]``)."""
    from repro.ctmc.transient import _as_state_mask  # shared helper

    mask = _as_state_mask(chain, states)
    distribution = steady_state_distribution(chain, initial_distribution, method)
    return float(distribution[mask].sum())
