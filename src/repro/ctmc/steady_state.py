"""Steady-state (long-run) analysis of CTMCs.

The long-run distribution of a finite CTMC is determined by its bottom
strongly connected components (BSCCs): mass that reaches a BSCC stays there
and distributes according to the BSCC's local stationary distribution.  The
functions here implement the general procedure used by stochastic model
checkers:

1. decompose the chain into BSCCs (:func:`bottom_strongly_connected_components`),
2. solve the local balance equations of each BSCC
   (:func:`_bscc_stationary_distribution`),
3. compute the probability of eventually reaching each BSCC from the initial
   distribution (an unbounded-reachability problem on the embedded DTMC), and
4. combine the pieces into the global long-run distribution
   (:func:`steady_state_distribution`).

For the irreducible chains produced by repairable Arcade models, step 3 is
trivial (there is a single BSCC covering every state), but the general code
path is retained so that e.g. reliability models without repair — which have
absorbing failure states — are handled correctly too.

Every function threads an optional :class:`repro.ctmc.linsolve.SolverEngine`:
the BSCC decomposition (kind ``bscc``, keyed by the chain's content
fingerprint), each BSCC's stationary vector (kind ``stationary``, keyed by
fingerprint plus subset signature), the absorption-system LU (kind
``factorization``) and the solved absorption matrix (kind ``absorption``,
built on the jump-chain matrix shared with unbounded reachability under
kind ``embedded``) are then fetched from — or stored into — the engine's
backing store.  Pointed at the process-wide artifact cache, repeated
availability tables perform zero decompositions and zero factorizations
after the first pass; without an engine every call stays a self-contained
per-call reference computation, exactly as before.

:func:`steady_state_distribution_block` is the batch entry point the
analysis executor uses: a ``(num_initials, num_states)`` block of initial
distributions shares one decomposition, one stationary solve per BSCC and
one multi-column absorption solve.

When the analysis session runs with ``lump=True`` the chain arriving here
is already the ordinary-lumpability quotient seeded with the group's
observables (the aggregated process is Markov and block functions of the
state are preserved), so the BSCC decomposition and every linear system are
solved on the reduced state space; per-state ``S=?`` requests bypass the
quotient and still see the full chain.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
from scipy import sparse

import networkx as nx

from repro.ctmc.ctmc import CTMC, CTMCError
from repro.ctmc.linsolve import SolverEngine, subset_signature


def bottom_strongly_connected_components(chain: CTMC) -> list[np.ndarray]:
    """Return the BSCCs of ``chain`` as arrays of state indices.

    A strongly connected component is *bottom* if no transition leaves it.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(range(chain.num_states))
    matrix = chain.rate_matrix.tocoo()
    graph.add_edges_from(zip(matrix.row.tolist(), matrix.col.tolist()))

    bsccs: list[np.ndarray] = []
    for component in nx.strongly_connected_components(graph):
        component_set = set(component)
        is_bottom = True
        for state in component:
            for successor in graph.successors(state):
                if successor not in component_set:
                    is_bottom = False
                    break
            if not is_bottom:
                break
        if is_bottom:
            bsccs.append(np.array(sorted(component), dtype=int))
    bsccs.sort(key=lambda indices: int(indices[0]))
    return bsccs


def bscc_decomposition(chain: CTMC, engine: SolverEngine | None = None) -> list[np.ndarray]:
    """The BSCCs of ``chain``, cached per content fingerprint when possible."""
    if engine is None:
        return bottom_strongly_connected_components(chain)
    return engine.cached(
        "bscc",
        (chain.fingerprint,),
        lambda: bottom_strongly_connected_components(chain),
    )


#: Above this size the "auto" method switches from the direct sparse solve
#: to power iteration on the uniformized DTMC (direct LU factorisations of
#: the balance equations suffer from severe fill-in for the repair-queue
#: chains of this project, whereas power iteration converges in a few
#: thousand sparse matrix-vector products).
_AUTO_DIRECT_LIMIT = 4000


def _bscc_stationary_distribution(
    chain: CTMC,
    states: np.ndarray,
    method: str = "auto",
    engine: SolverEngine | None = None,
) -> np.ndarray:
    """Stationary distribution of the sub-chain induced by a BSCC.

    Solves ``π Q = 0`` with ``Σ π = 1`` restricted to ``states``.  The
    resulting vector is a pure function of (chain, subset, method), so it is
    cached under that key; warm lookups skip both the factorization and the
    solve.
    """
    size = len(states)
    if size == 1:
        return np.array([1.0])
    if method == "auto":
        method = "direct" if size <= _AUTO_DIRECT_LIMIT else "power"
    if method not in ("direct", "power"):
        raise CTMCError(f"unknown steady-state method {method!r}")

    engine = engine if engine is not None else SolverEngine()
    member_mask = np.zeros(chain.num_states, dtype=bool)
    member_mask[states] = True
    token = b"|".join((b"stationary", method.encode(), subset_signature(member_mask)))
    return engine.cached(
        "stationary",
        (chain.fingerprint, token),
        lambda: _solve_stationary(chain, states, method, engine),
    )


def _solve_stationary(
    chain: CTMC, states: np.ndarray, method: str, engine: SolverEngine
) -> np.ndarray:
    size = len(states)
    sub_rates = chain.rate_matrix[np.ix_(states, states)].tocsr()
    exit_rates = np.asarray(sub_rates.sum(axis=1)).ravel()
    generator = sub_rates - sparse.diags(exit_rates)

    if method == "direct":
        # Replace one balance equation with the normalisation constraint.
        system = generator.T.tolil()
        system[size - 1, :] = 1.0
        rhs = np.zeros(size)
        rhs[size - 1] = 1.0
        try:
            factorization = engine.build_factorization(system.tocsc())
            solution = engine.solve(factorization, rhs)
        except Exception as error:  # pragma: no cover - fallback path
            raise CTMCError(f"direct steady-state solve failed: {error}") from error
        solution = np.asarray(solution, dtype=float)
    else:
        solution = _power_iteration(generator, size)

    solution = np.clip(solution, 0.0, None)
    total = solution.sum()
    if total <= 0:
        raise CTMCError("steady-state solver produced a zero vector")
    return solution / total


def _power_iteration(
    generator: sparse.spmatrix,
    size: int,
    tolerance: float = 1e-15,
    max_iterations: int = 500_000,
    check_every: int = 100,
) -> np.ndarray:
    """Stationary vector via power iteration on the uniformized DTMC.

    The iteration matrix ``P = I + Q/q`` is stochastic for any uniformization
    rate ``q`` at least as large as the maximal exit rate; a slightly larger
    rate avoids periodicity.  Convergence is checked every ``check_every``
    iterations on the maximum-norm difference of successive iterates.  The
    tolerance sits just above the roundoff floor of the matrix-vector
    products: a successive-difference stop overstates convergence by the
    mixing factor ``λ₂/(1-λ₂)``, and the repair-queue chains mix slowly
    enough that the former 1e-14 stop left ~1e-12 of true error — visible
    against the direct solves of the (much smaller) lumped quotients, which
    the ``bench_perf_lump_complete`` gates compare at 1e-12.
    """
    exit_rates = -np.asarray(generator.diagonal()).ravel()
    q = float(exit_rates.max()) * 1.02 + 1e-12
    transition = sparse.identity(size, format="csr") + generator / q
    transposed = transition.T.tocsr()
    vector = np.full(size, 1.0 / size)
    for iteration in range(1, max_iterations + 1):
        updated = transposed @ vector
        if iteration % check_every == 0 and np.abs(updated - vector).max() < tolerance:
            vector = updated
            break
        vector = updated
    return np.asarray(vector).ravel()


def _transient_states(chain: CTMC, bsccs: list[np.ndarray]) -> np.ndarray:
    member = np.zeros(chain.num_states, dtype=bool)
    for states in bsccs:
        member[states] = True
    return np.flatnonzero(~member)


def _absorption_matrix(
    chain: CTMC,
    bsccs: list[np.ndarray],
    transient_states: np.ndarray,
    engine: SolverEngine,
) -> np.ndarray:
    """``(num_transient, num_bsccs)`` absorption probabilities, cached per chain.

    One LU factorization of the embedded DTMC restricted to the transient
    states serves *all* BSCCs: their one-step entry probabilities are
    stacked as right-hand-side columns of a single multi-column solve.  Both
    the BSCC set and the transient set are pure functions of the chain, so
    the solved matrix itself is cached (kind ``absorption``) — warm repeats
    skip the factorization *and* the solve.
    """

    def build() -> np.ndarray:
        # The jump-chain matrix is shared with unbounded reachability (kind
        # "embedded"); its absorbing-state self-loops do not disturb the
        # transient rows sliced here.
        from repro.ctmc.dtmc import embedded_dtmc

        embedded = engine.cached(
            "embedded",
            (chain.fingerprint,),
            lambda: embedded_dtmc(chain).transition_matrix,
        )
        transient_mask = np.zeros(chain.num_states, dtype=bool)
        transient_mask[transient_states] = True

        def build_system() -> sparse.csc_matrix:
            embedded_tt = embedded[np.ix_(transient_states, transient_states)]
            identity = sparse.identity(len(transient_states), format="csc")
            return (identity - embedded_tt.tocsc()).tocsc()

        factorization = engine.factorization(
            chain,
            b"bscc-absorption|" + subset_signature(transient_mask),
            build_system,
        )
        one_step = np.column_stack(
            [
                np.asarray(
                    embedded[np.ix_(transient_states, states)].sum(axis=1)
                ).ravel()
                for states in bsccs
            ]
        )
        absorption = np.asarray(engine.solve(factorization, one_step), dtype=float)
        return absorption.reshape(len(transient_states), len(bsccs))

    return engine.cached("absorption", (chain.fingerprint,), build)


def _bscc_absorption_weights(
    chain: CTMC,
    bsccs: list[np.ndarray],
    initial_block: np.ndarray,
    engine: SolverEngine,
) -> np.ndarray:
    """Probability of eventual absorption into each BSCC, per initial row.

    Returns a ``(num_initials, num_bsccs)`` matrix: the mass each row
    already places inside every BSCC plus the transient mass weighted by
    the cached absorption matrix.
    """
    weights = np.zeros((initial_block.shape[0], len(bsccs)))
    for index, states in enumerate(bsccs):
        weights[:, index] += initial_block[:, states].sum(axis=1)

    transient_states = _transient_states(chain, bsccs)
    if transient_states.size:
        absorption = _absorption_matrix(chain, bsccs, transient_states, engine)
        weights += initial_block[:, transient_states] @ absorption

    # Guard against numerical drift.
    totals = weights.sum(axis=1, keepdims=True)
    positive = totals[:, 0] > 0
    weights[positive] = weights[positive] / totals[positive]
    return weights


def steady_state_distribution_block(
    chain: CTMC,
    initial_block: np.ndarray,
    method: str = "auto",
    engine: SolverEngine | None = None,
) -> np.ndarray:
    """Long-run distributions for a block of initial distributions.

    ``initial_block`` has shape ``(num_initials, num_states)``; the result
    matches it.  All rows share one BSCC decomposition, one stationary
    solve per reached BSCC and one multi-column absorption solve — the
    batch entry point of the analysis executor's steady-state groups.
    """
    engine = engine if engine is not None else SolverEngine()
    initial_block = np.asarray(initial_block, dtype=float)
    if initial_block.ndim != 2 or initial_block.shape[1] != chain.num_states:
        raise CTMCError("initial block must have shape (num_initials, num_states)")

    bsccs = bscc_decomposition(chain, engine)
    if not bsccs:
        raise CTMCError("chain has no bottom strongly connected component")

    if len(bsccs) == 1 and len(bsccs[0]) == chain.num_states:
        local = _bscc_stationary_distribution(chain, bsccs[0], method, engine)
        return np.broadcast_to(local, initial_block.shape).copy()

    weights = _bscc_absorption_weights(chain, bsccs, initial_block, engine)
    distributions = np.zeros_like(initial_block)
    for index, states in enumerate(bsccs):
        column = weights[:, index]
        if not np.any(column > 0.0):
            continue
        local = _bscc_stationary_distribution(chain, states, method, engine)
        distributions[:, states] += column[:, None] * local[None, :]
    return distributions


def steady_state_distribution(
    chain: CTMC,
    initial_distribution: np.ndarray | None = None,
    method: str = "auto",
    engine: SolverEngine | None = None,
) -> np.ndarray:
    """Return the long-run (steady-state) distribution of ``chain``.

    For irreducible chains this is the unique stationary distribution; in
    general it is the BSCC-weighted mixture reachable from the initial
    distribution.
    """
    if initial_distribution is None:
        initial = chain.initial_distribution
    else:
        initial = np.asarray(initial_distribution, dtype=float)
        if initial.shape != (chain.num_states,):
            raise CTMCError("initial distribution has the wrong length")
    return steady_state_distribution_block(chain, initial[None, :], method, engine)[0]


def steady_state_values_per_state(
    chain: CTMC,
    observable: np.ndarray,
    method: str = "auto",
    engine: SolverEngine | None = None,
) -> np.ndarray:
    """Long-run expectation of ``observable`` per point-mass start state.

    ``values[s]`` is ``Σ_i π_s(i) · observable(i)`` where ``π_s`` is the
    long-run distribution started in ``s`` — the per-state vector of CSL
    ``S=?`` (indicator observable) and CSRL ``R=?[S]`` (reward-rate
    observable).  Instead of one full steady-state computation per start
    state, every BSCC contributes a single scalar and the transient states
    mix those scalars through one multi-column absorption solve.
    """
    engine = engine if engine is not None else SolverEngine()
    observable = np.asarray(observable, dtype=float)
    if observable.shape != (chain.num_states,):
        raise CTMCError("observable vector has the wrong length")

    bsccs = bscc_decomposition(chain, engine)
    if not bsccs:
        raise CTMCError("chain has no bottom strongly connected component")

    bscc_values = np.array(
        [
            float(
                _bscc_stationary_distribution(chain, states, method, engine)
                @ observable[states]
            )
            for states in bsccs
        ]
    )
    values = np.zeros(chain.num_states)
    for states, value in zip(bsccs, bscc_values):
        values[states] = value

    transient_states = _transient_states(chain, bsccs)
    if transient_states.size:
        # A point mass on a transient state mixes the per-BSCC scalars with
        # exactly its row of the absorption matrix — no (num_transient,
        # num_states) block needs materializing.
        absorption = _absorption_matrix(chain, bsccs, transient_states, engine)
        values[transient_states] = absorption @ bscc_values
    return values


def steady_state_probability(
    chain: CTMC,
    states: Iterable[int] | np.ndarray | str,
    initial_distribution: np.ndarray | None = None,
    method: str = "auto",
    engine: SolverEngine | None = None,
) -> float:
    """Long-run probability of residing in ``states`` (CSL ``S=?[states]``)."""
    from repro.ctmc.transient import _as_state_mask  # shared helper

    mask = _as_state_mask(chain, states)
    distribution = steady_state_distribution(chain, initial_distribution, method, engine)
    return float(distribution[mask].sum())
