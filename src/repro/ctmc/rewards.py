"""Reward measures over Markov reward models (the CSRL backend).

Three measures are provided, matching the paper's Section 3:

* :func:`instantaneous_reward` — the expected reward *rate* at a time
  instant ``t``, i.e. ``R=?[ I=t ]``.  This is the paper's *instantaneous
  cost*.
* :func:`cumulative_reward` — the expected reward accumulated during
  ``[0, t]``, i.e. ``R=?[ C<=t ]``.  This is the paper's *accumulated cost*.
* :func:`steady_state_reward` — the long-run expected reward rate,
  ``R=?[ S ]``.

Accumulated rewards are computed with the uniformization identity

.. math::

   \\mathbb{E}\\Big[\\int_0^t \\rho(X_u)\\,du\\Big]
     = \\frac{1}{q} \\sum_{k \\ge 0}
       \\Pr[N_{qt} > k] \\; \\big(\\pi_0 P^k\\big) \\cdot \\rho ,

where ``P`` is the uniformized DTMC and ``N_{qt}`` a Poisson variable with
mean ``q·t`` — the same machinery (and the same Fox–Glynn weights) used for
transient distributions.
"""

from __future__ import annotations

import numpy as np

from repro.ctmc.ctmc import CTMC, CTMCError, MarkovRewardModel
from repro.ctmc.foxglynn import fox_glynn
from repro.ctmc.steady_state import steady_state_distribution
from repro.ctmc.transient import DEFAULT_EPSILON, transient_distribution


def _resolve(
    model: MarkovRewardModel | tuple[CTMC, np.ndarray],
    reward_name: str | None,
) -> tuple[CTMC, np.ndarray]:
    """Accept either a :class:`MarkovRewardModel` or ``(chain, reward_vector)``."""
    if isinstance(model, MarkovRewardModel):
        structure = model.reward_structure(reward_name)
        return model.chain, structure.state_rewards
    chain, rewards = model
    rewards = np.asarray(rewards, dtype=float)
    if rewards.shape != (chain.num_states,):
        raise CTMCError("reward vector has the wrong length")
    return chain, rewards


def instantaneous_reward(
    model: MarkovRewardModel | tuple[CTMC, np.ndarray],
    time: float,
    reward_name: str | None = None,
    initial_distribution: np.ndarray | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> float:
    """Expected reward rate at time ``time`` (CSRL ``R=?[I=t]``)."""
    chain, rewards = _resolve(model, reward_name)
    distribution = transient_distribution(chain, time, initial_distribution, epsilon)
    return float(distribution @ rewards)


def instantaneous_reward_curve(
    model: MarkovRewardModel | tuple[CTMC, np.ndarray],
    times: np.ndarray | list[float],
    reward_name: str | None = None,
    initial_distribution: np.ndarray | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> np.ndarray:
    """Expected reward rate at each time point in ``times``."""
    from repro.ctmc.transient import transient_distributions

    chain, rewards = _resolve(model, reward_name)
    distributions = transient_distributions(chain, list(times), initial_distribution, epsilon)
    return distributions @ rewards


def cumulative_reward(
    model: MarkovRewardModel | tuple[CTMC, np.ndarray],
    time: float,
    reward_name: str | None = None,
    initial_distribution: np.ndarray | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> float:
    """Expected reward accumulated in ``[0, time]`` (CSRL ``R=?[C<=t]``)."""
    chain, rewards = _resolve(model, reward_name)
    if time < 0:
        raise CTMCError("time bound must be non-negative")
    if time == 0.0:
        return 0.0

    if initial_distribution is None:
        pi0 = chain.initial_distribution
    else:
        pi0 = np.asarray(initial_distribution, dtype=float)
        if pi0.shape != (chain.num_states,):
            raise CTMCError("initial distribution has the wrong length")

    q_rate = chain.max_exit_rate
    if q_rate == 0.0:
        # No transitions at all: the chain sits in the initial distribution.
        return float(time * (pi0 @ rewards))

    probabilities, q = chain.uniformized_matrix()
    transposed = probabilities.T.tocsr()

    weights = fox_glynn(q * float(time), epsilon)

    # Tail probabilities: tail[k] = P[N > k] computed from the truncated
    # weights.  Below the left truncation point the tail is (numerically) 1.
    cumulative = np.cumsum(weights.weights)
    total = float(cumulative[-1])

    vector = pi0.copy()
    accumulated = 0.0
    for k in range(0, weights.right + 1):
        if k < weights.left:
            tail = total
        else:
            tail = total - float(cumulative[k - weights.left])
        if tail <= 0.0:
            break
        accumulated += tail * float(vector @ rewards)
        vector = transposed @ vector
    return accumulated / q


def cumulative_reward_curve(
    model: MarkovRewardModel | tuple[CTMC, np.ndarray],
    times: np.ndarray | list[float],
    reward_name: str | None = None,
    initial_distribution: np.ndarray | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> np.ndarray:
    """Expected accumulated reward for each time bound in ``times``."""
    return np.array(
        [
            cumulative_reward(model, float(t), reward_name, initial_distribution, epsilon)
            for t in times
        ]
    )


def steady_state_reward(
    model: MarkovRewardModel | tuple[CTMC, np.ndarray],
    reward_name: str | None = None,
    initial_distribution: np.ndarray | None = None,
) -> float:
    """Long-run expected reward rate (CSRL ``R=?[S]``)."""
    chain, rewards = _resolve(model, reward_name)
    distribution = steady_state_distribution(chain, initial_distribution)
    return float(distribution @ rewards)
