"""Reward measures over Markov reward models (the CSRL backend).

Three measures are provided, matching the paper's Section 3:

* :func:`instantaneous_reward` — the expected reward *rate* at a time
  instant ``t``, i.e. ``R=?[ I=t ]``.  This is the paper's *instantaneous
  cost*.
* :func:`cumulative_reward` — the expected reward accumulated during
  ``[0, t]``, i.e. ``R=?[ C<=t ]``.  This is the paper's *accumulated cost*.
* :func:`steady_state_reward` — the long-run expected reward rate,
  ``R=?[ S ]``.

Accumulated rewards are computed with the uniformization identity

.. math::

   \\mathbb{E}\\Big[\\int_0^t \\rho(X_u)\\,du\\Big]
     = \\frac{1}{q} \\sum_{k \\ge 0}
       \\Pr[N_{qt} > k] \\; \\big(\\pi_0 P^k\\big) \\cdot \\rho ,

where ``P`` is the uniformized DTMC and ``N_{qt}`` a Poisson variable with
mean ``q·t`` — the same machinery (and the same Fox–Glynn weights) used for
transient distributions.  The curve variants submit a one-request
:class:`repro.analysis.AnalysisSession`, whose executor walks the
vector-power sequence once and folds every bound's tail-weighted reward
sums in along the way; to share that sweep across several reward curves or
initial distributions, build the session yourself (see
:mod:`repro.analysis`).
"""

from __future__ import annotations

import numpy as np

from repro.ctmc.ctmc import CTMC, CTMCError, MarkovRewardModel
from repro.ctmc.transient import DEFAULT_EPSILON


def _resolve(
    model: MarkovRewardModel | tuple[CTMC, np.ndarray],
    reward_name: str | None,
) -> tuple[CTMC, np.ndarray]:
    """Accept either a :class:`MarkovRewardModel` or ``(chain, reward_vector)``."""
    if isinstance(model, MarkovRewardModel):
        structure = model.reward_structure(reward_name)
        return model.chain, structure.state_rewards
    chain, rewards = model
    rewards = np.asarray(rewards, dtype=float)
    if rewards.shape != (chain.num_states,):
        raise CTMCError("reward vector has the wrong length")
    return chain, rewards


def instantaneous_reward(
    model: MarkovRewardModel | tuple[CTMC, np.ndarray],
    time: float,
    reward_name: str | None = None,
    initial_distribution: np.ndarray | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> float:
    """Expected reward rate at time ``time`` (CSRL ``R=?[I=t]``)."""
    return float(
        instantaneous_reward_curve(
            model, [float(time)], reward_name, initial_distribution, epsilon
        )[0]
    )


def instantaneous_reward_curve(
    model: MarkovRewardModel | tuple[CTMC, np.ndarray],
    times: np.ndarray | list[float],
    reward_name: str | None = None,
    initial_distribution: np.ndarray | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> np.ndarray:
    """Expected reward rate at each time point in ``times``.

    The whole grid shares one uniformization sweep; only the scalar reward
    sequence ``(π₀ Pᵏ)·ρ`` is accumulated, not full distributions.
    """
    from repro.analysis import AnalysisSession, MeasureKind

    chain, rewards = _resolve(model, reward_name)
    session = AnalysisSession(epsilon=epsilon)
    index = session.request(
        chain,
        times,
        kind=MeasureKind.INSTANTANEOUS_REWARD,
        rewards=rewards,
        initial_distributions=initial_distribution,
    )
    return session.execute()[index].squeezed


def cumulative_reward(
    model: MarkovRewardModel | tuple[CTMC, np.ndarray],
    time: float,
    reward_name: str | None = None,
    initial_distribution: np.ndarray | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> float:
    """Expected reward accumulated in ``[0, time]`` (CSRL ``R=?[C<=t]``)."""
    if time < 0:
        raise CTMCError("time bound must be non-negative")
    return float(
        cumulative_reward_curve(
            model, [float(time)], reward_name, initial_distribution, epsilon
        )[0]
    )


def cumulative_reward_curve(
    model: MarkovRewardModel | tuple[CTMC, np.ndarray],
    times: np.ndarray | list[float],
    reward_name: str | None = None,
    initial_distribution: np.ndarray | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> np.ndarray:
    """Expected accumulated reward for each time bound in ``times``.

    All bounds share one uniformization sweep: the scalar reward sequence
    ``rₖ = (π₀ Pᵏ)·ρ`` is generated once and every bound's tail-weighted sum
    ``(1/q) Σ_k P[N_{qt} > k] rₖ`` is assembled from it with numpy slices.
    """
    from repro.analysis import AnalysisSession, MeasureKind

    chain, rewards = _resolve(model, reward_name)
    session = AnalysisSession(epsilon=epsilon)
    index = session.request(
        chain,
        times,
        kind=MeasureKind.CUMULATIVE_REWARD,
        rewards=rewards,
        initial_distributions=initial_distribution,
    )
    return session.execute()[index].squeezed


def steady_state_reward(
    model: MarkovRewardModel | tuple[CTMC, np.ndarray],
    reward_name: str | None = None,
    initial_distribution: np.ndarray | None = None,
    *,
    artifacts=None,
) -> float:
    """Long-run expected reward rate (CSRL ``R=?[S]``).

    A thin one-request :class:`repro.analysis.AnalysisSession` wrapper over
    the ``STEADY_STATE`` kind with a reward observable; ``artifacts`` (a
    :class:`repro.service.ArtifactCache`) lets repeated calls share the
    chain's BSCC decomposition and stationary solves.
    """
    from repro.analysis import AnalysisSession, MeasureKind

    chain, rewards = _resolve(model, reward_name)
    session = AnalysisSession(artifacts=artifacts)
    index = session.request(
        chain,
        (),
        kind=MeasureKind.STEADY_STATE,
        rewards=rewards,
        initial_distributions=initial_distribution,
    )
    return float(session.execute()[index].squeezed[0])
