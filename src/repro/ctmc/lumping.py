"""Ordinary lumpability (strong bisimulation) for CTMCs.

Two states are strongly bisimilar if they carry the same atomic propositions
and have, for every equivalence class ``C``, the same cumulative rate into
``C``.  The coarsest such partition is computed by classical partition
refinement (a CTMC variant of Paige–Tarjan / Derisavi-style splitting, here
implemented with the simple "split by rate signature" iteration, which is
more than fast enough for the state spaces of this project).

Lumping serves two purposes in the reproduction:

* It is the minimization step that the original Arcade/CADP tool chain
  applies to composed I/O-IMCs (mentioned in the paper's conclusions).
* It gives tests a way to check that two differently-encoded CTMCs (e.g. the
  reactive-modules translation and the direct Arcade state-space generator)
  are equivalent: their quotients must be isomorphic and all measures must
  coincide.
* It backs the analysis planner's quotient substitution: regular bounded
  reachability (PR 2), and since PR 10 also the interval-until bundles
  (separate backward/forward quotients with lift/project glue) and the
  long-run measure groups (quotients seeded with target/safe/reward
  observables, solved through the same BSCC + linear-system machinery).
  Because the rate signatures computed here include the own-block column,
  exit rates are constant within a block, which is what makes the embedded
  DTMC, steady-state and reward quotients exact rather than approximate.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np
from scipy import sparse

from repro.ctmc.ctmc import CTMC, CTMCBuilder

#: Decimal places rate signatures are rounded to before comparison; shared by
#: the vectorized refinement and the reference loop so both split identically.
_RATE_DECIMALS = 10


def _first_seen_ids(keys: list) -> list[int]:
    """Map each key to a block id in first-seen order (the loop's numbering)."""
    ids: dict = {}
    out = [0] * len(keys)
    for index, key in enumerate(keys):
        block = ids.get(key)
        if block is None:
            block = len(ids)
            ids[key] = block
        out[index] = block
    return out


def _initial_partition(chain: CTMC, respect_initial: bool) -> list[int]:
    """Partition states by their label sets (and optionally initial mass).

    Built from the stacked label masks (one bool column per label, plus the
    rounded initial distribution when requested): states with equal rows are
    equivalent, and block ids are assigned in first-seen state order — the
    same numbering the original per-state loop produced.
    """
    columns: list[np.ndarray] = [
        chain.label_mask(name).astype(np.int8) for name in chain.label_names
    ]
    if respect_initial:
        columns.append(np.round(chain.initial_distribution, 12))
    if not columns:
        return [0] * chain.num_states
    stacked = np.ascontiguousarray(np.stack(columns, axis=1))
    row_bytes = stacked.view(np.uint8).reshape(chain.num_states, -1)
    return _first_seen_ids([row.tobytes() for row in row_bytes])


def lumping_partition(
    chain: CTMC,
    respect_initial: bool = False,
    max_iterations: int | None = None,
) -> list[int]:
    """Return the coarsest ordinary-lumpability partition of ``chain``.

    The result is a list mapping each state to its block index.  States in
    the same block agree on all labels and on the cumulative rate into every
    block.

    Each refinement round is vectorized: the per-state cumulative rates into
    the current blocks are one sparse mat–mat product ``R @ indicator`` (an
    ``(n, num_blocks)`` CSR matrix), and states are re-split by unique rows
    of that matrix — no per-state Python loop over transitions remains.  The
    resulting partition is identical to the classical per-state refinement
    (:func:`lumping_partition_reference`), which the tier-1 suite pins.

    Parameters
    ----------
    chain:
        The CTMC to partition.
    respect_initial:
        If true, states with different initial probability are kept in
        different blocks (needed when the initial distribution matters for
        the measure being preserved).
    max_iterations:
        Optional safety bound; the refinement always terminates after at
        most ``num_states`` iterations.
    """
    num_states = chain.num_states
    assignment = _initial_partition(chain, respect_initial)
    matrix = chain.rate_matrix.tocsr()
    limit = max_iterations if max_iterations is not None else num_states + 1

    for _ in range(limit):
        num_blocks = max(assignment) + 1 if assignment else 0
        indicator = sparse.csr_matrix(
            (
                np.ones(num_states),
                (np.arange(num_states), np.asarray(assignment, dtype=int)),
            ),
            shape=(num_states, num_blocks),
        )
        block_rates = sparse.csr_matrix(matrix @ indicator)
        block_rates.sort_indices()
        # Round like the reference loop so float-noise never splits a block;
        # entries rounding to zero are *kept* (a transition with a tiny rate
        # is still a transition in the reference signature).
        data = np.round(block_rates.data, _RATE_DECIMALS)
        indptr = block_rates.indptr
        indices = block_rates.indices
        keys = [
            (
                assignment[state],
                indices[indptr[state] : indptr[state + 1]].tobytes(),
                data[indptr[state] : indptr[state + 1]].tobytes(),
            )
            for state in range(num_states)
        ]
        new_assignment = _first_seen_ids(keys)
        if new_assignment == assignment:
            break
        assignment = new_assignment
    return assignment


def lumping_partition_reference(
    chain: CTMC,
    respect_initial: bool = False,
    max_iterations: int | None = None,
) -> list[int]:
    """The original per-state refinement loop, kept as the test oracle.

    Semantically identical to :func:`lumping_partition` but walks every
    state's CSR row in Python; the tier-1 suite pins the vectorized
    refinement against this implementation on a spread of chains.
    """
    blocks: dict[tuple, int] = {}
    assignment = [0] * chain.num_states
    initial = chain.initial_distribution
    for state in range(chain.num_states):
        key_parts: list = [tuple(sorted(chain.labels_of_state(state)))]
        if respect_initial:
            key_parts.append(round(float(initial[state]), 12))
        key = tuple(key_parts)
        if key not in blocks:
            blocks[key] = len(blocks)
        assignment[state] = blocks[key]

    matrix = chain.rate_matrix.tocsr()
    limit = max_iterations if max_iterations is not None else chain.num_states + 1
    for _ in range(limit):
        signatures: dict[tuple, int] = {}
        new_assignment = [0] * chain.num_states
        for state in range(chain.num_states):
            row = matrix.getrow(state)
            per_block: dict[int, float] = defaultdict(float)
            for target, rate in zip(row.indices, row.data):
                per_block[assignment[int(target)]] += float(rate)
            signature = (
                assignment[state],
                tuple(
                    sorted(
                        (block, round(rate, _RATE_DECIMALS))
                        for block, rate in per_block.items()
                    )
                ),
            )
            if signature not in signatures:
                signatures[signature] = len(signatures)
            new_assignment[state] = signatures[signature]
        if new_assignment == assignment:
            break
        assignment = new_assignment
    return assignment


def lump_ctmc(
    chain: CTMC,
    partition: list[int] | None = None,
    respect_initial: bool = True,
) -> tuple[CTMC, list[int]]:
    """Build the quotient CTMC of ``chain`` under ordinary lumpability.

    Returns the quotient chain and the state-to-block assignment.  The
    quotient preserves transient and steady-state probabilities of all
    labelled sets, hence all CSL measures over the chain's labels.
    """
    if partition is None:
        partition = lumping_partition(chain, respect_initial=respect_initial)

    num_blocks = max(partition) + 1 if partition else 0
    builder = CTMCBuilder()
    representatives: list[int] = [-1] * num_blocks
    for state, block in enumerate(partition):
        if representatives[block] < 0:
            representatives[block] = state
    for block in range(num_blocks):
        builder.add_state(chain.describe_state(representatives[block]))

    # Cumulative rates out of a representative state per target block: by
    # lumpability these are equal for every member of the block.
    matrix = chain.rate_matrix.tocsr()
    for block, representative in enumerate(representatives):
        row = matrix.getrow(representative)
        per_block: dict[int, float] = defaultdict(float)
        for target, rate in zip(row.indices, row.data):
            per_block[partition[int(target)]] += float(rate)
        for target_block, rate in per_block.items():
            if target_block != block:
                builder.add_transition(block, target_block, rate)

    # Labels: a block carries a label iff its representative does (all
    # members agree by construction of the initial partition).
    for name in chain.label_names:
        mask = chain.label_mask(name)
        for block, representative in enumerate(representatives):
            if mask[representative]:
                builder.add_label(name, block)

    # Initial distribution: sum the mass of each block.
    initial = np.zeros(num_blocks)
    chain_initial = chain.initial_distribution
    for state, block in enumerate(partition):
        initial[block] += chain_initial[state]

    return builder.build(initial), partition


def count_blocks(partition: list[int]) -> int:
    """Number of blocks in a partition (convenience for tests and reports)."""
    return len(set(partition))
