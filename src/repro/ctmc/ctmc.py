"""Labelled CTMCs and Markov reward models.

A CTMC is stored explicitly with a sparse rate matrix ``R`` where ``R[i, j]``
is the transition rate from state ``i`` to state ``j`` (``i != j``).  The
generator matrix ``Q = R - diag(exit_rates)`` is derived on demand.  States
carry a labelling with atomic propositions, which is what the CSL/CSRL model
checker consumes, and an optional human-readable description used in traces
and debugging output.

The classes here are intentionally independent of how the chain was obtained
(reactive modules, Arcade translation, I/O-IMC composition, or hand
construction), so every higher layer funnels into the same numerical code.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np
from scipy import sparse


class CTMCError(ValueError):
    """Raised when a CTMC is constructed or used inconsistently."""


def _normalise_distribution(
    values: Mapping[int, float] | Sequence[float] | np.ndarray,
    num_states: int,
) -> np.ndarray:
    """Return ``values`` as a dense probability vector of length ``num_states``."""
    if isinstance(values, Mapping):
        vector = np.zeros(num_states, dtype=float)
        for state, probability in values.items():
            if not 0 <= state < num_states:
                raise CTMCError(f"initial state index {state} out of range")
            vector[state] = probability
    else:
        vector = np.asarray(values, dtype=float)
        if vector.shape != (num_states,):
            raise CTMCError(
                f"initial distribution has shape {vector.shape}, expected ({num_states},)"
            )
    if np.any(vector < -1e-12):
        raise CTMCError("initial distribution has negative entries")
    total = float(vector.sum())
    if total <= 0:
        raise CTMCError("initial distribution sums to zero")
    if abs(total - 1.0) > 1e-9:
        vector = vector / total
    return np.clip(vector, 0.0, None)


def as_state_mask(chain: "CTMC", states: Iterable[int] | np.ndarray | str) -> np.ndarray:
    """Normalise a state set given as label name, index list or boolean mask.

    The canonical helper shared by the transient/reachability routines and
    the analysis-session request layer.
    """
    if isinstance(states, str):
        return chain.label_mask(states)
    array = np.asarray(list(states) if not isinstance(states, np.ndarray) else states)
    mask = np.zeros(chain.num_states, dtype=bool)
    if array.size == 0:
        return mask
    if array.dtype == bool:
        if array.shape != (chain.num_states,):
            raise CTMCError("boolean state mask has the wrong length")
        return array.copy()
    mask[array.astype(int)] = True
    return mask


@dataclass(frozen=True)
class RewardStructure:
    """A reward structure over a CTMC.

    Attributes
    ----------
    name:
        Identifier of the structure (e.g. ``"cost"``).
    state_rewards:
        Array of length ``num_states``; ``state_rewards[i]`` is the reward
        *rate* earned while residing in state ``i`` (unit: reward per time
        unit), as in Markov reward models / CSRL.
    transition_rewards:
        Optional sparse matrix of impulse rewards earned when a transition is
        taken.  May be ``None`` if the structure is purely rate based.
    """

    name: str
    state_rewards: np.ndarray
    transition_rewards: sparse.csr_matrix | None = None

    def __post_init__(self) -> None:
        rewards = np.asarray(self.state_rewards, dtype=float)
        object.__setattr__(self, "state_rewards", rewards)

    @property
    def num_states(self) -> int:
        return int(self.state_rewards.shape[0])

    def expected_rate(self, distribution: np.ndarray) -> float:
        """Expected reward rate under the given state distribution."""
        return float(distribution @ self.state_rewards)


class CTMC:
    """An explicit-state labelled continuous-time Markov chain.

    Parameters
    ----------
    rate_matrix:
        Square sparse (or dense) matrix of transition rates; the diagonal is
        ignored (self-loops carry no meaning in a CTMC and are dropped).
    initial_distribution:
        Either a mapping ``{state_index: probability}`` or a full vector.
    labels:
        Mapping from atomic-proposition name to the set (or boolean vector)
        of states satisfying it.
    state_descriptions:
        Optional sequence of per-state descriptions (dicts or strings) used
        for reporting; not interpreted by the numerical code.
    """

    def __init__(
        self,
        rate_matrix: sparse.spmatrix | np.ndarray,
        initial_distribution: Mapping[int, float] | Sequence[float] | np.ndarray,
        labels: Mapping[str, Iterable[int] | np.ndarray] | None = None,
        state_descriptions: Sequence[Any] | None = None,
    ) -> None:
        matrix = sparse.csr_matrix(rate_matrix, dtype=float)
        if matrix.shape[0] != matrix.shape[1]:
            raise CTMCError(f"rate matrix must be square, got shape {matrix.shape}")
        if matrix.nnz and matrix.data.min() < -1e-12:
            raise CTMCError("rate matrix has negative rates")
        matrix.setdiag(0.0)
        matrix.eliminate_zeros()
        self._rates = matrix
        self._num_states = matrix.shape[0]
        self._initial = _normalise_distribution(initial_distribution, self._num_states)
        self._labels: dict[str, np.ndarray] = {}
        for name, states in (labels or {}).items():
            self.add_label(name, states)
        if state_descriptions is not None and len(state_descriptions) != self._num_states:
            raise CTMCError(
                "state_descriptions length does not match the number of states"
            )
        self._state_descriptions = list(state_descriptions) if state_descriptions else None
        self._exit_rates = np.asarray(matrix.sum(axis=1)).ravel()
        # Caches of uniformized matrices (and their CSR transposes) keyed by
        # the uniformization rate; the rate matrix is immutable after
        # construction, so entries never go stale.  Callers receive copies
        # (see uniformized_matrix / uniformized_transpose).
        self._uniformized_cache: dict[float, sparse.csr_matrix] = {}
        self._uniformized_transpose_cache: dict[float, sparse.csr_matrix] = {}
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of states."""
        return self._num_states

    @property
    def num_transitions(self) -> int:
        """Number of (non-zero, off-diagonal) transitions."""
        return int(self._rates.nnz)

    @property
    def rate_matrix(self) -> sparse.csr_matrix:
        """The sparse matrix of transition rates (diagonal is zero)."""
        return self._rates

    @property
    def exit_rates(self) -> np.ndarray:
        """Vector of total exit rates per state."""
        return self._exit_rates

    @property
    def max_exit_rate(self) -> float:
        """The largest exit rate; used as the uniformization constant."""
        if self._num_states == 0:
            return 0.0
        return float(self._exit_rates.max())

    @property
    def fingerprint(self) -> str:
        """A stable content hash of the chain's *dynamics* (the rate matrix).

        Two chains with bit-identical sparse rate matrices share a
        fingerprint, regardless of object identity, labels or initial
        distribution — exactly the equivalence under which uniformization
        sweeps, absorbing transforms and lumping quotients are reusable.
        (Initial distributions are batch inputs of a sweep and labels are
        resolved to masks before any cached artifact is built, so neither
        belongs in the key.)  Computed lazily and cached: the rate matrix is
        immutable after construction.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(np.int64(self._num_states).tobytes())
            digest.update(self._rates.indptr.tobytes())
            digest.update(self._rates.indices.tobytes())
            digest.update(self._rates.data.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @property
    def initial_distribution(self) -> np.ndarray:
        """The initial probability distribution over states."""
        return self._initial.copy()

    @property
    def initial_state(self) -> int:
        """The most likely initial state (exact if the initial distribution is a point mass)."""
        return int(np.argmax(self._initial))

    @property
    def label_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._labels))

    @property
    def state_descriptions(self) -> list[Any] | None:
        return self._state_descriptions

    def describe_state(self, state: int) -> Any:
        """Return the stored description for ``state`` (or the index itself)."""
        if self._state_descriptions is None:
            return state
        return self._state_descriptions[state]

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------
    def add_label(self, name: str, states: Iterable[int] | np.ndarray) -> None:
        """Attach (or replace) the labelling for atomic proposition ``name``."""
        mask = np.zeros(self._num_states, dtype=bool)
        states_array = np.asarray(list(states) if not isinstance(states, np.ndarray) else states)
        if states_array.dtype == bool:
            if states_array.shape != (self._num_states,):
                raise CTMCError(
                    f"label {name!r}: boolean mask has wrong shape {states_array.shape}"
                )
            mask = states_array.copy()
        else:
            indices = states_array.astype(int)
            if indices.size and (indices.min() < 0 or indices.max() >= self._num_states):
                raise CTMCError(f"label {name!r}: state index out of range")
            mask[indices] = True
        self._labels[name] = mask

    def has_label(self, name: str) -> bool:
        return name in self._labels

    def label_mask(self, name: str) -> np.ndarray:
        """Boolean vector of states labelled with ``name``."""
        try:
            return self._labels[name].copy()
        except KeyError:
            raise CTMCError(
                f"unknown label {name!r}; known labels: {', '.join(self.label_names) or '(none)'}"
            ) from None

    def label_states(self, name: str) -> np.ndarray:
        """Indices of states labelled with ``name``."""
        return np.flatnonzero(self.label_mask(name))

    def labels_of_state(self, state: int) -> frozenset[str]:
        """The set of atomic propositions holding in ``state``."""
        return frozenset(name for name, mask in self._labels.items() if mask[state])

    # ------------------------------------------------------------------
    # derived matrices
    # ------------------------------------------------------------------
    def generator_matrix(self) -> sparse.csr_matrix:
        """The infinitesimal generator ``Q`` (rows sum to zero)."""
        generator = self._rates.tolil(copy=True)
        generator.setdiag(-self._exit_rates)
        return generator.tocsr()

    def uniformized_matrix(self, rate: float | None = None) -> tuple[sparse.csr_matrix, float]:
        """Return the uniformized probability matrix ``P`` and the rate used.

        ``P = I + Q / q`` for a uniformization rate ``q >= max exit rate``.
        The matrix is cached per rate (the rate matrix is immutable), and a
        fresh copy is returned on every call so that callers may mutate the
        result without corrupting later analyses.
        """
        q = self.max_exit_rate if rate is None else float(rate)
        if q <= 0.0:
            # Absorbing-only chain: the uniformized matrix is the identity.
            return sparse.identity(self._num_states, format="csr"), 1.0
        if q < self.max_exit_rate - 1e-12:
            raise CTMCError(
                f"uniformization rate {q} is smaller than the maximal exit rate "
                f"{self.max_exit_rate}"
            )
        return self._uniformized(q).copy(), q

    def _uniformized(self, q: float) -> sparse.csr_matrix:
        """The cached uniformized matrix for a validated rate ``q`` (no copy)."""
        cached = self._uniformized_cache.get(q)
        if cached is None:
            probabilities = sparse.csr_matrix(self._rates / q)
            diagonal = 1.0 - self._exit_rates / q
            cached = sparse.csr_matrix(probabilities + sparse.diags(diagonal))
            self._uniformized_cache[q] = cached
        return cached

    def uniformized_transpose(self, rate: float | None = None) -> tuple[sparse.csr_matrix, float]:
        """Return ``Pᵀ`` of :meth:`uniformized_matrix` in CSR form, and the rate.

        ``Pᵀ`` is the forward-sweep operator of uniformization
        (``π_{k+1} = π_k P`` computed as ``Pᵀ πₖ``); converting ``P.T`` back
        to CSR costs a full matrix pass, so the result is cached per rate
        alongside the matrix itself.  As with :meth:`uniformized_matrix`, a
        fresh copy is returned on every call.
        """
        q = self.max_exit_rate if rate is None else float(rate)
        if q <= 0.0:
            return sparse.identity(self._num_states, format="csr"), 1.0
        if q < self.max_exit_rate - 1e-12:
            raise CTMCError(
                f"uniformization rate {q} is smaller than the maximal exit rate "
                f"{self.max_exit_rate}"
            )
        cached = self._uniformized_transpose_cache.get(q)
        if cached is None:
            cached = self._uniformized(q).T.tocsr()
            self._uniformized_transpose_cache[q] = cached
        return cached.copy(), q

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def with_initial_distribution(
        self, initial: Mapping[int, float] | Sequence[float] | np.ndarray
    ) -> "CTMC":
        """Return a copy of the chain with a different initial distribution."""
        return CTMC(
            self._rates,
            initial,
            labels={name: mask.copy() for name, mask in self._labels.items()},
            state_descriptions=self._state_descriptions,
        )

    def make_absorbing(self, states: Iterable[int] | np.ndarray) -> "CTMC":
        """Return a copy where all outgoing transitions of ``states`` are removed.

        This is the standard transformation used for time-bounded
        reachability: probability mass that enters an absorbing target state
        stays there.  The rows are cleared with vectorized CSR index
        arithmetic (no per-state Python loop).
        """
        mask = np.zeros(self._num_states, dtype=bool)
        states_array = np.asarray(
            list(states) if not isinstance(states, np.ndarray) else states
        )
        if states_array.dtype == bool:
            mask = states_array.copy()
        elif states_array.size:
            mask[states_array.astype(int)] = True
        row_lengths = np.diff(self._rates.indptr)
        keep = np.repeat(~mask, row_lengths)
        indptr = np.concatenate(([0], np.cumsum(np.where(mask, 0, row_lengths))))
        cleared = sparse.csr_matrix(
            (self._rates.data[keep], self._rates.indices[keep], indptr),
            shape=self._rates.shape,
        )
        return CTMC(
            cleared,
            self._initial,
            labels={name: label.copy() for name, label in self._labels.items()},
            state_descriptions=self._state_descriptions,
        )

    def restrict_labels(self, **labels: Iterable[int] | np.ndarray) -> "CTMC":
        """Return a copy with additional labels attached."""
        copy = CTMC(
            self._rates,
            self._initial,
            labels={name: mask.copy() for name, mask in self._labels.items()},
            state_descriptions=self._state_descriptions,
        )
        for name, states in labels.items():
            copy.add_label(name, states)
        return copy

    def successors(self, state: int) -> list[tuple[int, float]]:
        """List of ``(successor, rate)`` pairs for ``state``."""
        row = self._rates.getrow(state)
        return [(int(j), float(r)) for j, r in zip(row.indices, row.data)]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CTMC(states={self._num_states}, transitions={self.num_transitions}, "
            f"labels={list(self.label_names)})"
        )


class MarkovRewardModel:
    """A CTMC together with one or more named reward structures.

    This is the model class over which CSRL reward formulas are evaluated.
    """

    def __init__(
        self,
        chain: CTMC,
        rewards: Mapping[str, RewardStructure] | Iterable[RewardStructure] | RewardStructure,
    ) -> None:
        self._chain = chain
        structures: dict[str, RewardStructure] = {}
        if isinstance(rewards, RewardStructure):
            structures[rewards.name] = rewards
        elif isinstance(rewards, Mapping):
            structures.update(rewards)
        else:
            for structure in rewards:
                structures[structure.name] = structure
        for name, structure in structures.items():
            if structure.num_states != chain.num_states:
                raise CTMCError(
                    f"reward structure {name!r} covers {structure.num_states} states "
                    f"but the chain has {chain.num_states}"
                )
        if not structures:
            raise CTMCError("a Markov reward model needs at least one reward structure")
        self._rewards = structures

    @property
    def chain(self) -> CTMC:
        return self._chain

    @property
    def reward_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._rewards))

    def reward_structure(self, name: str | None = None) -> RewardStructure:
        """Return the named reward structure (or the only one if unnamed)."""
        if name is None:
            if len(self._rewards) == 1:
                return next(iter(self._rewards.values()))
            raise CTMCError(
                f"model has several reward structures ({', '.join(self.reward_names)}); "
                "specify one by name"
            )
        try:
            return self._rewards[name]
        except KeyError:
            raise CTMCError(
                f"unknown reward structure {name!r}; known: {', '.join(self.reward_names)}"
            ) from None

    def with_chain(self, chain: CTMC) -> "MarkovRewardModel":
        """Return a copy of the model over a different (same-size) chain."""
        return MarkovRewardModel(chain, dict(self._rewards))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"MarkovRewardModel(chain={self._chain!r}, rewards={list(self.reward_names)})"


@dataclass
class CTMCBuilder:
    """Incremental builder used by state-space generators.

    The builder collects transitions as COO triplets and labels as index
    lists, then produces a :class:`CTMC` in one go.  This avoids repeatedly
    reallocating sparse matrices during exploration.
    """

    num_states: int = 0
    _rows: list[int] = field(default_factory=list)
    _cols: list[int] = field(default_factory=list)
    _rates: list[float] = field(default_factory=list)
    _labels: dict[str, list[int]] = field(default_factory=dict)
    _descriptions: list[Any] = field(default_factory=list)

    def add_state(self, description: Any = None) -> int:
        """Add a state and return its index."""
        index = self.num_states
        self.num_states += 1
        self._descriptions.append(description)
        return index

    def add_transition(self, source: int, target: int, rate: float) -> None:
        """Add a transition; parallel transitions are summed."""
        if rate < 0:
            raise CTMCError(f"negative rate {rate} for transition {source} -> {target}")
        if rate == 0.0 or source == target:
            return
        self._rows.append(source)
        self._cols.append(target)
        self._rates.append(float(rate))

    def add_label(self, name: str, state: int) -> None:
        self._labels.setdefault(name, []).append(state)

    def build(
        self, initial: Mapping[int, float] | Sequence[float] | np.ndarray
    ) -> CTMC:
        matrix = sparse.coo_matrix(
            (self._rates, (self._rows, self._cols)),
            shape=(self.num_states, self.num_states),
        ).tocsr()
        matrix.sum_duplicates()
        return CTMC(
            matrix,
            initial,
            labels={name: states for name, states in self._labels.items()},
            state_descriptions=self._descriptions if any(
                description is not None for description in self._descriptions
            ) else None,
        )
