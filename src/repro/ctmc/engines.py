"""Pluggable numeric engines for the uniformization and linear-solve kernels.

Every measure in the paper's pipeline bottoms out in two inner loops — the
vector-power walk ``v ← Pᵀ·v`` of :mod:`repro.ctmc.uniformization` and the
restricted linear solves of :mod:`repro.ctmc.linsolve` /
:mod:`repro.ctmc.steady_state`.  Historically both were hard-wired to
generic scipy CSR dispatch, which pays Python-level overhead per step even
on chains with a few dozen states (the lumping quotients of the case-study
lines).  This module puts those loops behind a small :class:`Engine`
abstraction with three interchangeable backends:

``SparseEngine``
    The legacy CSR path, extracted verbatim: ``operator @ block`` and
    ``splu`` factorizations.  Bit-for-bit identical to the pre-engine
    numerics in float64.

``DenseEngine``
    For chains below a size/density threshold the uniformized operator is
    densified **once** (``toarray()``, cached in the
    :class:`repro.service.cache.ArtifactCache` under the byte-weighted
    ``dense_operator`` kind) and the power walk runs as BLAS GEMMs on a
    preallocated ping-pong buffer pair.  Small restricted linear systems
    use a dense LAPACK LU (:class:`DenseFactorization`) instead of
    ``splu``.  Measured on the Fig. 8 Line 2 lumping quotient (79 states)
    the GEMM walk is several times faster than CSR dispatch.

``NumbaEngine``
    An optional jitted CSR walk (guarded import; auto-skipped when numba
    is absent).  It is never chosen by the automatic selector — the JIT
    warm-up would eat the win on short-lived processes — but can be forced
    with ``engine="numba"`` where numba is installed and sweeps are long.

Backends are selected per ``(chain fingerprint, dtype)`` by
:class:`EngineSelector`; the analysis planner consults it when it resolves
``engine="auto"`` and the artifact cache persists both the decision (kind
``engine``) and the densified operator (kind ``dense_operator``) alongside
the CSR operators.

**dtype contract.**  The sweep supports a float32 lane: distributions walk
in float32 with a per-step mass renormalization (valid because forward
operators are column-stochastic), while Poisson-window folds and reward
accumulators stay float64.  Results are within ``1e-6`` of the float64
lane (measured worst case across the differential-test population:
``~2e-7``); float64 remains bit-exact with the pre-engine code.  Interval
reachability and all long-run solves always run in float64.

**Oversubscription guard.**  Dense GEMMs tempt BLAS into spawning its own
thread pool under every worker thread of the scenario service.
:func:`blas_thread_budget` / :func:`pin_blas_threads` compute and pin a
per-shard BLAS thread budget via the usual environment knobs; the sharded
service applies them around worker spawn, and
:func:`default_worker_count` bounds the in-process executor pool.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Any, Callable

import numpy as np
from scipy import linalg as dense_linalg
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.ctmc.ctmc import CTMC, CTMCError

__all__ = [
    "DENSE_DENSITY_THRESHOLD",
    "DENSE_RELAXED_LIMIT",
    "DENSE_SOLVE_LIMIT",
    "DENSE_STATE_LIMIT",
    "ENGINE_MODES",
    "DenseEngine",
    "DenseFactorization",
    "Engine",
    "EngineSelector",
    "NumbaEngine",
    "SparseEngine",
    "SparseFactorization",
    "blas_thread_budget",
    "default_dtype",
    "default_engine_mode",
    "default_worker_count",
    "have_numba",
    "normalise_dtype",
    "normalise_engine_mode",
    "pin_blas_threads",
    "set_default_dtype",
    "set_default_engine_mode",
]

#: Valid values for every ``engine=`` knob in the stack.
ENGINE_MODES = ("auto", "sparse", "dense", "numba")

#: Below this many states the dense GEMM walk wins regardless of density
#: (measured 2–6x over CSR dispatch on CI-class hardware).
DENSE_STATE_LIMIT = 256

#: Up to this many states the dense walk still wins *if* the operator is
#: dense enough (measured ~4x at density 0.3, break-even near 0.1).
DENSE_RELAXED_LIMIT = 768

#: Density threshold (nnz / n²) for the relaxed size band.
DENSE_DENSITY_THRESHOLD = 0.15

#: Never densify an operator beyond this many bytes, whatever the
#: heuristic says — the cached array would crowd out everything else.
DENSE_MEMORY_LIMIT_BYTES = 64 << 20

#: Restricted linear systems at or below this order use the dense LAPACK
#: LU instead of ``splu`` when the solver runs in ``auto`` mode.
DENSE_SOLVE_LIMIT = 128

#: Environment knobs honoured by the common BLAS implementations.
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)

_SUPPORTED_DTYPES = {"float32": np.float32, "float64": np.float64}


# ---------------------------------------------------------------------------
# knob normalisation and process-wide defaults
# ---------------------------------------------------------------------------
def normalise_engine_mode(mode: Any) -> str:
    """Validate an ``engine=`` knob, returning its canonical string form."""
    name = str(mode).lower()
    if name not in ENGINE_MODES:
        raise CTMCError(
            f"unknown engine mode {mode!r}; expected one of {ENGINE_MODES}"
        )
    if name == "numba" and not have_numba():
        raise CTMCError("engine='numba' requested but numba is not installed")
    return name


def normalise_dtype(dtype: Any) -> np.dtype:
    """Validate a ``dtype=`` knob (float32/float64 only)."""
    resolved = np.dtype(np.float64 if dtype is None else dtype)
    if resolved.name not in _SUPPORTED_DTYPES:
        raise CTMCError(
            f"unsupported sweep dtype {dtype!r}; expected float32 or float64"
        )
    return resolved


_DEFAULTS = {"mode": "auto", "dtype": np.dtype(np.float64)}


def default_engine_mode() -> str:
    """The process-wide engine mode used when no knob is passed."""
    return _DEFAULTS["mode"]


def set_default_engine_mode(mode: Any) -> str:
    """Set the process-wide engine mode (the CLI's ``--engine`` flag)."""
    _DEFAULTS["mode"] = normalise_engine_mode(mode)
    return _DEFAULTS["mode"]


def default_dtype() -> np.dtype:
    """The process-wide sweep dtype used when no knob is passed."""
    return _DEFAULTS["dtype"]


def set_default_dtype(dtype: Any) -> np.dtype:
    """Set the process-wide sweep dtype (the CLI's ``--float32`` flag)."""
    _DEFAULTS["dtype"] = normalise_dtype(dtype)
    return _DEFAULTS["dtype"]


def have_numba() -> bool:
    """Whether the optional numba backend can be imported at all."""
    return importlib.util.find_spec("numba") is not None


# ---------------------------------------------------------------------------
# factorizations (shared by the engines and the long-run SolverEngine)
# ---------------------------------------------------------------------------
class SparseFactorization:
    """An LU factorization of a sparse system via ``splu`` (the legacy path)."""

    __slots__ = ("_lu", "shape", "nnz")

    def __init__(self, matrix) -> None:
        csc = sparse.csc_matrix(matrix)
        if csc.shape[0] != csc.shape[1]:
            raise CTMCError("only square systems can be factorized")
        self.shape = csc.shape
        self.nnz = int(csc.nnz)
        self._lu = sparse_linalg.splu(csc)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return self._lu.solve(np.asarray(rhs, dtype=float))


class DenseFactorization:
    """A dense LAPACK LU for small restricted systems.

    Below :data:`DENSE_SOLVE_LIMIT` states, ``lu_factor``/``lu_solve`` beat
    ``splu``'s per-call overhead; the ``solve`` signature matches
    :class:`SparseFactorization` so :class:`repro.ctmc.linsolve.SolverEngine`
    can swap them freely (deviation vs. ``splu`` is at rounding level,
    ~1e-14 on the case-study systems).
    """

    __slots__ = ("_lu_piv", "shape", "nnz")

    def __init__(self, matrix) -> None:
        if sparse.issparse(matrix):
            self.nnz = int(matrix.nnz)
            dense = matrix.toarray()
        else:
            dense = np.asarray(matrix, dtype=float)
            self.nnz = int(np.count_nonzero(dense))
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise CTMCError("only square systems can be factorized")
        self.shape = dense.shape
        self._lu_piv = dense_linalg.lu_factor(dense)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return dense_linalg.lu_solve(self._lu_piv, np.asarray(rhs, dtype=float))


# ---------------------------------------------------------------------------
# the engines
# ---------------------------------------------------------------------------
class Engine:
    """One numeric backend bound to one operator (and one dtype).

    Subclasses provide the two kernels the stack needs — the power-walk
    step :meth:`apply_operator` and the restricted-system
    :meth:`factorize`/:meth:`solve` pair — plus the accounting hooks that
    keep op counts backend-invariant: :attr:`equivalent_nnz` is the number
    of equivalent sparse multiply-adds one operator application performs
    *per column*, always reported as the **source CSR** non-zero count so
    ``sparse_flops`` gates keep meaning the same thing whether the step ran
    as a CSR matvec or a dense GEMM.
    """

    #: backend identifier ("sparse" / "dense" / "numba")
    name: str = "abstract"

    def __init__(self, dtype: Any = np.float64, equivalent_nnz: int = 0) -> None:
        self.dtype = normalise_dtype(dtype)
        self.equivalent_nnz = int(equivalent_nnz)

    # -- power walk -----------------------------------------------------
    def apply_operator(
        self, block: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """One ``operator @ block`` step; may write into ``out`` and return it."""
        raise NotImplementedError

    def new_scratch(self, block: np.ndarray) -> np.ndarray | None:
        """A ping-pong partner buffer for :meth:`apply_operator`, or ``None``
        when the backend allocates its own result (the CSR path)."""
        return None

    def power_block(
        self,
        vectors: np.ndarray,
        out_block: np.ndarray,
        scratch: np.ndarray | None,
        advance_final: bool,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Record one block of successive operator powers of ``vectors``.

        ``out_block[i]`` receives ``operatorⁱ @ vectors`` for each of the
        block's ``len(out_block)`` slots; with ``advance_final`` the walk
        takes one extra step so the returned ``vectors`` already holds the
        first power of the *next* block.  Returns the updated ``(vectors,
        scratch)`` ping-pong pair.  Backends whose kernels can write into
        arbitrary buffers override this to stream powers straight into the
        block slots, skipping the per-step copy this generic walk performs.
        """
        steps = out_block.shape[0]
        for offset in range(steps):
            out_block[offset] = vectors
            if offset < steps - 1 or advance_final:
                advanced = self.apply_operator(vectors, out=scratch)
                if advanced is scratch and scratch is not None:
                    scratch = vectors
                vectors = advanced
        return vectors, scratch

    # -- restricted solves ----------------------------------------------
    def factorize(self, matrix) -> SparseFactorization | DenseFactorization:
        """Factorize a (sub)system for repeated :meth:`solve` calls."""
        raise NotImplementedError

    def solve(self, factorization, rhs: np.ndarray) -> np.ndarray:
        return factorization.solve(rhs)


class SparseEngine(Engine):
    """The legacy CSR backend — scipy dispatch, ``splu`` factorizations."""

    name = "sparse"

    def __init__(self, operator, dtype: Any = np.float64) -> None:
        nnz = (
            int(operator.nnz)
            if sparse.issparse(operator)
            else int(np.count_nonzero(operator))
        )
        super().__init__(dtype, nnz)
        if sparse.issparse(operator) and operator.dtype != self.dtype:
            operator = operator.astype(self.dtype)
        self._operator = operator

    def apply_operator(
        self, block: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        return self._operator @ block

    def factorize(self, matrix) -> SparseFactorization:
        return SparseFactorization(matrix)


class DenseEngine(Engine):
    """BLAS GEMM walk over a one-time densified operator.

    ``dense`` is the densified forward operator (C-contiguous, already cast
    to the lane dtype); ``equivalent_nnz`` is the **source CSR** non-zero
    count so op accounting stays comparable with the sparse backend.
    """

    name = "dense"

    def __init__(self, dense: np.ndarray, dtype: Any, equivalent_nnz: int) -> None:
        super().__init__(dtype, equivalent_nnz)
        self._dense = np.ascontiguousarray(dense, dtype=self.dtype)

    @classmethod
    def from_operator(cls, operator, dtype: Any = np.float64) -> "DenseEngine":
        dense = operator.toarray() if sparse.issparse(operator) else np.asarray(operator)
        nnz = (
            int(operator.nnz)
            if sparse.issparse(operator)
            else int(np.count_nonzero(dense))
        )
        return cls(dense, dtype, nnz)

    def apply_operator(
        self, block: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        if out is None:
            return self._dense @ block
        np.matmul(self._dense, block, out=out)
        return out

    def new_scratch(self, block: np.ndarray) -> np.ndarray:
        return np.empty_like(block)

    def power_block(
        self,
        vectors: np.ndarray,
        out_block: np.ndarray,
        scratch: np.ndarray | None,
        advance_final: bool,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        # GEMM each power directly into its block slot: no ping-pong, no
        # per-step store of the previous power.  ``out_block[i]`` slices of a
        # C-ordered block are themselves contiguous, so BLAS takes them as-is.
        matrix = self._dense
        previous = out_block[0]
        previous[...] = vectors
        for offset in range(1, out_block.shape[0]):
            current = out_block[offset]
            np.matmul(matrix, previous, out=current)
            previous = current
        if advance_final:
            np.matmul(matrix, previous, out=vectors)
        return vectors, scratch

    def factorize(self, matrix) -> DenseFactorization:
        return DenseFactorization(matrix)


class NumbaEngine(Engine):
    """Jitted CSR walk (optional; requires numba).

    Never selected automatically: the first call pays JIT compilation,
    which only amortizes on long-lived processes with very long sweeps.
    """

    name = "numba"

    def __init__(self, operator, dtype: Any = np.float64) -> None:
        if not have_numba():
            raise CTMCError("NumbaEngine requires numba, which is not installed")
        csr = sparse.csr_matrix(operator)
        super().__init__(dtype, int(csr.nnz))
        self._data = csr.data.astype(self.dtype)
        self._indices = csr.indices.astype(np.int64)
        self._indptr = csr.indptr.astype(np.int64)
        self._shape = csr.shape
        self._kernel = _numba_csr_kernel()

    def apply_operator(
        self, block: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        if out is None:
            out = np.empty_like(block)
        self._kernel(self._data, self._indices, self._indptr, block, out)
        return out

    def new_scratch(self, block: np.ndarray) -> np.ndarray:
        return np.empty_like(block)

    def factorize(self, matrix) -> SparseFactorization:
        return SparseFactorization(matrix)


_NUMBA_KERNEL: Callable | None = None


def _numba_csr_kernel() -> Callable:
    """Compile (once per process) the jitted CSR block-apply kernel."""
    global _NUMBA_KERNEL
    if _NUMBA_KERNEL is None:
        import numba

        @numba.njit(parallel=True, fastmath=False, cache=False)
        def csr_apply(data, indices, indptr, block, out):  # pragma: no cover
            rows = indptr.shape[0] - 1
            columns = block.shape[1]
            for row in numba.prange(rows):
                for column in range(columns):
                    accumulator = 0.0
                    for pointer in range(indptr[row], indptr[row + 1]):
                        accumulator += data[pointer] * block[indices[pointer], column]
                    out[row, column] = accumulator

        _NUMBA_KERNEL = csr_apply
    return _NUMBA_KERNEL


# ---------------------------------------------------------------------------
# selection
# ---------------------------------------------------------------------------
class EngineSelector:
    """Resolve ``engine="auto"`` into a concrete backend per chain/dtype.

    The heuristic was calibrated by timing the uniformization walk across
    synthetic operators on CI-class hardware: dense wins outright below
    :data:`DENSE_STATE_LIMIT` states, keeps winning up to
    :data:`DENSE_RELAXED_LIMIT` states when the operator density is at
    least :data:`DENSE_DENSITY_THRESHOLD`, and loses badly beyond (the
    full 2560-state Line 2 chain is ~70x faster sparse).  ``auto`` never
    picks numba — its JIT warm-up is not amortized on the service's
    mixed portfolios.

    With an :class:`repro.service.cache.ArtifactCache` attached, both the
    per-``(chain fingerprint, dtype)`` decision (kind ``engine``) and the
    densified operator (kind ``dense_operator``, byte-weighted) persist
    across sessions and flushes.
    """

    def __init__(
        self,
        artifacts: Any = None,
        *,
        dense_state_limit: int = DENSE_STATE_LIMIT,
        dense_relaxed_limit: int = DENSE_RELAXED_LIMIT,
        dense_density_threshold: float = DENSE_DENSITY_THRESHOLD,
    ) -> None:
        self.artifacts = artifacts
        self.dense_state_limit = int(dense_state_limit)
        self.dense_relaxed_limit = int(dense_relaxed_limit)
        self.dense_density_threshold = float(dense_density_threshold)

    # -- the heuristic ---------------------------------------------------
    def choose(self, num_states: int, nnz: int, dtype: Any = np.float64) -> str:
        """Backend name for an operator of the given order and fill."""
        num_states = int(num_states)
        itemsize = normalise_dtype(dtype).itemsize
        if num_states * num_states * itemsize > DENSE_MEMORY_LIMIT_BYTES:
            return "sparse"
        if num_states <= self.dense_state_limit:
            return "dense"
        density = nnz / max(1, num_states * num_states)
        if (
            num_states <= self.dense_relaxed_limit
            and density >= self.dense_density_threshold
        ):
            return "dense"
        return "sparse"

    def resolve(
        self, chain: CTMC | None, mode: str, dtype: Any, nnz: int | None = None
    ) -> str:
        """Concrete backend for ``mode``; persists ``auto`` decisions."""
        mode = normalise_engine_mode(mode)
        if mode != "auto":
            return mode
        if chain is None:
            raise CTMCError("auto engine selection needs a chain to inspect")
        dtype = normalise_dtype(dtype)
        estimated = (
            int(nnz)
            if nnz is not None
            # forward operator nnz: off-diagonal rates + the uniformization
            # self-loop on (almost) every diagonal entry
            else int(chain.rate_matrix.nnz) + chain.num_states
        )
        decide = lambda: self.choose(chain.num_states, estimated, dtype)
        if self.artifacts is not None:
            return self.artifacts.engine_choice(chain, dtype.name, decide)
        return decide()

    # -- engine construction ---------------------------------------------
    def engine_for(
        self,
        chain: CTMC | None,
        operator,
        rate: float,
        *,
        mode: str = "auto",
        dtype: Any = np.float64,
        backward: bool = False,
    ) -> Engine:
        """Build (or fetch from the artifact cache) the backend for one sweep.

        ``backward=True`` marks the operator as the *non-transposed*
        uniformized matrix ``P`` (the interval-until value sweep) rather
        than the forward ``Pᵀ``; both share a ``(fingerprint, rate, dtype)``
        cache neighbourhood, so the flag keys the densified backward
        operator separately to keep the two from shadowing each other.
        """
        dtype = normalise_dtype(dtype)
        nnz = int(operator.nnz) if sparse.issparse(operator) else None
        resolved = self.resolve(chain, mode, dtype, nnz=nnz) if mode == "auto" else (
            normalise_engine_mode(mode)
        )
        if resolved == "dense":
            return self._dense_engine(chain, operator, rate, dtype, backward)
        if resolved == "numba":
            return NumbaEngine(operator, dtype)
        return self._sparse_engine(chain, operator, rate, dtype)

    def _dense_engine(self, chain, operator, rate, dtype, backward=False) -> DenseEngine:
        nnz = (
            int(operator.nnz)
            if sparse.issparse(operator)
            else int(np.count_nonzero(operator))
        )
        if self.artifacts is not None and chain is not None:
            dense = self.artifacts.dense_operator(
                chain,
                float(rate),
                dtype.name,
                lambda: np.ascontiguousarray(
                    operator.toarray()
                    if sparse.issparse(operator)
                    else np.asarray(operator),
                    dtype=dtype,
                ),
                backward=backward,
            )
        else:
            dense = (
                operator.toarray() if sparse.issparse(operator) else np.asarray(operator)
            )
        return DenseEngine(dense, dtype, nnz)

    def _sparse_engine(self, chain, operator, rate, dtype) -> SparseEngine:
        if (
            dtype == np.float32
            and self.artifacts is not None
            and chain is not None
            and sparse.issparse(operator)
        ):
            operator = self.artifacts.get_or_create(
                "operator",
                (chain.fingerprint, float(rate), dtype.name),
                lambda: operator.astype(np.float32),
            )
        return SparseEngine(operator, dtype)


# ---------------------------------------------------------------------------
# BLAS / thread-pool oversubscription guard
# ---------------------------------------------------------------------------
def blas_thread_budget(num_shards: int = 1) -> int:
    """BLAS threads each of ``num_shards`` processes may use without
    oversubscribing the machine."""
    return max(1, (os.cpu_count() or 1) // max(1, int(num_shards)))


def pin_blas_threads(count: int) -> dict[str, str | None]:
    """Pin the BLAS thread count via environment, returning prior values.

    Must run *before* the processes (or the numpy import) that should honour
    it — BLAS pools read these variables once at load time, which is why the
    sharded service sets them around ``process.start()`` so spawned workers
    inherit the pinned environment.
    """
    previous: dict[str, str | None] = {}
    for variable in BLAS_ENV_VARS:
        previous[variable] = os.environ.get(variable)
        os.environ[variable] = str(max(1, int(count)))
    return previous


def restore_blas_threads(previous: dict[str, str | None]) -> None:
    """Undo :func:`pin_blas_threads` in the calling process."""
    for variable, value in previous.items():
        if value is None:
            os.environ.pop(variable, None)
        else:
            os.environ[variable] = value


def default_worker_count(requested: int | None = None) -> int:
    """Bounded default for service worker pools.

    ``ThreadPoolExecutor``'s own default (``cpu+4``, up to 32) multiplies
    badly with BLAS pools once the dense backend is in play; the service
    caps at a small constant instead unless the caller asked for more.
    """
    if requested is not None:
        return max(1, int(requested))
    return min(8, (os.cpu_count() or 1) + 2)
