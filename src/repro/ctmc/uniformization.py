"""Single-pass uniformization engine for time-grid measures.

Every figure of the paper is a *curve*: survivability, reliability or cost
evaluated on a 46–101-point time grid.  Evaluating each grid point
independently restarts the uniformization recursion ``π₀·Pᵏ`` from ``k = 0``,
costing ``Σᵢ Rᵢ`` sparse matrix–vector products for right truncation points
``Rᵢ``.  The engine in this module walks the vector-power sequence
``π₀·Pᵏ`` exactly **once** per chain and folds all requested time points
into per-time accumulators during that single sweep, costing ``max_i Rᵢ``
products instead — a roughly ``points/2``-fold reduction on fine grids.

The sweep is *batched* along two further axes:

* **initial distributions** — ``start`` may be a ``(num_initials,
  num_states)`` block; the whole block is propagated through one sparse
  mat–mat product per step, so per-disaster curves on the same chain share
  a single matrix traversal (see ROADMAP: multi-initial-distribution
  batching), and
* **reward vectors** — ``rewards`` may be a ``(num_states, num_rewards)``
  matrix; every column's scalar sequence ``(π₀ Pᵏ)·ρⱼ`` is folded in during
  the same sweep.  Time-bounded reachability rides on this axis too: the
  probability of sitting in an (absorbing) target set at time ``t`` is the
  instantaneous "reward" of the target-indicator vector.

Three measures ride on the same sweep:

* transient distributions
  ``π(tᵢ) = Σ_k wᵢ(k) · (π₀ Pᵏ)`` — the Poisson mixture with Fox–Glynn
  weights ``wᵢ`` for rate ``q·tᵢ``,
* instantaneous rewards
  ``Σ_k wᵢ(k) · (π₀ Pᵏ)·ρ``,
* cumulative rewards
  ``(1/q) Σ_k P[N_{q tᵢ} > k] · (π₀ Pᵏ)·ρ``.

The sweep processes the ``k`` axis in blocks and applies each time point's
weight window as a numpy slice (one dot product per block and time point),
so no per-``k`` Python scalar work remains on the hot path.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.ctmc.ctmc import CTMC, CTMCError
from repro.ctmc.engines import Engine, EngineSelector, SparseEngine
from repro.ctmc.foxglynn import FoxGlynnWeights, fox_glynn

#: Default truncation error for the Poisson mixture.
DEFAULT_EPSILON = 1e-10

#: Number of ``π₀·Pᵏ`` vectors buffered per weight-application step.
DEFAULT_BLOCK_SIZE = 64

#: Below this many elements per power vector (``num_states × columns``) the
#: reward fold is buffered and contracted once per block: on quotient-sized
#: chains the per-step GEMM *dispatch* overhead dwarfs its flops.  Above it
#: the extra buffer copy costs more memory bandwidth than the saved calls.
BLOCK_FOLD_ELEMENT_LIMIT = 4096


@dataclass
class UniformizationStats:
    """Counters describing the work performed by the engine.

    Attributes
    ----------
    matvecs:
        Number of sparse matrix–vector products performed, counted per
        *column*: one application of the operator to a ``(num_states, B)``
        block counts as ``B`` matvecs (the legacy per-curve unit).
    applies:
        Number of sparse operator applications (each mat–vec or mat–mat
        product counts once, regardless of how many columns it carries).
        The gap between ``matvecs`` and ``applies`` is exactly what
        multi-initial batching amortises.
    sparse_flops:
        Estimated scalar multiply–adds spent inside sparse products:
        ``nnz(operator) × columns`` per application.  This is the unit the
        batched-sweep benchmarks gate on, because it also reflects lumping
        (a quotient operator has far fewer non-zeros).
    sweeps:
        Number of vector-power sweeps (one per engine invocation with a
        non-trivial grid).
    equivalent_nnz:
        Equivalent non-zeros traversed by operator applications:
        ``Σ applies × nnz(source CSR operator)``.  Dense GEMMs report the
        *source* CSR non-zero count (see
        :class:`repro.ctmc.engines.Engine`), so this unit — like
        ``sparse_flops`` — stays comparable across backends instead of
        silently bypassing the perf-bench gates.
    sweep_seconds:
        Wall-clock seconds spent inside the vector-power sweeps.
    """

    matvecs: int = 0
    applies: int = 0
    sparse_flops: int = 0
    sweeps: int = 0
    equivalent_nnz: int = 0
    sweep_seconds: float = 0.0

    def reset(self) -> None:
        self.matvecs = 0
        self.applies = 0
        self.sparse_flops = 0
        self.sweeps = 0
        self.equivalent_nnz = 0
        self.sweep_seconds = 0.0

    def add(self, other: "UniformizationStats") -> None:
        """Accumulate another counter object into this one."""
        self.matvecs += other.matvecs
        self.applies += other.applies
        self.sparse_flops += other.sparse_flops
        self.sweeps += other.sweeps
        self.equivalent_nnz += other.equivalent_nnz
        self.sweep_seconds += other.sweep_seconds


#: Process-wide counters, updated by every sweep.  Benchmarks read deltas of
#: this object to report *measured* matvec counts without plumbing a stats
#: object through the measure layers.
ENGINE_STATS = UniformizationStats()

#: Counter updates happen once per sweep, so serialising them is free; the
#: lock keeps the counters exact when the scenario service runs independent
#: execution groups on worker threads.
_STATS_LOCK = threading.Lock()

#: Optional cache hooks for the sweep plumbing.  ``WindowLookup`` maps a
#: Poisson rate ``q·t`` and an epsilon to Fox–Glynn weights (the default is
#: :func:`repro.ctmc.foxglynn.fox_glynn`); ``OperatorLookup`` maps a chain to
#: its ``(Pᵀ, q)`` forward operator (the default is
#: :meth:`repro.ctmc.ctmc.CTMC.uniformized_transpose`).  The scenario
#: service's process-wide artifact cache injects both so repeated portfolio
#: sweeps stop recomputing identical windows and operators.
WindowLookup = Callable[[float, float], FoxGlynnWeights]
OperatorLookup = Callable[[CTMC], "tuple[sparse.csr_matrix, float]"]


@dataclass(frozen=True)
class GridResult:
    """Result of :func:`evaluate_grid`, index-aligned with the requested times.

    Attributes
    ----------
    times:
        The requested time grid (original order, duplicates preserved).
    distributions:
        ``(len(times), num_states)`` array of transient distributions for a
        single initial distribution, ``(num_initials, len(times),
        num_states)`` for a 2-D initial block, or ``None`` if not requested.
    instantaneous:
        ``(len(times),)`` expected reward rates (``(num_initials,
        len(times))`` for a block), or ``None``.
    cumulative:
        ``(len(times),)`` expected accumulated rewards (``(num_initials,
        len(times))`` for a block), or ``None``.
    matvecs:
        Per-column sparse matvecs performed for this grid (the whole grid
        shares one sweep, so this is the maximal right truncation point
        times the number of initial distributions, not a sum over points).
    """

    times: np.ndarray
    distributions: np.ndarray | None
    instantaneous: np.ndarray | None
    cumulative: np.ndarray | None
    matvecs: int


@dataclass(frozen=True)
class BlockGridResult:
    """Result of :func:`evaluate_grid_block` — always carries the batch axes.

    Attributes
    ----------
    times:
        The requested time grid (original order, duplicates preserved).
    distributions:
        ``(num_initials, len(times), num_states)`` or ``None``.
    instantaneous:
        ``(num_initials, len(times), num_rewards)`` or ``None``.
    cumulative:
        ``(num_initials, len(times), num_rewards)`` or ``None``.
    matvecs:
        Per-column sparse matvecs performed (``applies × num_initials``).
    applies:
        Sparse operator applications performed (one per vector power).
    """

    times: np.ndarray
    distributions: np.ndarray | None
    instantaneous: np.ndarray | None
    cumulative: np.ndarray | None
    matvecs: int
    applies: int


def poisson_mixture_sweep(
    operator: sparse.spmatrix,
    start: np.ndarray,
    windows: Sequence[FoxGlynnWeights],
    rewards: np.ndarray | None = None,
    collect_mixtures: bool = True,
    stats: UniformizationStats | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    engine: Engine | None = None,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Walk ``v_{k+1} = operator @ v_k`` once and accumulate Poisson mixtures.

    This is the engine core, shared by forward analysis (``operator = Pᵀ``,
    ``start = π₀``) and backward analysis (``operator = P``, ``start`` a
    value vector).  The vector powers are generated exactly once, up to the
    largest right truncation point of ``windows``; each window's weights are
    applied to whole blocks of vectors as numpy slices.

    ``start`` may be a single vector of shape ``(dimension,)`` or a block of
    ``B`` vectors with shape ``(B, dimension)``; a block is propagated with
    one sparse mat–mat product per step, sharing the operator traversal
    across all columns.  ``rewards`` may likewise be a single vector
    ``(dimension,)`` or a matrix ``(dimension, m)`` of ``m`` reward columns.

    ``engine`` selects the numeric backend for the walk (see
    :mod:`repro.ctmc.engines`); when ``None`` the legacy CSR path is used
    (``operator`` wrapped in a float64 :class:`~repro.ctmc.engines.SparseEngine`
    — bit-exact with the pre-engine code).  When an engine is given,
    ``operator`` may be ``None``.  A float32 engine walks the powers in
    float32 with a per-step column-mass renormalization — only valid for
    column-stochastic operators (every forward uniformized operator is; the
    backward interval sweep must stay float64) — while window folds and
    reward accumulators stay float64, keeping results within ``1e-6`` of
    the float64 lane.

    Returns
    -------
    (mixtures, reward_sequence):
        ``mixtures[i] = Σ_k windows[i].weight(k) · v_k``; shape
        ``(len(windows), dimension)`` for a vector start and
        ``(len(windows), B, dimension)`` for a block start (``None`` unless
        ``collect_mixtures``).  ``reward_sequence[k] = v_k @ rewards`` for
        ``k = 0 .. max right``; the trailing axes match the inputs — scalar
        per ``k`` for vector start and vector rewards, ``(m,)`` / ``(B,)`` /
        ``(B, m)`` when either is batched (``None`` unless ``rewards`` is
        given).
    """
    start_array = np.asarray(start, dtype=float)
    single_start = start_array.ndim == 1
    if start_array.ndim not in (1, 2):
        raise CTMCError("start must be a vector or a (B, num_states) block")
    block_rows = start_array[None, :] if single_start else start_array
    num_columns, dimension = block_rows.shape

    single_reward = False
    reward_matrix: np.ndarray | None = None
    if rewards is not None:
        reward_matrix = np.asarray(rewards, dtype=float)
        single_reward = reward_matrix.ndim == 1
        if single_reward:
            reward_matrix = reward_matrix[:, None]
        if reward_matrix.shape[0] != dimension:
            raise CTMCError("reward matrix does not match the state dimension")
    num_rewards = 0 if reward_matrix is None else reward_matrix.shape[1]

    def _squeeze_mixtures(mix: np.ndarray) -> np.ndarray:
        return mix[:, 0, :] if single_start else mix

    def _squeeze_rewards(seq: np.ndarray) -> np.ndarray:
        if single_start and single_reward:
            return seq[:, 0, 0]
        if single_start:
            return seq[:, 0, :]
        if single_reward:
            return seq[:, :, 0]
        return seq

    if not windows:
        mixtures = (
            _squeeze_mixtures(np.zeros((0, num_columns, dimension)))
            if collect_mixtures
            else None
        )
        reward_sequence = (
            _squeeze_rewards(np.zeros((0, num_columns, num_rewards)))
            if reward_matrix is not None
            else None
        )
        return mixtures, reward_sequence

    right_max = max(window.right for window in windows)
    # Accumulators are kept as (windows, dimension, columns) so the sweep's
    # (dimension, columns) layout is added without transposes on the hot path.
    mixtures_acc = (
        np.zeros((len(windows), dimension, num_columns)) if collect_mixtures else None
    )
    reward_sequence_acc = (
        np.empty((right_max + 1, num_columns, num_rewards))
        if reward_matrix is not None
        else None
    )

    if engine is None:
        if operator is None:
            raise CTMCError("poisson_mixture_sweep needs an operator or an engine")
        engine = SparseEngine(operator)
    equivalent_nnz = engine.equivalent_nnz
    dtype = engine.dtype
    # The float32 lane renormalizes each power's column mass against the
    # exact (float64) starting mass — valid because the forward operator is
    # column-stochastic — which keeps the accumulated rounding drift well
    # under the documented 1e-6 contract.  float64 walks untouched.
    renormalize = dtype == np.float32
    column_masses = (
        np.sum(block_rows, axis=1, dtype=np.float64) if renormalize else None
    )

    started = time.perf_counter()
    performed = 0
    # (dimension, columns) private walk buffer.  Must be a *copy*: dense and
    # numba backends write operator applications into the ping-pong pair, and
    # a (1, n) transpose is already C-contiguous, so ascontiguousarray would
    # alias the caller's block and the walk would clobber it.
    vectors = np.array(block_rows.T, dtype=dtype, order="C")
    scratch = engine.new_scratch(vectors)  # ping-pong partner (dense backends)
    # Reward folding strategy: small power vectors buffer the whole block and
    # contract it in one call (dispatch-overhead regime); large ones keep the
    # per-step fold so no (block, dimension, columns) copy is ever made.
    block_fold_rewards = reward_matrix is not None and (
        collect_mixtures or dimension * num_columns <= BLOCK_FOLD_ELEMENT_LIMIT
    )
    step_fold_rewards = reward_matrix is not None and not block_fold_rewards
    need_buffer = collect_mixtures or block_fold_rewards
    for block_start in range(0, right_max + 1, block_size):
        block_stop = min(block_start + block_size, right_max + 1)
        steps = block_stop - block_start
        buffered = (
            np.empty((steps, dimension, num_columns), dtype=dtype)
            if need_buffer
            else None
        )
        if buffered is not None and not renormalize:
            # Whole-block walk through the engine primitive: backends that
            # can stream powers straight into the buffer (dense GEMM) skip
            # every per-step copy and dispatch of the generic loop below.
            advance_final = block_stop - 1 < right_max
            vectors, scratch = engine.power_block(
                vectors, buffered, scratch, advance_final
            )
            performed += steps - 1 + (1 if advance_final else 0)
        else:
            for offset, k in enumerate(range(block_start, block_stop)):
                if buffered is not None:
                    buffered[offset] = vectors
                if step_fold_rewards:
                    reward_sequence_acc[k] = vectors.T @ reward_matrix
                if k < right_max:
                    advanced = engine.apply_operator(vectors, out=scratch)
                    if advanced is scratch and scratch is not None:
                        scratch = vectors
                    vectors = advanced
                    performed += 1
                    if renormalize:
                        sums = np.sum(vectors, axis=0, dtype=np.float64)
                        scale = np.divide(
                            column_masses,
                            sums,
                            out=np.ones_like(sums),
                            where=sums != 0.0,
                        )
                        vectors *= scale.astype(dtype)
        if buffered is None:
            continue
        if block_fold_rewards:
            # One (L·B, dimension) × (dimension, m) GEMM per block replaces
            # L tiny per-step products; the contraction order per entry is
            # unchanged, so the numerics match the per-step fold.
            reward_sequence_acc[block_start:block_stop] = np.tensordot(
                buffered, reward_matrix, axes=(1, 0)
            )
        if not collect_mixtures:
            continue
        for index, window in enumerate(windows):
            lo = max(window.left, block_start)
            hi = min(window.right, block_stop - 1)
            if lo <= hi:
                mixtures_acc[index] += np.tensordot(
                    window.weights[lo - window.left : hi - window.left + 1],
                    buffered[lo - block_start : hi - block_start + 1],
                    axes=(0, 0),
                )

    elapsed = time.perf_counter() - started
    with _STATS_LOCK:
        for counters in (ENGINE_STATS, stats):
            if counters is not None:
                counters.matvecs += performed * num_columns
                counters.applies += performed
                counters.sparse_flops += performed * equivalent_nnz * num_columns
                counters.sweeps += 1
                counters.equivalent_nnz += performed * equivalent_nnz
                counters.sweep_seconds += elapsed

    mixtures = (
        _squeeze_mixtures(np.swapaxes(mixtures_acc, 1, 2)) if collect_mixtures else None
    )
    reward_sequence = (
        _squeeze_rewards(reward_sequence_acc) if reward_sequence_acc is not None else None
    )
    return mixtures, reward_sequence


def evaluate_grid_block(
    chain: CTMC,
    times: Sequence[float] | np.ndarray,
    initial_block: np.ndarray,
    rewards_matrix: np.ndarray | None = None,
    distributions: bool = False,
    instantaneous: bool = False,
    cumulative: bool = False,
    epsilon: float = DEFAULT_EPSILON,
    stats: UniformizationStats | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    window_lookup: WindowLookup | None = None,
    operator_lookup: OperatorLookup | None = None,
    engine: str | Engine | None = None,
    dtype: np.dtype | str | None = None,
    selector: EngineSelector | None = None,
) -> BlockGridResult:
    """Evaluate a whole (initials × times × rewards) block in one sweep.

    This is the batch core behind :func:`evaluate_grid` and the analysis
    session executor: ``initial_block`` has shape ``(num_initials,
    num_states)`` and ``rewards_matrix`` shape ``(num_states, num_rewards)``;
    every combination of initial distribution, grid point and reward column
    is folded into accumulators during one shared vector-power sweep, whose
    Fox–Glynn windows are computed once per distinct positive time point.

    ``window_lookup`` and ``operator_lookup`` override how Fox–Glynn windows
    and the forward operator are obtained (see :data:`WindowLookup` /
    :data:`OperatorLookup`); they exist so a process-wide artifact cache can
    serve both without this module depending on it.

    ``engine`` picks the numeric backend for the sweep — a mode string from
    :data:`repro.ctmc.engines.ENGINE_MODES` (``"auto"`` resolved through
    ``selector``, or a fresh :class:`repro.ctmc.engines.EngineSelector`
    when none is given) or a prebuilt :class:`repro.ctmc.engines.Engine`.
    ``dtype`` selects the float32/float64 sweep lane.  Leaving all three at
    ``None`` runs the legacy float64 CSR path bit-exactly.

    The grid may be unsorted and contain duplicates and ``t = 0``.
    """
    times_array = np.asarray(times, dtype=float)
    if times_array.ndim != 1:
        raise CTMCError("time grid must be one-dimensional")
    if not np.all(np.isfinite(times_array)):
        raise CTMCError("time points must be finite")
    if np.any(times_array < 0):
        raise CTMCError("time points must be non-negative")

    initials = np.asarray(initial_block, dtype=float)
    if initials.ndim != 2 or initials.shape[1] != chain.num_states:
        raise CTMCError("initial block must have shape (num_initials, num_states)")
    num_initials = initials.shape[0]

    need_rewards = instantaneous or cumulative
    rewards = None
    num_rewards = 0
    if need_rewards:
        if rewards_matrix is None:
            raise CTMCError("instantaneous/cumulative outputs need a reward vector")
        rewards = np.asarray(rewards_matrix, dtype=float)
        if rewards.ndim == 1:
            rewards = rewards[:, None]
        if rewards.ndim != 2 or rewards.shape[0] != chain.num_states:
            raise CTMCError("reward vector has the wrong length")
        num_rewards = rewards.shape[1]

    num_times = times_array.shape[0]
    num_states = chain.num_states
    dist_out = (
        np.zeros((num_initials, num_times, num_states)) if distributions else None
    )
    inst_out = (
        np.zeros((num_initials, num_times, num_rewards)) if instantaneous else None
    )
    cum_out = np.zeros((num_initials, num_times, num_rewards)) if cumulative else None
    if num_times == 0:
        return BlockGridResult(times_array.copy(), dist_out, inst_out, cum_out, 0, 0)

    initial_rates = initials @ rewards if need_rewards else None  # (B, m)
    if chain.max_exit_rate == 0.0:
        # No transitions at all: the chain sits in the initial distribution.
        if distributions:
            dist_out[:] = initials[:, None, :]
        if instantaneous:
            inst_out[:] = initial_rates[:, None, :]
        if cumulative:
            cum_out[:] = times_array[None, :, None] * initial_rates[:, None, :]
        return BlockGridResult(times_array.copy(), dist_out, inst_out, cum_out, 0, 0)

    if operator_lookup is not None:
        transposed, q = operator_lookup(chain)
    else:
        transposed, q = chain.uniformized_transpose()

    engine_obj: Engine | None
    if isinstance(engine, Engine):
        engine_obj = engine
    elif engine is not None or dtype is not None:
        chooser = selector if selector is not None else EngineSelector()
        engine_obj = chooser.engine_for(
            chain,
            transposed,
            q,
            mode="sparse" if engine is None else engine,
            dtype=dtype,
        )
    else:
        engine_obj = None  # legacy float64 CSR path, bit-exact

    unique_times, inverse = np.unique(times_array, return_inverse=True)
    positive = np.flatnonzero(unique_times > 0.0)
    make_window = fox_glynn if window_lookup is None else window_lookup
    windows = [make_window(q * float(unique_times[i]), epsilon) for i in positive]

    local = UniformizationStats()
    mixtures, reward_sequence = poisson_mixture_sweep(
        transposed,
        initials,
        windows,
        rewards=rewards if need_rewards else None,
        collect_mixtures=distributions,
        stats=local,
        block_size=block_size,
        engine=engine_obj,
    )
    if stats is not None:
        stats.add(local)

    num_unique = unique_times.shape[0]
    unique_dist = (
        np.zeros((num_unique, num_initials, num_states)) if distributions else None
    )
    unique_inst = (
        np.zeros((num_unique, num_initials, num_rewards)) if instantaneous else None
    )
    unique_cum = (
        np.zeros((num_unique, num_initials, num_rewards)) if cumulative else None
    )
    if cumulative:
        # prefix[k] = Σ_{j < k} v_j @ rewards, used for the sub-window head
        # where the Poisson tail probability is (numerically) the full mass.
        prefix = np.concatenate(
            (
                np.zeros((1, num_initials, num_rewards)),
                np.cumsum(reward_sequence, axis=0),
            )
        )

    for window_index, unique_index in enumerate(positive):
        window = windows[window_index]
        if distributions:
            unique_dist[unique_index] = mixtures[window_index]
        if instantaneous:
            unique_inst[unique_index] = np.tensordot(
                window.weights,
                reward_sequence[window.left : window.right + 1],
                axes=(0, 0),
            )
        if cumulative:
            mass = np.cumsum(window.weights)
            total = float(mass[-1])
            tails = total - mass  # tails[j] = P[N > left + j]
            unique_cum[unique_index] = (
                total * prefix[window.left]
                + np.tensordot(
                    tails, reward_sequence[window.left : window.right + 1], axes=(0, 0)
                )
            ) / q

    for unique_index in np.flatnonzero(unique_times == 0.0):
        if distributions:
            unique_dist[unique_index] = initials
        if instantaneous:
            unique_inst[unique_index] = initial_rates
        # cumulative reward at t = 0 stays 0

    if distributions:
        dist_out[:] = np.swapaxes(unique_dist[inverse], 0, 1)
    if instantaneous:
        inst_out[:] = np.swapaxes(unique_inst[inverse], 0, 1)
    if cumulative:
        cum_out[:] = np.swapaxes(unique_cum[inverse], 0, 1)
    return BlockGridResult(
        times_array.copy(), dist_out, inst_out, cum_out, local.matvecs, local.applies
    )


def evaluate_grid(
    chain: CTMC,
    times: Sequence[float] | np.ndarray,
    initial_distribution: np.ndarray | None = None,
    rewards: np.ndarray | None = None,
    distributions: bool = True,
    instantaneous: bool = False,
    cumulative: bool = False,
    epsilon: float = DEFAULT_EPSILON,
    stats: UniformizationStats | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> GridResult:
    """Evaluate transient and/or reward measures on a whole time grid at once.

    The grid may be unsorted and contain duplicates and ``t = 0``; duplicate
    time points share one Fox–Glynn window and all points share one
    vector-power sweep.

    Parameters
    ----------
    chain:
        The CTMC to analyse.
    times:
        Time points (non-negative, any order).
    initial_distribution:
        Optional override of the chain's initial distribution.  A 2-D block
        of shape ``(num_initials, num_states)`` batches several initial
        distributions through the same sweep (one sparse mat–mat product per
        step); the outputs then gain a leading ``num_initials`` axis.
    rewards:
        State reward-rate vector; required for the reward outputs.
    distributions, instantaneous, cumulative:
        Which outputs to compute (see :class:`GridResult`).
    epsilon:
        Truncation error of the Poisson mixture.
    stats:
        Optional counter object updated with the work performed.
    """
    if initial_distribution is None:
        pi0 = chain.initial_distribution
    else:
        pi0 = np.asarray(initial_distribution, dtype=float)
        if pi0.ndim == 1 and pi0.shape != (chain.num_states,):
            raise CTMCError("initial distribution has the wrong length")
        if pi0.ndim == 2 and pi0.shape[1] != chain.num_states:
            raise CTMCError("initial distribution block has the wrong width")
        if pi0.ndim not in (1, 2):
            raise CTMCError("initial distribution must be a vector or a 2-D block")

    single = pi0.ndim == 1
    block = pi0[None, :] if single else pi0

    if rewards is not None:
        rewards = np.asarray(rewards, dtype=float)
        if rewards.shape != (chain.num_states,):
            raise CTMCError("reward vector has the wrong length")

    result = evaluate_grid_block(
        chain,
        times,
        block,
        rewards_matrix=rewards,
        distributions=distributions,
        instantaneous=instantaneous,
        cumulative=cumulative,
        epsilon=epsilon,
        stats=stats,
        block_size=block_size,
    )

    dist_out = result.distributions
    inst_out = result.instantaneous
    cum_out = result.cumulative
    if single:
        dist_out = dist_out[0] if dist_out is not None else None
        inst_out = inst_out[0, :, 0] if inst_out is not None else None
        cum_out = cum_out[0, :, 0] if cum_out is not None else None
    else:
        inst_out = inst_out[:, :, 0] if inst_out is not None else None
        cum_out = cum_out[:, :, 0] if cum_out is not None else None
    return GridResult(result.times, dist_out, inst_out, cum_out, result.matvecs)
