"""Single-pass uniformization engine for time-grid measures.

Every figure of the paper is a *curve*: survivability, reliability or cost
evaluated on a 46–101-point time grid.  Evaluating each grid point
independently restarts the uniformization recursion ``π₀·Pᵏ`` from ``k = 0``,
costing ``Σᵢ Rᵢ`` sparse matrix–vector products for right truncation points
``Rᵢ``.  The engine in this module walks the vector-power sequence
``π₀·Pᵏ`` exactly **once** per (chain, initial distribution) and folds all
requested time points into per-time accumulators during that single sweep,
costing ``max_i Rᵢ`` products instead — a roughly ``points/2``-fold
reduction on fine grids.

Three measures ride on the same sweep:

* transient distributions
  ``π(tᵢ) = Σ_k wᵢ(k) · (π₀ Pᵏ)`` — the Poisson mixture with Fox–Glynn
  weights ``wᵢ`` for rate ``q·tᵢ``,
* instantaneous rewards
  ``Σ_k wᵢ(k) · (π₀ Pᵏ)·ρ``,
* cumulative rewards
  ``(1/q) Σ_k P[N_{q tᵢ} > k] · (π₀ Pᵏ)·ρ``.

The sweep processes the ``k`` axis in blocks and applies each time point's
weight window as a numpy slice (one dot product per block and time point),
so no per-``k`` Python scalar work remains on the hot path.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.ctmc.ctmc import CTMC, CTMCError
from repro.ctmc.foxglynn import FoxGlynnWeights, fox_glynn

#: Default truncation error for the Poisson mixture.
DEFAULT_EPSILON = 1e-10

#: Number of ``π₀·Pᵏ`` vectors buffered per weight-application step.
DEFAULT_BLOCK_SIZE = 64


@dataclass
class UniformizationStats:
    """Counters describing the work performed by the engine.

    Attributes
    ----------
    matvecs:
        Number of sparse matrix–vector products performed.
    sweeps:
        Number of vector-power sweeps (one per engine invocation with a
        non-trivial grid).
    """

    matvecs: int = 0
    sweeps: int = 0

    def reset(self) -> None:
        self.matvecs = 0
        self.sweeps = 0


#: Process-wide counters, updated by every sweep.  Benchmarks read deltas of
#: this object to report *measured* matvec counts without plumbing a stats
#: object through the measure layers.
ENGINE_STATS = UniformizationStats()


@dataclass(frozen=True)
class GridResult:
    """Result of :func:`evaluate_grid`, index-aligned with the requested times.

    Attributes
    ----------
    times:
        The requested time grid (original order, duplicates preserved).
    distributions:
        ``(len(times), num_states)`` array of transient distributions, or
        ``None`` if not requested.
    instantaneous:
        ``(len(times),)`` expected reward rates, or ``None``.
    cumulative:
        ``(len(times),)`` expected accumulated rewards, or ``None``.
    matvecs:
        Sparse matvecs performed for this grid (the whole grid shares one
        sweep, so this is the maximal right truncation point, not a sum).
    """

    times: np.ndarray
    distributions: np.ndarray | None
    instantaneous: np.ndarray | None
    cumulative: np.ndarray | None
    matvecs: int


def poisson_mixture_sweep(
    operator: sparse.spmatrix,
    start: np.ndarray,
    windows: Sequence[FoxGlynnWeights],
    rewards: np.ndarray | None = None,
    collect_mixtures: bool = True,
    stats: UniformizationStats | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Walk ``v_{k+1} = operator @ v_k`` once and accumulate Poisson mixtures.

    This is the engine core, shared by forward analysis (``operator = Pᵀ``,
    ``start = π₀``) and backward analysis (``operator = P``, ``start`` a
    value vector).  The vector powers are generated exactly once, up to the
    largest right truncation point of ``windows``; each window's weights are
    applied to whole blocks of vectors as numpy slices.

    Returns
    -------
    (mixtures, reward_sequence):
        ``mixtures[i] = Σ_k windows[i].weight(k) · v_k`` with shape
        ``(len(windows), len(start))`` (``None`` unless
        ``collect_mixtures``), and ``reward_sequence[k] = v_k @ rewards``
        for ``k = 0 .. max right`` (``None`` unless ``rewards`` is given).
    """
    dimension = start.shape[0]
    if not windows:
        mixtures = np.zeros((0, dimension)) if collect_mixtures else None
        return mixtures, (np.zeros(0) if rewards is not None else None)

    right_max = max(window.right for window in windows)
    mixtures = np.zeros((len(windows), dimension)) if collect_mixtures else None
    reward_sequence = np.empty(right_max + 1) if rewards is not None else None

    performed = 0
    vector = np.array(start, dtype=float, copy=True)
    for block_start in range(0, right_max + 1, block_size):
        block_stop = min(block_start + block_size, right_max + 1)
        block = np.empty((block_stop - block_start, dimension)) if collect_mixtures else None
        for offset, k in enumerate(range(block_start, block_stop)):
            if block is not None:
                block[offset] = vector
            if reward_sequence is not None:
                reward_sequence[k] = vector @ rewards
            if k < right_max:
                vector = operator @ vector
                performed += 1
        if block is None:
            continue
        for index, window in enumerate(windows):
            lo = max(window.left, block_start)
            hi = min(window.right, block_stop - 1)
            if lo <= hi:
                mixtures[index] += (
                    window.weights[lo - window.left : hi - window.left + 1]
                    @ block[lo - block_start : hi - block_start + 1]
                )

    ENGINE_STATS.matvecs += performed
    ENGINE_STATS.sweeps += 1
    if stats is not None:
        stats.matvecs += performed
        stats.sweeps += 1
    return mixtures, reward_sequence


def evaluate_grid(
    chain: CTMC,
    times: Sequence[float] | np.ndarray,
    initial_distribution: np.ndarray | None = None,
    rewards: np.ndarray | None = None,
    distributions: bool = True,
    instantaneous: bool = False,
    cumulative: bool = False,
    epsilon: float = DEFAULT_EPSILON,
    stats: UniformizationStats | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> GridResult:
    """Evaluate transient and/or reward measures on a whole time grid at once.

    The grid may be unsorted and contain duplicates and ``t = 0``; duplicate
    time points share one Fox–Glynn window and all points share one
    vector-power sweep.

    Parameters
    ----------
    chain:
        The CTMC to analyse.
    times:
        Time points (non-negative, any order).
    initial_distribution:
        Optional override of the chain's initial distribution.
    rewards:
        State reward-rate vector; required for the reward outputs.
    distributions, instantaneous, cumulative:
        Which outputs to compute (see :class:`GridResult`).
    epsilon:
        Truncation error of the Poisson mixture.
    stats:
        Optional counter object updated with the work performed.
    """
    times_array = np.asarray(times, dtype=float)
    if times_array.ndim != 1:
        raise CTMCError("time grid must be one-dimensional")
    if not np.all(np.isfinite(times_array)):
        raise CTMCError("time points must be finite")
    if np.any(times_array < 0):
        raise CTMCError("time points must be non-negative")

    need_rewards = instantaneous or cumulative
    if need_rewards:
        if rewards is None:
            raise CTMCError("instantaneous/cumulative outputs need a reward vector")
        rewards = np.asarray(rewards, dtype=float)
        if rewards.shape != (chain.num_states,):
            raise CTMCError("reward vector has the wrong length")

    if initial_distribution is None:
        pi0 = chain.initial_distribution
    else:
        pi0 = np.asarray(initial_distribution, dtype=float)
        if pi0.shape != (chain.num_states,):
            raise CTMCError("initial distribution has the wrong length")

    num_times = times_array.shape[0]
    num_states = chain.num_states
    dist_out = np.zeros((num_times, num_states)) if distributions else None
    inst_out = np.zeros(num_times) if instantaneous else None
    cum_out = np.zeros(num_times) if cumulative else None
    if num_times == 0:
        return GridResult(times_array.copy(), dist_out, inst_out, cum_out, 0)

    initial_rate = float(pi0 @ rewards) if need_rewards else 0.0
    if chain.max_exit_rate == 0.0:
        # No transitions at all: the chain sits in the initial distribution.
        if distributions:
            dist_out[:] = pi0
        if instantaneous:
            inst_out[:] = initial_rate
        if cumulative:
            cum_out[:] = times_array * initial_rate
        return GridResult(times_array.copy(), dist_out, inst_out, cum_out, 0)

    transposed, q = chain.uniformized_transpose()

    unique_times, inverse = np.unique(times_array, return_inverse=True)
    positive = np.flatnonzero(unique_times > 0.0)
    windows = [fox_glynn(q * float(unique_times[i]), epsilon) for i in positive]

    local = UniformizationStats()
    mixtures, reward_sequence = poisson_mixture_sweep(
        transposed,
        pi0,
        windows,
        rewards=rewards if need_rewards else None,
        collect_mixtures=distributions,
        stats=local,
        block_size=block_size,
    )
    if stats is not None:
        stats.matvecs += local.matvecs
        stats.sweeps += local.sweeps

    num_unique = unique_times.shape[0]
    unique_dist = np.zeros((num_unique, num_states)) if distributions else None
    unique_inst = np.zeros(num_unique) if instantaneous else None
    unique_cum = np.zeros(num_unique) if cumulative else None
    if cumulative:
        # prefix[k] = Σ_{j < k} v_j @ rewards, used for the sub-window head
        # where the Poisson tail probability is (numerically) the full mass.
        prefix = np.concatenate(([0.0], np.cumsum(reward_sequence)))

    for window_index, unique_index in enumerate(positive):
        window = windows[window_index]
        if distributions:
            unique_dist[unique_index] = mixtures[window_index]
        if instantaneous:
            unique_inst[unique_index] = float(
                window.weights @ reward_sequence[window.left : window.right + 1]
            )
        if cumulative:
            mass = np.cumsum(window.weights)
            total = float(mass[-1])
            tails = total - mass  # tails[j] = P[N > left + j]
            unique_cum[unique_index] = (
                total * float(prefix[window.left])
                + float(tails @ reward_sequence[window.left : window.right + 1])
            ) / q

    for unique_index in np.flatnonzero(unique_times == 0.0):
        if distributions:
            unique_dist[unique_index] = pi0
        if instantaneous:
            unique_inst[unique_index] = initial_rate
        # cumulative reward at t = 0 stays 0

    if distributions:
        dist_out[:] = unique_dist[inverse]
    if instantaneous:
        inst_out[:] = unique_inst[inverse]
    if cumulative:
        cum_out[:] = unique_cum[inverse]
    return GridResult(times_array.copy(), dist_out, inst_out, cum_out, local.matvecs)
