"""Fox–Glynn computation of Poisson probabilities.

Uniformization expresses the transient distribution of a CTMC as a Poisson
mixture of DTMC step distributions:

.. math::

   \\pi(t) = \\sum_{k=0}^{\\infty} e^{-qt} \\frac{(qt)^k}{k!} \\; \\pi(0) P^k .

The Fox–Glynn algorithm (Fox & Glynn, CACM 1988) computes the weights
``e^{-qt} (qt)^k / k!`` for the indices ``L..R`` that carry all but an
``epsilon`` fraction of the probability mass, in a numerically stable way
(weights are computed unnormalised around the mode and normalised by their
sum, avoiding underflow of ``e^{-qt}`` for large ``qt``).

The implementation below follows the structure used by PRISM and MRMC: find
the left and right truncation points from Chernoff-style bounds, then recurse
outward from the mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FoxGlynnWeights:
    """Truncated, normalised Poisson weights.

    Attributes
    ----------
    left:
        Index of the first weight (inclusive).
    right:
        Index of the last weight (inclusive).
    weights:
        Array of length ``right - left + 1`` with
        ``weights[k - left] ≈ e^{-λ} λ^k / k!``; the weights sum to at most 1
        and to at least ``1 - epsilon``.
    total:
        The sum of the stored weights (before normalisation it is the value
        used to normalise; after construction ``weights.sum() == total``).
    """

    left: int
    right: int
    weights: np.ndarray
    total: float

    def __post_init__(self) -> None:
        if self.right < self.left:
            raise ValueError("right truncation point smaller than left")
        if len(self.weights) != self.right - self.left + 1:
            raise ValueError("weight array length does not match truncation window")

    def weight(self, k: int) -> float:
        """Return the weight of index ``k`` (zero outside the window)."""
        if k < self.left or k > self.right:
            return 0.0
        return float(self.weights[k - self.left])


def _find_truncation_points(rate: float, epsilon: float) -> tuple[int, int]:
    """Return (left, right) truncation points for Poisson(rate).

    Uses simple, conservative tail bounds: the normal approximation with a
    generous safety margin for the left point, and a Chernoff-style bound
    (walk right until the tail bound drops below epsilon/2) for the right
    point.  The bounds are deliberately a little loose — a few extra terms
    cost almost nothing, whereas missing mass would bias results.
    """
    mode = int(math.floor(rate))
    if rate < 25.0:
        # For small rates underflow is not an issue; start at zero and walk
        # right until the cumulative mass reaches 1 - epsilon/2.
        left = 0
        cumulative = 0.0
        term = math.exp(-rate)
        k = 0
        while cumulative + term < 1.0 - epsilon / 2.0:
            if k >= 10_000:
                raise ValueError(
                    f"Fox-Glynn right truncation walk did not accumulate "
                    f"1 - epsilon/2 within 10000 terms (rate={rate}, "
                    f"epsilon={epsilon}); epsilon is too small for double precision"
                )
            cumulative += term
            k += 1
            term *= rate / k
        right = max(k, mode + 1)
        return left, right

    standard_deviation = math.sqrt(rate)
    # Left point: mean minus a multiple of the standard deviation, clamped at 0.
    k_left = math.ceil(math.sqrt(2.0 * math.log(4.0 / epsilon)))
    left = max(0, int(math.floor(rate - (k_left + 1.0) * standard_deviation - 1.0)))
    # Right point: mean plus a multiple of the standard deviation with a
    # correction term; mirrors the bound used in the original algorithm.
    k_right = math.ceil(math.sqrt(2.0 * math.log(4.0 / epsilon)) + 1.0)
    right = int(math.ceil(rate + (k_right + 1.0) * standard_deviation + 4.0))
    return left, right


def fox_glynn(rate: float, epsilon: float = 1e-12) -> FoxGlynnWeights:
    """Compute truncated Poisson(rate) weights with total error below ``epsilon``.

    Parameters
    ----------
    rate:
        The Poisson rate ``λ = q·t`` (must be non-negative).
    epsilon:
        Bound on the total truncated probability mass.

    Returns
    -------
    FoxGlynnWeights
        The truncation window and normalised weights.
    """
    if rate < 0.0:
        raise ValueError(f"Poisson rate must be non-negative, got {rate}")
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if rate == 0.0:
        return FoxGlynnWeights(left=0, right=0, weights=np.array([1.0]), total=1.0)

    left, right = _find_truncation_points(rate, epsilon)
    mode = min(max(int(math.floor(rate)), left), right)
    size = right - left + 1

    # Work in log space around the mode to avoid under/overflow, then shift.
    log_weights = np.zeros(size, dtype=float)
    log_weights[mode - left] = 0.0
    # Going right from the mode: w[k+1] = w[k] * rate / (k+1).
    for k in range(mode, right):
        log_weights[k + 1 - left] = log_weights[k - left] + math.log(rate / (k + 1))
    # Going left from the mode: w[k-1] = w[k] * k / rate.
    for k in range(mode, left, -1):
        log_weights[k - 1 - left] = log_weights[k - left] + math.log(k / rate)

    # Normalise: true weight_k = exp(log_weights_k + C) for the C that makes
    # the full (untruncated) sum equal 1; since we only have the window we
    # normalise by the window sum, then rescale by the exact window mass
    # 1 - tails, which we approximate as 1 (the tails are below epsilon).
    shift = log_weights.max()
    weights = np.exp(log_weights - shift)
    window_sum = float(weights.sum())
    # exact normaliser: sum_k exp(log w_k) = window mass of Poisson / exp(shift)
    weights /= window_sum
    # Scale so the window carries the correct Poisson mass.  The window mass
    # equals 1 minus the truncated tails; bounding it by 1 keeps the result
    # conservative (sums to <= 1) and the error below epsilon.
    total = float(weights.sum())
    return FoxGlynnWeights(left=left, right=right, weights=weights, total=total)


def poisson_cdf_complement(rate: float, k: int) -> float:
    """Return ``P[Poisson(rate) > k]`` (used in tests as an oracle)."""
    if rate == 0.0:
        return 0.0
    term = math.exp(-rate)
    cumulative = 0.0
    for index in range(0, k + 1):
        if index > 0:
            term *= rate / index
        cumulative += term
    return max(0.0, 1.0 - cumulative)
