"""Continuous-time Markov chain (CTMC) substrate.

This package provides the numerical engine that plays the role PRISM's CTMC
engine plays in the paper:

* :class:`~repro.ctmc.ctmc.CTMC` — a labelled CTMC with a sparse generator
  matrix, atomic-proposition labelling and an initial distribution.
* :class:`~repro.ctmc.ctmc.MarkovRewardModel` — a CTMC plus state/transition
  reward structures (the model class of CSRL).
* :mod:`~repro.ctmc.uniformization` — the single-pass uniformization engine:
  one vector-power sweep per (chain, initial distribution) serves a whole
  time grid of transient, reachability and reward measures.
* :mod:`~repro.ctmc.transient` — transient analysis by uniformization
  (Fox–Glynn Poisson weights) and time-bounded reachability.
* :mod:`~repro.ctmc.steady_state` — steady-state/long-run analysis with BSCC
  decomposition, direct sparse solves and iterative fallbacks.
* :mod:`~repro.ctmc.linsolve` — the cached sparse linear-solver engine: one
  LU factorization per (chain fingerprint, state-subset signature), solved
  against arbitrarily many stacked right-hand-side columns; the warm path
  of every long-run measure.
* :mod:`~repro.ctmc.rewards` — instantaneous, cumulative and long-run reward
  measures (the backend of ``R=?[I=t]``, ``R=?[C<=t]`` and ``R=?[S]``).
* :mod:`~repro.ctmc.lumping` — ordinary lumpability (strong bisimulation)
  partition refinement and quotient construction.
* :mod:`~repro.ctmc.dtmc` — embedded/uniformized DTMC helpers and
  unbounded-reachability solvers.
"""

from repro.ctmc.ctmc import CTMC, MarkovRewardModel, RewardStructure
from repro.ctmc.foxglynn import FoxGlynnWeights, fox_glynn
from repro.ctmc.uniformization import (
    ENGINE_STATS,
    GridResult,
    UniformizationStats,
    evaluate_grid,
)
from repro.ctmc.transient import (
    time_bounded_reachability,
    transient_distribution,
    transient_distributions,
)
from repro.ctmc.linsolve import (
    Factorization,
    LinearSolveStats,
    SolverEngine,
    subset_signature,
)
from repro.ctmc.steady_state import (
    bottom_strongly_connected_components,
    bscc_decomposition,
    steady_state_distribution,
    steady_state_distribution_block,
    steady_state_probability,
    steady_state_values_per_state,
)
from repro.ctmc.rewards import (
    cumulative_reward,
    instantaneous_reward,
    steady_state_reward,
)
from repro.ctmc.lumping import lump_ctmc, lumping_partition
from repro.ctmc.dtmc import DTMC, embedded_dtmc, uniformized_dtmc

__all__ = [
    "CTMC",
    "DTMC",
    "ENGINE_STATS",
    "Factorization",
    "FoxGlynnWeights",
    "GridResult",
    "LinearSolveStats",
    "MarkovRewardModel",
    "RewardStructure",
    "SolverEngine",
    "UniformizationStats",
    "bottom_strongly_connected_components",
    "bscc_decomposition",
    "cumulative_reward",
    "embedded_dtmc",
    "evaluate_grid",
    "fox_glynn",
    "instantaneous_reward",
    "lump_ctmc",
    "lumping_partition",
    "steady_state_distribution",
    "steady_state_distribution_block",
    "steady_state_probability",
    "steady_state_reward",
    "steady_state_values_per_state",
    "subset_signature",
    "time_bounded_reachability",
    "transient_distribution",
    "transient_distributions",
    "uniformized_dtmc",
]
