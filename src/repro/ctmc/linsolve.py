"""Cached sparse linear-solver engine for long-run measures.

The transient measures of the paper ride one shared uniformization path
(:mod:`repro.ctmc.uniformization`); the *long-run* measures — steady-state
probabilities (``S=?``), unbounded reachability (``P=?[phi U psi]``) and
expected reachability rewards (``R=?[F phi]``) — instead reduce to sparse
linear systems over a *subset* of the state space:

* the stationary balance equations of a BSCC,
* ``(I - P|_maybe) x = b`` over the genuinely uncertain states of a
  reachability problem on the embedded DTMC,
* ``Q|_certain v = -rho`` over the states that reach the target with
  probability one.

Factorizing such a system (``scipy``'s ``splu``) dominates its cost; the
subsequent triangular solves are cheap and accept *stacked* right-hand-side
columns.  :class:`SolverEngine` therefore caches one LU factorization per
``(chain fingerprint, system token)`` — where the token encodes the system
family and the state subset via :func:`subset_signature` — and solves
arbitrarily many RHS columns against it.  Pointed at a process-wide
:class:`repro.service.ArtifactCache`, factorizations (and the BSCC
decompositions and stationary vectors the steady-state path stores through
the same interface) persist across sessions and service flushes, so a warm
portfolio repeat performs zero new factorizations.

Since PR 10 the analysis planner lumps long-run groups before they reach
this module: the chain handed to the solvers is the ordinary-lumpability
quotient seeded with the group's target/safe/reward observables, so the
factorized systems — and the persisted LU artifacts — live on the (often
much smaller) quotient state space.  Nothing here changes for that: the
quotient is just another :class:`~repro.ctmc.ctmc.CTMC` with its own
fingerprint.

Work is recorded in :class:`LinearSolveStats` (factorizations built, solve
calls, RHS columns), mirroring how
:class:`repro.ctmc.uniformization.UniformizationStats` instruments the
transient engine; ``benchmarks/bench_perf_linsolve.py`` gates on these
counters.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.ctmc.ctmc import CTMC, CTMCError, as_state_mask
from repro.ctmc.engines import (
    DENSE_SOLVE_LIMIT,
    DenseFactorization,
    SparseFactorization,
    normalise_engine_mode,
)


def subset_signature(mask: np.ndarray) -> bytes:
    """A compact, canonical byte token of a state subset.

    Together with a chain fingerprint and a system-family prefix this keys a
    factorization in the cache: two lookups share an LU exactly when they
    restrict the same chain to the same states.  The mask is bit-packed so
    tokens stay small even for large chains.
    """
    array = np.asarray(mask)
    if array.dtype != np.bool_:
        raise CTMCError("subset signatures are taken over boolean state masks")
    return np.packbits(array).tobytes()


@dataclass
class LinearSolveStats:
    """Counters describing the work performed by the solver engine.

    Attributes
    ----------
    factorizations:
        LU factorizations actually *built* (cache hits do not count — the
        warm-path benchmarks gate on this staying zero for repeats).
    solves:
        Triangular solve calls against a factorization.
    columns:
        Right-hand-side columns pushed through those solves; the gap between
        ``columns`` and ``factorizations`` is what RHS stacking amortises.
    dense_factorizations:
        How many of ``factorizations`` used the dense LAPACK LU (small
        restricted systems under the ``auto``/``dense`` engine modes)
        instead of ``splu``; always ``<= factorizations``.
    equivalent_nnz:
        Non-zeros of the systems factorized, summed over builds.  Dense
        factorizations report the *sparse* non-zero count of the source
        system, keeping the unit backend-invariant (the linear-solve analog
        of ``UniformizationStats.equivalent_nnz``).
    factor_seconds, solve_seconds:
        Wall-clock seconds spent building factorizations / running
        triangular (or LAPACK) solves.
    """

    factorizations: int = 0
    solves: int = 0
    columns: int = 0
    dense_factorizations: int = 0
    equivalent_nnz: int = 0
    factor_seconds: float = 0.0
    solve_seconds: float = 0.0

    def reset(self) -> None:
        self.factorizations = 0
        self.solves = 0
        self.columns = 0
        self.dense_factorizations = 0
        self.equivalent_nnz = 0
        self.factor_seconds = 0.0
        self.solve_seconds = 0.0

    def absorb(self, other: "LinearSolveStats") -> None:
        self.factorizations += other.factorizations
        self.solves += other.solves
        self.columns += other.columns
        self.dense_factorizations += other.dense_factorizations
        self.equivalent_nnz += other.equivalent_nnz
        self.factor_seconds += other.factor_seconds
        self.solve_seconds += other.solve_seconds


class Factorization(SparseFactorization):
    """One ``splu`` factorization, reusable for stacked right-hand sides.

    Retained name of the legacy class; the implementation moved to
    :class:`repro.ctmc.engines.SparseFactorization` so the engine layer and
    this solver share it (and its dense LAPACK sibling,
    :class:`repro.ctmc.engines.DenseFactorization`).
    """

    __slots__ = ()


class SolverEngine:
    """Factorize once per (chain fingerprint, system token), solve many columns.

    Parameters
    ----------
    artifacts:
        Optional :class:`repro.service.ArtifactCache` (any object with its
        ``get_or_create(kind, key, factory)`` method works).  When given,
        factorizations — and whatever else callers store through
        :meth:`cached` (BSCC decompositions, stationary vectors, embedded
        matrices) — live in the process-wide store, keyed by content
        fingerprints, and survive across engines, sessions and service
        flushes.  Without it the engine keeps a private per-instance store,
        so repeated queries through one engine still share factorizations
        while independent calls stay isolated (the per-call reference
        behaviour).
    stats:
        Optional shared :class:`LinearSolveStats`; the analysis session and
        the scenario service aggregate several engines into one object.
    mode:
        Engine mode for factorizations.  ``"auto"`` (the default) uses the
        dense LAPACK LU for systems of order ≤
        :data:`repro.ctmc.engines.DENSE_SOLVE_LIMIT` and ``splu`` beyond;
        ``"sparse"``/``"numba"`` always ``splu``; ``"dense"`` always LAPACK.
        Forced (non-``auto``) modes prefix their cache tokens so they never
        collide with the shared ``auto`` entries in a process-wide cache.
    """

    def __init__(
        self,
        artifacts: Any | None = None,
        stats: LinearSolveStats | None = None,
        mode: str = "auto",
    ) -> None:
        self.artifacts = artifacts
        self.stats = stats if stats is not None else LinearSolveStats()
        self.mode = normalise_engine_mode(mode)
        self._local: dict[tuple, Any] = {}

    # ------------------------------------------------------------------
    def cached(self, kind: str, key: tuple, factory: Callable[[], Any]) -> Any:
        """Fetch-or-build an artifact in the backing store.

        The generic hook the long-run measures use for every reusable
        intermediate (kinds ``factorization``, ``bscc``, ``stationary``,
        ``embedded``); routed to the artifact cache when one is attached.
        """
        if self.artifacts is not None:
            return self.artifacts.get_or_create(kind, key, factory)
        token = (kind, key)
        if token not in self._local:
            self._local[token] = factory()
        return self._local[token]

    def build_factorization(
        self, matrix: sparse.spmatrix
    ) -> SparseFactorization | DenseFactorization:
        """Factorize ``matrix`` unconditionally (counted, never cached).

        The backend follows :attr:`mode`; either way the build counts once
        in ``stats.factorizations``, so factorization-count gates are
        backend-invariant.
        """
        size = matrix.shape[0]
        use_dense = self.mode == "dense" or (
            self.mode == "auto" and size <= DENSE_SOLVE_LIMIT
        )
        started = time.perf_counter()
        factorization: SparseFactorization | DenseFactorization
        if use_dense:
            factorization = DenseFactorization(matrix)
            self.stats.dense_factorizations += 1
        else:
            factorization = Factorization(matrix)
        self.stats.factorizations += 1
        self.stats.equivalent_nnz += factorization.nnz
        self.stats.factor_seconds += time.perf_counter() - started
        return factorization

    def factorization(
        self,
        chain: CTMC,
        token: bytes,
        builder: Callable[[], sparse.spmatrix],
    ) -> Factorization:
        """The cached LU of the system ``builder()`` of ``chain``.

        ``token`` must determine the system matrix given the chain — the
        callers here always derive it from a system-family prefix plus the
        :func:`subset_signature` of the restricted state set.
        """
        if self.mode != "auto":
            token = self.mode.encode() + b"|" + token
        return self.cached(
            "factorization",
            (chain.fingerprint, token),
            lambda: self.build_factorization(builder()),
        )

    def solve(self, factorization: Factorization, rhs: np.ndarray) -> np.ndarray:
        """Solve against a factorization, counting the RHS columns."""
        rhs = np.asarray(rhs, dtype=float)
        self.stats.solves += 1
        self.stats.columns += 1 if rhs.ndim == 1 else rhs.shape[1]
        started = time.perf_counter()
        solution = factorization.solve(rhs)
        self.stats.solve_seconds += time.perf_counter() - started
        return solution


# ----------------------------------------------------------------------
# expected reachability rewards (CSRL R=?[F phi])
# ----------------------------------------------------------------------
def reachability_reward_values(
    chain: CTMC,
    target: np.ndarray,
    rewards_matrix: np.ndarray,
    engine: SolverEngine | None = None,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """Per-state expected accumulated reward until first reaching ``target``.

    ``rewards_matrix`` is a ``(num_states, k)`` block of reward-rate
    columns; the result has the same shape.  All ``k`` columns share one
    cached LU factorization of the generator restricted to the states that
    reach the target with probability one — the batching the analysis
    executor exploits for stacked ``R=?[F phi]`` queries.  States that miss
    the target with positive probability have infinite expected reward;
    target states accumulate nothing.
    """
    from repro.ctmc.dtmc import unbounded_reachability

    engine = engine if engine is not None else SolverEngine()
    target_mask = as_state_mask(chain, target)
    rewards_matrix = np.asarray(rewards_matrix, dtype=float)
    if rewards_matrix.ndim != 2 or rewards_matrix.shape[0] != chain.num_states:
        raise CTMCError("rewards_matrix must be a (num_states, k) column block")

    reach = unbounded_reachability(chain, target_mask, engine=engine)
    certain = reach >= 1.0 - tolerance
    values = np.full((chain.num_states, rewards_matrix.shape[1]), np.inf)
    values[target_mask] = 0.0

    solve_mask = certain & ~target_mask
    solve_states = np.flatnonzero(solve_mask)
    if solve_states.size:
        # The restricted generator is non-singular: every solve state
        # reaches the (absorbing-for-this-purpose) target with probability
        # one, and the set is closed — a state with reach probability 1
        # cannot have a positive-rate successor with reach < 1.
        token = b"reach-reward|" + subset_signature(solve_mask)
        factorization = engine.factorization(
            chain,
            token,
            lambda: chain.generator_matrix()[np.ix_(solve_states, solve_states)],
        )
        solution = engine.solve(factorization, -rewards_matrix[solve_states])
        values[solve_states] = np.asarray(solution, dtype=float).reshape(
            solve_states.size, -1
        )
    return values


def expected_values_under(
    initial_block: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """``initial_block @ values`` with infinity-aware accumulation.

    ``values`` may contain ``inf`` entries (states that miss a reachability
    target); a plain dot product would turn ``0 * inf`` into ``nan``.  Any
    initial distribution placing positive mass on an infinite-value state
    has an infinite expectation; the finite part is accumulated normally.
    """
    initial_block = np.asarray(initial_block, dtype=float)
    values = np.asarray(values, dtype=float)
    infinite = ~np.isfinite(values)
    expected = initial_block @ np.where(infinite, 0.0, values)
    touches_infinity = (initial_block > 0.0) @ infinite.astype(float) > 0.0
    expected[touches_infinity] = np.inf
    return expected


def reachability_reward_reference(
    chain: CTMC,
    rewards: np.ndarray,
    target: np.ndarray,
    initial_distribution: np.ndarray | None = None,
) -> float:
    """Per-call reference for ``R=?[F target]`` (one fresh ``spsolve``).

    The pre-engine implementation, retained verbatim so tests and the
    ``bench_perf_linsolve`` gates can cross-check the batched/cached path
    against an independent solve.
    """
    from repro.ctmc.dtmc import unbounded_reachability

    target_mask = as_state_mask(chain, target)
    rewards = np.asarray(rewards, dtype=float)
    initial = (
        chain.initial_distribution
        if initial_distribution is None
        else np.asarray(initial_distribution, dtype=float)
    )

    reach = unbounded_reachability(chain, target_mask)
    if np.any((initial > 0) & (reach < 1.0 - 1e-9)):
        return float("inf")

    non_target = np.flatnonzero(~target_mask)
    if non_target.size == 0:
        return 0.0
    # Restrict to the states this initial distribution can actually visit
    # with finite expected reward; the complement never carries mass here.
    certain = np.flatnonzero((reach >= 1.0 - 1e-9) & ~target_mask)
    generator = chain.generator_matrix()
    sub = generator[np.ix_(certain, certain)].tocsc()
    solution = sparse_linalg.spsolve(sub, -rewards[certain])
    values = np.zeros(chain.num_states)
    values[certain] = np.asarray(solution, dtype=float)
    return float(initial @ values)
