"""Availability measures.

Availability is the long-run probability that the system is operational
(the fault tree does not hold), assuming components are repaired — the CSL
query ``S=? [ "operational" ]`` of the paper's Section 3.

The paper evaluates each process line separately and combines them with the
inclusion–exclusion formula

.. math::  A_{1 \\cup 2} = A_1 + A_2 - A_1 A_2 ,

valid because the two lines share no components and are therefore
statistically independent; :func:`combined_availability` implements exactly
this combination for any number of independent subsystems.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis import AnalysisSession, MeasureKind, MeasureRequest
from repro.arcade.model import ArcadeModel
from repro.arcade.statespace import ArcadeStateSpace, build_state_space


def _as_state_space(system: ArcadeStateSpace | ArcadeModel) -> ArcadeStateSpace:
    if isinstance(system, ArcadeStateSpace):
        return system
    return build_state_space(system)


def steady_state_availability_request(
    system: ArcadeStateSpace | ArcadeModel, tag=None
) -> MeasureRequest:
    """Build the :class:`~repro.analysis.MeasureRequest` behind availability.

    Submit several of these (different lines, repair strategies) to one
    :class:`~repro.analysis.AnalysisSession` — or the scenario service — so
    the whole availability table shares cached BSCC decompositions,
    stationary solves and LU factorizations; this is how the case study's
    Table 2 rides the warm path.
    """
    space = _as_state_space(system)
    return MeasureRequest(
        chain=space.chain,
        times=(),
        kind=MeasureKind.STEADY_STATE,
        target="operational",
        tag=tag,
    )


def steady_state_availability(
    system: ArcadeStateSpace | ArcadeModel, *, artifacts=None
) -> float:
    """Long-run probability that the system is operational.

    Equivalent to checking ``S=? [ "operational" ]`` on the model's CTMC.
    A thin one-request :class:`~repro.analysis.AnalysisSession` wrapper;
    pass ``artifacts`` (a :class:`repro.service.ArtifactCache`) to reuse
    BSCC decompositions and factorizations across calls.
    """
    session = AnalysisSession(artifacts=artifacts)
    index = session.add(steady_state_availability_request(system))
    return float(session.execute()[index].squeezed[0])


def steady_state_unavailability(
    system: ArcadeStateSpace | ArcadeModel, *, artifacts=None
) -> float:
    """Long-run probability that the system is down (``S=? [ "down" ]``)."""
    return 1.0 - steady_state_availability(system, artifacts=artifacts)


def combined_availability(availabilities: Iterable[float]) -> float:
    """Availability of a union of independent subsystems.

    The combined system is available when *at least one* subsystem is
    available; independence gives
    ``1 - Π (1 - A_i)``, the inclusion–exclusion formula quoted in Section 5
    of the paper for the two process lines.
    """
    unavailability = 1.0
    count = 0
    for availability in availabilities:
        if not 0.0 <= availability <= 1.0:
            raise ValueError(f"availability {availability} outside [0, 1]")
        unavailability *= 1.0 - availability
        count += 1
    if count == 0:
        raise ValueError("combined_availability needs at least one subsystem")
    return 1.0 - unavailability
