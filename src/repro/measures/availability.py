"""Availability measures.

Availability is the long-run probability that the system is operational
(the fault tree does not hold), assuming components are repaired — the CSL
query ``S=? [ "operational" ]`` of the paper's Section 3.

The paper evaluates each process line separately and combines them with the
inclusion–exclusion formula

.. math::  A_{1 \\cup 2} = A_1 + A_2 - A_1 A_2 ,

valid because the two lines share no components and are therefore
statistically independent; :func:`combined_availability` implements exactly
this combination for any number of independent subsystems.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.arcade.model import ArcadeModel
from repro.arcade.statespace import ArcadeStateSpace, build_state_space
from repro.ctmc import steady_state_distribution


def _as_state_space(system: ArcadeStateSpace | ArcadeModel) -> ArcadeStateSpace:
    if isinstance(system, ArcadeStateSpace):
        return system
    return build_state_space(system)


def steady_state_availability(system: ArcadeStateSpace | ArcadeModel) -> float:
    """Long-run probability that the system is operational.

    Equivalent to checking ``S=? [ "operational" ]`` on the model's CTMC.
    """
    space = _as_state_space(system)
    distribution = steady_state_distribution(space.chain)
    mask = space.chain.label_mask("operational")
    return float(distribution[mask].sum())


def steady_state_unavailability(system: ArcadeStateSpace | ArcadeModel) -> float:
    """Long-run probability that the system is down (``S=? [ "down" ]``)."""
    return 1.0 - steady_state_availability(system)


def combined_availability(availabilities: Iterable[float]) -> float:
    """Availability of a union of independent subsystems.

    The combined system is available when *at least one* subsystem is
    available; independence gives
    ``1 - Π (1 - A_i)``, the inclusion–exclusion formula quoted in Section 5
    of the paper for the two process lines.
    """
    unavailability = 1.0
    count = 0
    for availability in availabilities:
        if not 0.0 <= availability <= 1.0:
            raise ValueError(f"availability {availability} outside [0, 1]")
        unavailability *= 1.0 - availability
        count += 1
    if count == 0:
        raise ValueError("combined_availability needs at least one subsystem")
    return 1.0 - unavailability
