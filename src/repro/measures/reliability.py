"""Reliability measures.

Reliability is the probability of *continuity of correct service*: no system
failure within a mission time ``t``.  Following the paper (Section 3),

.. math::

   P_{\\text{Reliability}}(t) = 1 - P\\big[\\, \\text{true } U^{\\le t}\\;
   S_{\\text{down}} \\big]

evaluated on the model *without repairs* — reliability "does not consider
repairs, hence we do not distinguish between strategies" (Section 5).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.analysis import MeasureKind, MeasureRequest
from repro.arcade.model import ArcadeModel
from repro.arcade.statespace import ArcadeStateSpace, build_state_space
from repro.ctmc import time_bounded_reachability


def _reliability_space(system: ArcadeStateSpace | ArcadeModel) -> ArcadeStateSpace:
    """Return a repair-free state space for ``system``.

    If an already-expanded state space *with* repairs is passed, the
    underlying model is re-expanded without repair transitions.
    """
    if isinstance(system, ArcadeStateSpace):
        if not system.with_repairs:
            return system
        return build_state_space(system.model, with_repairs=False)
    return build_state_space(system, with_repairs=False)


def unreliability_request(
    system: ArcadeStateSpace | ArcadeModel,
    times: Sequence[float] | np.ndarray,
    tag=None,
) -> MeasureRequest:
    """Build the :class:`~repro.analysis.MeasureRequest` behind :func:`unreliability`.

    Submit several of these (e.g. both process lines) to one
    :class:`~repro.analysis.AnalysisSession`; ``reliability`` is ``1 -``
    the resulting curve.
    """
    space = _reliability_space(system)
    return MeasureRequest(
        chain=space.chain,
        times=times,
        kind=MeasureKind.REACHABILITY,
        target="down",
        tag=tag,
    )


def unreliability(
    system: ArcadeStateSpace | ArcadeModel, time: float | Sequence[float]
) -> float | np.ndarray:
    """Probability of a system failure within ``time`` (no repairs)."""
    space = _reliability_space(system)
    return time_bounded_reachability(space.chain, "down", time)


def reliability(
    system: ArcadeStateSpace | ArcadeModel, time: float | Sequence[float]
) -> float | np.ndarray:
    """Probability of *no* system failure within ``time`` (no repairs)."""
    result = unreliability(system, time)
    if np.isscalar(result):
        return 1.0 - float(result)
    return 1.0 - np.asarray(result)


def reliability_curve(
    system: ArcadeStateSpace | ArcadeModel,
    horizon: float,
    points: int = 101,
) -> tuple[np.ndarray, np.ndarray]:
    """Reliability over an evenly spaced time grid ``[0, horizon]``.

    Returns ``(times, reliabilities)`` — the series plotted in Figure 3 of
    the paper.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if points < 2:
        raise ValueError("need at least two grid points")
    times = np.linspace(0.0, horizon, points)
    return times, reliability(system, times)
