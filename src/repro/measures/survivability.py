"""Quantitative survivability (Given-Occurrence-Of-Disaster analysis).

Survivability is "the ability of a system to recover to a predefined
service level in a timely manner after the occurrence of disasters"
(Cloth & Haverkort, QEST 2005, refined in the DSN 2010 paper).  Concretely:

1. build the GOOD model — the ordinary CTMC of the system, but *started* in
   the state induced by the disaster (all the disaster's components failed;
   repair queues ordered by component priority, because the actual failure
   order is unknown),
2. for a service threshold ``x``, compute
   ``P[ true U^{<= t} S_{sl(x)} ]`` — the probability of reaching a state
   with service level at least ``x`` within ``t`` hours.

:func:`survivability_curves_by_interval` evaluates one curve per service
interval, which is exactly what Figures 4/5 (Line 1) and 8/9 (Line 2) of
the paper show.
"""

from __future__ import annotations

from collections.abc import Sequence
from fractions import Fraction

import numpy as np

from repro.analysis import AnalysisSession, MeasureKind, MeasureRequest
from repro.arcade.model import ArcadeModel, Disaster
from repro.arcade.statespace import ArcadeStateSpace, build_state_space


def _as_state_space(system: ArcadeStateSpace | ArcadeModel) -> ArcadeStateSpace:
    if isinstance(system, ArcadeStateSpace):
        return system
    return build_state_space(system)


def survivability_request(
    system: ArcadeStateSpace | ArcadeModel,
    disaster: Disaster | str,
    service_level: float | Fraction,
    times: Sequence[float] | np.ndarray,
    tag=None,
) -> MeasureRequest:
    """Build the :class:`~repro.analysis.MeasureRequest` behind :func:`survivability`.

    Submit several of these (different disasters, service levels or repair
    strategies) to one :class:`~repro.analysis.AnalysisSession` to share
    uniformization sweeps across the whole curve family; requests on the
    same chain with the same target set and grid collapse into one sweep
    with all disasters batched.
    """
    space = _as_state_space(system)
    if not space.with_repairs:
        raise ValueError("survivability requires a model with repair transitions")
    return MeasureRequest(
        chain=space.chain,
        times=times,
        kind=MeasureKind.REACHABILITY,
        target=space.states_with_service_at_least(service_level),
        initial_distributions=space.initial_distribution_for_disaster(disaster),
        tag=tag,
    )


def survivability(
    system: ArcadeStateSpace | ArcadeModel,
    disaster: Disaster | str,
    service_level: float | Fraction,
    time: float | Sequence[float],
) -> float | np.ndarray:
    """Probability of recovering to ``service_level`` within ``time`` after ``disaster``.

    Parameters
    ----------
    system:
        The Arcade model or an already-expanded state space (must include
        repair transitions — recovering without repairs is impossible).
    disaster:
        The disaster (or its name) defining the GOOD start state.
    service_level:
        The service threshold ``x``; the target set is ``S_{sl(x)}``.
    time:
        A single time bound or a sequence of bounds.
    """
    scalar_input = np.isscalar(time)
    times = [float(time)] if scalar_input else [float(value) for value in time]
    session = AnalysisSession()
    index = session.add(survivability_request(system, disaster, service_level, times))
    values = session.execute()[index].squeezed
    if scalar_input:
        return float(values[0])
    return values


def survivability_curve(
    system: ArcadeStateSpace | ArcadeModel,
    disaster: Disaster | str,
    service_level: float | Fraction,
    horizon: float,
    points: int = 101,
) -> tuple[np.ndarray, np.ndarray]:
    """Survivability over an evenly spaced time grid ``[0, horizon]``.

    Returns ``(times, probabilities)``.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if points < 2:
        raise ValueError("need at least two grid points")
    times = np.linspace(0.0, horizon, points)
    values = survivability(system, disaster, service_level, times)
    return times, np.asarray(values)


def survivability_curves_by_interval(
    system: ArcadeStateSpace | ArcadeModel,
    disaster: Disaster | str,
    horizon: float,
    points: int = 101,
) -> dict[tuple[Fraction, Fraction], tuple[np.ndarray, np.ndarray]]:
    """One survivability curve per service interval of the model.

    The keys are the service intervals (X1, X2, ... of the paper); the value
    of each is the ``(times, probabilities)`` curve for any threshold inside
    that interval (represented by its lower endpoint).
    """
    space = _as_state_space(system)
    intervals = space.model.effective_service_tree().service_intervals()
    times = np.linspace(0.0, horizon, points)
    session = AnalysisSession()
    indices = {
        interval: session.add(
            survivability_request(space, disaster, interval[0], times, tag=interval)
        )
        for interval in intervals
    }
    results = session.execute()
    return {
        interval: (times.copy(), results[index].squeezed)
        for interval, index in indices.items()
    }
