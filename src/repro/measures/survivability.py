"""Quantitative survivability (Given-Occurrence-Of-Disaster analysis).

Survivability is "the ability of a system to recover to a predefined
service level in a timely manner after the occurrence of disasters"
(Cloth & Haverkort, QEST 2005, refined in the DSN 2010 paper).  Concretely:

1. build the GOOD model — the ordinary CTMC of the system, but *started* in
   the state induced by the disaster (all the disaster's components failed;
   repair queues ordered by component priority, because the actual failure
   order is unknown),
2. for a service threshold ``x``, compute
   ``P[ true U^{<= t} S_{sl(x)} ]`` — the probability of reaching a state
   with service level at least ``x`` within ``t`` hours.

:func:`survivability_curves_by_interval` evaluates one curve per service
interval, which is exactly what Figures 4/5 (Line 1) and 8/9 (Line 2) of
the paper show.
"""

from __future__ import annotations

from collections.abc import Sequence
from fractions import Fraction

import numpy as np

from repro.arcade.model import ArcadeModel, Disaster
from repro.arcade.statespace import ArcadeStateSpace, build_state_space
from repro.ctmc import time_bounded_reachability


def _as_state_space(system: ArcadeStateSpace | ArcadeModel) -> ArcadeStateSpace:
    if isinstance(system, ArcadeStateSpace):
        return system
    return build_state_space(system)


def survivability(
    system: ArcadeStateSpace | ArcadeModel,
    disaster: Disaster | str,
    service_level: float | Fraction,
    time: float | Sequence[float],
) -> float | np.ndarray:
    """Probability of recovering to ``service_level`` within ``time`` after ``disaster``.

    Parameters
    ----------
    system:
        The Arcade model or an already-expanded state space (must include
        repair transitions — recovering without repairs is impossible).
    disaster:
        The disaster (or its name) defining the GOOD start state.
    service_level:
        The service threshold ``x``; the target set is ``S_{sl(x)}``.
    time:
        A single time bound or a sequence of bounds.
    """
    space = _as_state_space(system)
    if not space.with_repairs:
        raise ValueError("survivability requires a model with repair transitions")
    target = space.states_with_service_at_least(service_level)
    initial = space.initial_distribution_for_disaster(disaster)
    return time_bounded_reachability(
        space.chain, target, time, initial_distribution=initial
    )


def survivability_curve(
    system: ArcadeStateSpace | ArcadeModel,
    disaster: Disaster | str,
    service_level: float | Fraction,
    horizon: float,
    points: int = 101,
) -> tuple[np.ndarray, np.ndarray]:
    """Survivability over an evenly spaced time grid ``[0, horizon]``.

    Returns ``(times, probabilities)``.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if points < 2:
        raise ValueError("need at least two grid points")
    times = np.linspace(0.0, horizon, points)
    values = survivability(system, disaster, service_level, times)
    return times, np.asarray(values)


def survivability_curves_by_interval(
    system: ArcadeStateSpace | ArcadeModel,
    disaster: Disaster | str,
    horizon: float,
    points: int = 101,
) -> dict[tuple[Fraction, Fraction], tuple[np.ndarray, np.ndarray]]:
    """One survivability curve per service interval of the model.

    The keys are the service intervals (X1, X2, ... of the paper); the value
    of each is the ``(times, probabilities)`` curve for any threshold inside
    that interval (represented by its lower endpoint).
    """
    space = _as_state_space(system)
    intervals = space.model.effective_service_tree().service_intervals()
    curves: dict[tuple[Fraction, Fraction], tuple[np.ndarray, np.ndarray]] = {}
    for interval in intervals:
        lower, _upper = interval
        curves[interval] = survivability_curve(space, disaster, lower, horizon, points)
    return curves
