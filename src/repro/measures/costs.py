"""Repair-cost measures (instantaneous and accumulated cost).

The cost annotations of an Arcade model (idle crews, failed components)
become a state-reward structure named ``"cost"``; on top of it the paper
uses two CSRL measures:

* **instantaneous cost** ``R=?[ I=t ]`` — the expected cost *rate* at time
  ``t`` (Figures 6 and 10),
* **accumulated cost** ``R=?[ C<=t ]`` — the expected cost accumulated in
  ``[0, t]`` (Figures 7 and 11).

Both are typically evaluated on the GOOD model, i.e. starting right after a
disaster, which is what the ``disaster`` parameter selects; without it the
measures describe normal operation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.analysis import MeasureKind, MeasureRequest
from repro.arcade.model import ArcadeModel, Disaster
from repro.arcade.statespace import ArcadeStateSpace, build_state_space
from repro.ctmc.rewards import (
    cumulative_reward,
    cumulative_reward_curve,
    instantaneous_reward,
    instantaneous_reward_curve,
)


def _space_and_initial(
    system: ArcadeStateSpace | ArcadeModel, disaster: Disaster | str | None
) -> tuple[ArcadeStateSpace, np.ndarray | None]:
    space = system if isinstance(system, ArcadeStateSpace) else build_state_space(system)
    if disaster is None:
        return space, None
    return space, space.initial_distribution_for_disaster(disaster)


def _cost_request(
    system: ArcadeStateSpace | ArcadeModel,
    times: Sequence[float] | np.ndarray,
    disaster: Disaster | str | None,
    kind: MeasureKind,
    tag,
) -> MeasureRequest:
    space, initial = _space_and_initial(system, disaster)
    rewards = space.reward_model.reward_structure("cost").state_rewards
    return MeasureRequest(
        chain=space.chain,
        times=times,
        kind=kind,
        rewards=rewards,
        initial_distributions=initial,
        tag=tag,
    )


def instantaneous_cost_request(
    system: ArcadeStateSpace | ArcadeModel,
    times: Sequence[float] | np.ndarray,
    disaster: Disaster | str | None = None,
    tag=None,
) -> MeasureRequest:
    """Build the :class:`~repro.analysis.MeasureRequest` behind the cost-rate curve.

    Submit several of these to one :class:`~repro.analysis.AnalysisSession`
    to share the per-chain sweeps of a whole cost figure.
    """
    return _cost_request(
        system, times, disaster, MeasureKind.INSTANTANEOUS_REWARD, tag
    )


def accumulated_cost_request(
    system: ArcadeStateSpace | ArcadeModel,
    times: Sequence[float] | np.ndarray,
    disaster: Disaster | str | None = None,
    tag=None,
) -> MeasureRequest:
    """Build the :class:`~repro.analysis.MeasureRequest` behind the accumulated-cost curve."""
    return _cost_request(system, times, disaster, MeasureKind.CUMULATIVE_REWARD, tag)


def instantaneous_cost(
    system: ArcadeStateSpace | ArcadeModel,
    time: float,
    disaster: Disaster | str | None = None,
) -> float:
    """Expected cost rate at time ``time`` (``R{"cost"}=?[ I=t ]``)."""
    space, initial = _space_and_initial(system, disaster)
    return instantaneous_reward(space.reward_model, time, "cost", initial)


def instantaneous_cost_curve(
    system: ArcadeStateSpace | ArcadeModel,
    horizon: float,
    disaster: Disaster | str | None = None,
    points: int = 101,
) -> tuple[np.ndarray, np.ndarray]:
    """Instantaneous cost over an evenly spaced grid ``[0, horizon]``."""
    space, initial = _space_and_initial(system, disaster)
    times = np.linspace(0.0, horizon, points)
    values = instantaneous_reward_curve(space.reward_model, times, "cost", initial)
    return times, values


def accumulated_cost(
    system: ArcadeStateSpace | ArcadeModel,
    time: float,
    disaster: Disaster | str | None = None,
) -> float:
    """Expected cost accumulated in ``[0, time]`` (``R{"cost"}=?[ C<=t ]``)."""
    space, initial = _space_and_initial(system, disaster)
    return cumulative_reward(space.reward_model, time, "cost", initial)


def accumulated_cost_curve(
    system: ArcadeStateSpace | ArcadeModel,
    horizon: float,
    disaster: Disaster | str | None = None,
    points: int = 51,
) -> tuple[np.ndarray, np.ndarray]:
    """Accumulated cost over an evenly spaced grid ``[0, horizon]``."""
    space, initial = _space_and_initial(system, disaster)
    times = np.linspace(0.0, horizon, points)
    values = cumulative_reward_curve(space.reward_model, times, "cost", initial)
    return times, values
