"""Quantitative service levels and service intervals.

The paper's quantitative survivability measure is parameterised by a
*service level* ``x ∈ [0, 1]``: the set ``S_{sl(x)}`` collects the states
whose service-tree value is at least ``x``.  Because the service tree only
attains finitely many values, the thresholds fall into finitely many
*service intervals* (called X1, X2, ... in Section 5) within which the
survivability curve does not change; these helpers expose both.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.arcade.model import ArcadeModel
from repro.arcade.statespace import ArcadeStateSpace, build_state_space
from repro.ctmc.linsolve import SolverEngine
from repro.ctmc.steady_state import steady_state_distribution


def _as_state_space(system: ArcadeStateSpace | ArcadeModel) -> ArcadeStateSpace:
    if isinstance(system, ArcadeStateSpace):
        return system
    return build_state_space(system)


def service_levels(system: ArcadeStateSpace | ArcadeModel) -> tuple[Fraction, ...]:
    """All attainable service levels of the model, sorted ascending."""
    if isinstance(system, ArcadeStateSpace):
        tree = system.model.effective_service_tree()
    else:
        tree = system.effective_service_tree()
    return tree.attainable_levels()


def service_intervals(system: ArcadeStateSpace | ArcadeModel) -> tuple[tuple[Fraction, Fraction], ...]:
    """The service intervals X1, X2, ... (half-open; the last is ``[1, 1]``).

    Every threshold within one interval induces the same set ``S_{sl(x)}``
    and hence the same survivability curve.
    """
    if isinstance(system, ArcadeStateSpace):
        tree = system.model.effective_service_tree()
    else:
        tree = system.effective_service_tree()
    return tree.service_intervals()


def states_with_service_at_least(
    system: ArcadeStateSpace | ArcadeModel, threshold: float | Fraction
) -> np.ndarray:
    """State indices of ``S_{sl(threshold)}`` in the expanded state space."""
    space = _as_state_space(system)
    return space.states_with_service_at_least(threshold)


def service_distribution(
    system: ArcadeStateSpace | ArcadeModel,
    *,
    engine: SolverEngine | None = None,
    artifacts=None,
) -> dict[Fraction, float]:
    """Long-run probability of each attainable service level.

    A convenient summary that does not appear verbatim in the paper but is a
    direct by-product of its machinery: the steady-state distribution grouped
    by service level.  Like the transient measures, the computation accepts a
    shared handle — either an existing
    :class:`~repro.ctmc.linsolve.SolverEngine` or an ``artifacts`` cache
    (:class:`repro.service.ArtifactCache`) — so repeated calls reuse the
    chain's BSCC decomposition and stationary solve instead of recomputing
    them per call.
    """
    space = _as_state_space(system)
    if engine is None:
        engine = SolverEngine(artifacts=artifacts)
    distribution = steady_state_distribution(space.chain, engine=engine)
    result: dict[Fraction, float] = {}
    for index, level in enumerate(space.service_levels):
        result[level] = result.get(level, 0.0) + float(distribution[index])
    return dict(sorted(result.items()))
