"""User-facing dependability and performability measures.

This package is the API layer a user of the library interacts with: every
measure of the paper's Section 3 is available as a plain function over an
:class:`repro.arcade.ArcadeStateSpace` (or an :class:`repro.arcade.ArcadeModel`,
which is expanded on demand):

* :func:`~repro.measures.availability.steady_state_availability` —
  ``S=? [ "operational" ]``,
* :func:`~repro.measures.reliability.reliability` /
  :func:`~repro.measures.reliability.unreliability` —
  ``1 - P=? [ true U<=t "down" ]`` on the repair-free model,
* :func:`~repro.measures.service.service_levels` and
  :func:`~repro.measures.service.service_intervals` — the quantitative
  service levels and the intervals X1, X2, ... they induce,
* :func:`~repro.measures.survivability.survivability` — the probability of
  recovering to a given service level within ``t`` after a disaster
  (Given-Occurrence-Of-Disaster model),
* :func:`~repro.measures.costs.instantaneous_cost` and
  :func:`~repro.measures.costs.accumulated_cost` — ``R=?[I=t]`` and
  ``R=?[C<=t]`` over the cost reward structure.

Every per-call function is a thin wrapper over a one-request
:class:`repro.analysis.AnalysisSession`.  To compute a whole curve family
(several strategies, disasters, service levels) without redundant chain
traversals, build the requests with the ``*_request`` builders —
:func:`~repro.measures.survivability.survivability_request`,
:func:`~repro.measures.reliability.unreliability_request`,
:func:`~repro.measures.costs.instantaneous_cost_request`,
:func:`~repro.measures.costs.accumulated_cost_request`,
:func:`~repro.measures.availability.steady_state_availability_request` —
and submit them to one session (see :mod:`repro.analysis`).  The
availability builder is the long-run member of the family: its requests
ride the cached linear-solver engine instead of a uniformization sweep, so
whole availability tables share BSCC decompositions and factorizations.
"""

from repro.measures.availability import (
    combined_availability,
    steady_state_availability,
    steady_state_availability_request,
    steady_state_unavailability,
)
from repro.measures.service import service_distribution
from repro.measures.reliability import (
    reliability,
    reliability_curve,
    unreliability,
    unreliability_request,
)
from repro.measures.service import service_intervals, service_levels, states_with_service_at_least
from repro.measures.survivability import (
    survivability,
    survivability_curve,
    survivability_curves_by_interval,
    survivability_request,
)
from repro.measures.costs import (
    accumulated_cost,
    accumulated_cost_curve,
    accumulated_cost_request,
    instantaneous_cost,
    instantaneous_cost_curve,
    instantaneous_cost_request,
)

__all__ = [
    "accumulated_cost",
    "accumulated_cost_curve",
    "accumulated_cost_request",
    "combined_availability",
    "instantaneous_cost",
    "instantaneous_cost_curve",
    "instantaneous_cost_request",
    "reliability",
    "reliability_curve",
    "service_distribution",
    "service_intervals",
    "service_levels",
    "states_with_service_at_least",
    "steady_state_availability",
    "steady_state_availability_request",
    "steady_state_unavailability",
    "survivability",
    "survivability_curve",
    "survivability_curves_by_interval",
    "survivability_request",
    "unreliability",
    "unreliability_request",
]
