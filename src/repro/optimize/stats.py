"""Work counters for the repair-policy optimizers.

:class:`OptimizerStats` plays the role :class:`repro.analysis.SessionStats`
plays for sweeps: every policy-iteration and rollout run records how many
exact policy evaluations it paid for, how many one-step action deviations it
scored, and how many uniformization sweeps those deviations actually cost
after coalescing (the rollout submits all candidates of a round as one
identity-block request, so ``K`` candidates ride ~1 shared sweep instead of
``K``).  The difference is :attr:`OptimizerStats.sweeps_saved` — the number
the benchmark gates on.

A process-wide aggregate (:func:`global_optimizer_stats`) feeds the
Prometheus ``/metrics`` dump of the scenario service, so operators see
optimizer work next to sweep and cache counters.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class OptimizerStats:
    """Counters for one (or many aggregated) optimizer runs.

    Attributes
    ----------
    policy_improvements:
        Greedy improvement rounds performed by policy iteration.
    rollout_iterations:
        Evaluate/score rounds performed by the rollout optimizer.
    policy_evaluations:
        Exact evaluations of a concrete policy: gain/bias solves (policy
        iteration) or identity-block value sweeps (rollout).
    baseline_evaluations:
        Fixed-strategy policies evaluated as comparison baselines.
    candidate_actions:
        One-step action deviations scored via Q-values.  Each would cost a
        full policy evaluation if submitted naively.
    coalesced_sweeps:
        Uniformization sweeps actually spent scoring those candidates (the
        rollout's per-round identity-block sweeps).
    cache_hits:
        Induced chains and evaluations served from the optimizer-level
        memo instead of being rebuilt (artifact-cache hits underneath are
        counted by :class:`repro.service.CacheStats` as usual).
    """

    policy_improvements: int = 0
    rollout_iterations: int = 0
    policy_evaluations: int = 0
    baseline_evaluations: int = 0
    candidate_actions: int = 0
    coalesced_sweeps: int = 0
    cache_hits: int = 0

    # ------------------------------------------------------------------
    @property
    def sweeps_saved(self) -> int:
        """Sweeps avoided by scoring candidates off shared value blocks."""
        return max(0, self.candidate_actions - self.coalesced_sweeps)

    def absorb(self, other: "OptimizerStats") -> None:
        for spec in fields(self):
            setattr(self, spec.name, getattr(self, spec.name) + getattr(other, spec.name))

    def reset(self) -> None:
        for spec in fields(self):
            setattr(self, spec.name, 0)

    def summary(self) -> str:
        return (
            f"optimizer: {self.policy_evaluations} policy evaluations, "
            f"{self.policy_improvements} improvement rounds, "
            f"{self.rollout_iterations} rollout iterations, "
            f"{self.candidate_actions} candidate deviations on "
            f"{self.coalesced_sweeps} coalesced sweeps "
            f"({self.sweeps_saved} sweeps saved), "
            f"{self.baseline_evaluations} baselines, {self.cache_hits} memo hits"
        )

    def metrics(self, prefix: str = "repro_optimizer") -> str:
        """Prometheus text-format counters (appended to ``/metrics``)."""
        counters = {
            "policy_improvements_total": self.policy_improvements,
            "rollout_iterations_total": self.rollout_iterations,
            "policy_evaluations_total": self.policy_evaluations,
            "baseline_evaluations_total": self.baseline_evaluations,
            "candidate_actions_total": self.candidate_actions,
            "coalesced_sweeps_total": self.coalesced_sweeps,
            "sweeps_saved_total": self.sweeps_saved,
            "memo_hits_total": self.cache_hits,
        }
        lines = []
        for name, value in counters.items():
            lines.append(f"# TYPE {prefix}_{name} counter")
            lines.append(f"{prefix}_{name} {value}")
        return "\n".join(lines)


#: Process-wide aggregate served by the scenario service's ``/metrics``.
_GLOBAL_STATS = OptimizerStats()


def global_optimizer_stats() -> OptimizerStats:
    """The process-wide :class:`OptimizerStats` aggregate."""
    return _GLOBAL_STATS
