"""CTMDP formulation of repair assignment for an Arcade model.

The paper *compares* five fixed repair strategies; this module turns repair
assignment into a decision problem.  A :class:`RepairCTMDP` expands an
:class:`~repro.arcade.model.ArcadeModel` into a controlled chain whose
states are the **sets of failed components** (one bitmask per state, the
mask *is* the state index) and whose actions decide, per repair unit, which
of its currently failed components the crews serve.  Failure dynamics are
action-independent; repair transitions and crew costs follow the chosen
assignment.

Action space
------------
Per state and repair unit the admissible choices are all non-empty subsets
of the unit's failed components with at most ``crew_limit`` members
(unlimited by default, i.e. up to one crew per component).  A unit with
failed components never idles completely — that weak work conservation
keeps every induced chain unichain (some repair always makes progress, so
the all-up state stays reachable), which exact average-cost policy
iteration relies on.  Individual crews may still idle: serving one
component while two have failed is a valid action, which is exactly what
makes the paper's ``FRF-1``/``FFF-1`` strategies *points in this policy
space* alongside ``DED``.

Fixed strategies as policies
----------------------------
:meth:`RepairCTMDP.strategy_policy` maps a
:class:`~repro.casestudy.facility.StrategyConfiguration` onto the action
that serves the first ``crews`` failed components in the strategy's policy
order (``DED`` serves everything).  Set states carry no arrival order, so
this is exact for the *preemptive* strategies: their queues are always
sorted by ``(policy_key, arrival)``, and components of the same class are
exchangeable (equal rates, class-symmetric fault/service trees), so the
queue-ordered chain and the set-based chain are ordinarily lumpable to the
same class-count process — the faithfulness tests verify the measures agree
to solver precision.  FCFS depends on genuine arrival order and has no
set-based representation; requesting it raises :class:`OptimizeError`.

Everything downstream (policy iteration, rollout) consumes the flat arrays
built here: ``action_state``/``action_cost`` indexed by a *flat action
index*, repair transition triplets indexed by flat action, and
state-indexed failure triplets — so scoring every candidate action of every
state is a handful of vectorized ``bincount``/``reduceat`` calls, not a
Python loop over the action space.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.arcade.model import ArcadeModel, Disaster
from repro.arcade.repair import RepairStrategy
from repro.casestudy.facility import StrategyConfiguration
from repro.ctmc import CTMC

#: Hard ceiling on ``2**num_components`` (the CTMDP state count).
MAX_CTMDP_STATES = 1 << 14

#: Hard ceiling on the admissible actions of any single state.
MAX_ACTIONS_PER_STATE = 4096


class OptimizeError(ValueError):
    """A model or policy the optimization subsystem cannot handle."""


@dataclass(frozen=True)
class RepairPolicy:
    """A deterministic stationary policy: one flat action index per state.

    ``actions[s]`` must lie inside state ``s``'s slice of the flat action
    arrays (:meth:`RepairCTMDP.validate_policy` checks).  Policies hash and
    compare by their action tuple, which is also the induced-chain memo key.
    """

    name: str
    actions: tuple[int, ...]


class RepairCTMDP:
    """The repair-assignment CTMDP of ``model`` (see module docstring).

    Parameters
    ----------
    model:
        The facility.  The model's own repair-unit strategies are ignored —
        they are *policies*, not dynamics — but its components, spare
        management, fault/service trees, disasters and cost model all carry
        over.  The crew pool priced by the cost model is normalised to the
        decision capacity: one crew per covered component when
        ``crew_limit`` is ``None``, else ``crew_limit`` crews per unit.
    crew_limit:
        Cap on the crews (served components) per unit and state.  ``None``
        admits every strategy up to dedicated repair.
    """

    def __init__(self, model: ArcadeModel, *, crew_limit: int | None = None) -> None:
        if crew_limit is not None and crew_limit < 1:
            raise OptimizeError(f"crew_limit must be >= 1, got {crew_limit}")
        if not model.repair_units:
            raise OptimizeError(f"model {model.name!r} has no repair units to optimize")
        names = model.component_names
        if (1 << len(names)) > MAX_CTMDP_STATES:
            raise OptimizeError(
                f"model {model.name!r} has {len(names)} components -> "
                f"{1 << len(names)} CTMDP states (limit {MAX_CTMDP_STATES})"
            )
        if crew_limit is None:
            model = model.with_repair_strategy(RepairStrategy.DEDICATED)
        else:
            model = model.with_repair_strategy(RepairStrategy.FCFS, crew_limit)
        self.model = model
        self.crew_limit = crew_limit
        self.component_names: tuple[str, ...] = names
        self._bit = {name: 1 << index for index, name in enumerate(names)}
        self.num_states = 1 << len(names)
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        model = self.model
        names = self.component_names
        components = model.components_by_name()
        cost_model = model.cost_model
        repair_rate = {name: components[name].repair_rate for name in names}

        # Per-unit crew-cost table indexed by busy count: the only
        # action-dependent cost term (idle = pool - busy).
        crew_cost: dict[str, list[float]] = {}
        capacity: dict[str, int] = {}
        for unit in model.repair_units:
            pool = unit.effective_crews()
            capacity[unit.name] = (
                min(self.crew_limit, len(unit.components))
                if self.crew_limit is not None
                else len(unit.components)
            )
            crew_cost[unit.name] = [
                cost_model.crew_cost(pool - busy, busy) for busy in range(pool + 1)
            ]

        num_states = self.num_states
        service_fractions: list[Fraction] = []
        down = np.zeros(num_states, dtype=bool)
        base_cost = np.zeros(num_states, dtype=float)
        failed_of_state: list[tuple[str, ...]] = []

        fail_src: list[int] = []
        fail_tgt: list[int] = []
        fail_rate: list[float] = []

        action_offsets = np.zeros(num_states + 1, dtype=np.int64)
        action_state: list[int] = []
        action_cost: list[float] = []
        action_served: list[tuple[tuple[str, ...], ...]] = []
        repair_action: list[int] = []
        repair_target: list[int] = []
        repair_rates: list[float] = []

        up_cost_of = {name: cost_model.up_cost(name) for name in names}
        down_cost_of = {name: cost_model.down_cost(name) for name in names}

        for mask in range(num_states):
            failed = tuple(name for name in names if mask & self._bit[name])
            up = [name for name in names if not (mask & self._bit[name])]
            failed_set = frozenset(failed)
            failed_of_state.append(failed)
            service_fractions.append(model.service_level(failed))
            down[mask] = model.is_down(failed)
            base_cost[mask] = sum(down_cost_of[name] for name in failed) + sum(
                up_cost_of[name] for name in up
            )

            for name in up:
                rate = model.effective_failure_rate(name, up)
                if rate > 0.0:
                    fail_src.append(mask)
                    fail_tgt.append(mask | self._bit[name])
                    fail_rate.append(rate)

            # Admissible served-subsets per unit, in component order.
            per_unit: list[list[tuple[str, ...]]] = []
            for unit in model.repair_units:
                queue = tuple(name for name in failed if name in unit.components)
                if not queue:
                    per_unit.append([()])
                    continue
                cap = min(capacity[unit.name], len(queue))
                choices = [
                    subset
                    for size in range(1, cap + 1)
                    for subset in itertools.combinations(queue, size)
                ]
                per_unit.append(choices)

            combos = list(itertools.product(*per_unit))
            if len(combos) > MAX_ACTIONS_PER_STATE:
                raise OptimizeError(
                    f"state {failed_set or 'all-up'} admits {len(combos)} actions "
                    f"(limit {MAX_ACTIONS_PER_STATE}); pass a smaller crew_limit"
                )
            flat_base = len(action_state)
            for served in combos:
                flat = len(action_state)
                action_state.append(mask)
                action_served.append(served)
                cost = base_cost[mask]
                for unit, subset in zip(model.repair_units, served):
                    cost += crew_cost[unit.name][len(subset)]
                    for name in subset:
                        repair_action.append(flat)
                        repair_target.append(mask & ~self._bit[name])
                        repair_rates.append(repair_rate[name])
                action_cost.append(cost)
            action_offsets[mask + 1] = flat_base + len(combos)

        self.action_offsets = action_offsets
        self.action_state = np.asarray(action_state, dtype=np.int64)
        self.action_cost = np.asarray(action_cost, dtype=float)
        self.action_served = action_served
        self.repair_action = np.asarray(repair_action, dtype=np.int64)
        self.repair_target = np.asarray(repair_target, dtype=np.int64)
        self.repair_rate = np.asarray(repair_rates, dtype=float)
        self.fail_src = np.asarray(fail_src, dtype=np.int64)
        self.fail_tgt = np.asarray(fail_tgt, dtype=np.int64)
        self.fail_rate = np.asarray(fail_rate, dtype=float)
        self.down = down
        self.base_cost = base_cost
        self.service_fractions = tuple(service_fractions)
        self.service_levels = np.asarray([float(f) for f in service_fractions])
        self.failed_of_state = tuple(failed_of_state)
        self.total_actions = len(action_state)
        self._chain_cache: dict[tuple[int, ...], CTMC] = {}

    # ------------------------------------------------------------------
    # state helpers
    # ------------------------------------------------------------------
    def state_of(self, failed_components: Iterable[str]) -> int:
        """The state index (= bitmask) of a failed-component set."""
        mask = 0
        for name in failed_components:
            try:
                mask |= self._bit[name]
            except KeyError:
                raise OptimizeError(
                    f"unknown component {name!r} in model {self.model.name!r}"
                ) from None
        return mask

    def disaster_state(self, disaster: Disaster | str) -> int:
        if isinstance(disaster, str):
            disaster = self.model.disaster(disaster)
        return self.state_of(disaster.failed_components)

    def states_with_service_at_least(self, threshold: float | Fraction) -> np.ndarray:
        """Boolean state mask, exact Fraction comparison like the queue space."""
        if not isinstance(threshold, Fraction):
            threshold = Fraction(threshold).limit_denominator(10**9)
        return np.asarray(
            [level >= threshold for level in self.service_fractions], dtype=bool
        )

    def actions_of(self, state: int) -> range:
        """The flat action indices admissible in ``state``."""
        return range(self.action_offsets[state], self.action_offsets[state + 1])

    def describe_action(self, flat_index: int) -> str:
        served = self.action_served[flat_index]
        parts = []
        for unit, subset in zip(self.model.repair_units, served):
            if subset:
                parts.append(f"{unit.name}->{{{','.join(subset)}}}")
        return " ".join(parts) if parts else "(idle)"

    def validate_policy(self, policy: RepairPolicy) -> None:
        if len(policy.actions) != self.num_states:
            raise OptimizeError(
                f"policy {policy.name!r} has {len(policy.actions)} actions for "
                f"{self.num_states} states"
            )
        actions = np.asarray(policy.actions, dtype=np.int64)
        low = self.action_offsets[:-1]
        high = self.action_offsets[1:]
        if np.any(actions < low) or np.any(actions >= high):
            raise OptimizeError(f"policy {policy.name!r} picks out-of-state actions")

    # ------------------------------------------------------------------
    # fixed strategies as policies
    # ------------------------------------------------------------------
    def strategy_policy(self, configuration: StrategyConfiguration) -> RepairPolicy:
        """The stationary policy of a fixed (preemptive) repair strategy."""
        strategy = configuration.strategy
        if strategy is RepairStrategy.FCFS:
            raise OptimizeError(
                "FCFS depends on arrival order and has no set-based policy; "
                "pick a preemptive strategy (DED / FRF-k / FFF-k / PRIO-k)"
            )
        components = self.model.components_by_name()
        units = [
            unit.with_strategy(strategy, configuration.crews)
            for unit in self.model.repair_units
        ]
        actions: list[int] = []
        order = {name: index for index, name in enumerate(self.component_names)}
        for mask in range(self.num_states):
            failed = self.failed_of_state[mask]
            served: list[tuple[str, ...]] = []
            for unit in units:
                queue = [name for name in failed if name in unit.components]
                if not queue:
                    served.append(())
                    continue
                queue.sort(key=lambda name: (unit.policy_key(components[name]), name))
                take = queue[: unit.effective_crews()]
                if self.crew_limit is not None and len(take) > self.crew_limit:
                    raise OptimizeError(
                        f"strategy {configuration.label} needs {len(take)} crews "
                        f"but the CTMDP caps units at {self.crew_limit}"
                    )
                served.append(tuple(sorted(take, key=order.__getitem__)))
            target = tuple(served)
            for flat in self.actions_of(mask):
                if self.action_served[flat] == target:
                    actions.append(flat)
                    break
            else:  # pragma: no cover - enumeration covers every such subset
                raise OptimizeError(
                    f"action {target} of strategy {configuration.label} is not "
                    f"admissible in state {failed or 'all-up'}"
                )
        return RepairPolicy(name=configuration.label, actions=tuple(actions))

    # ------------------------------------------------------------------
    # induced chains
    # ------------------------------------------------------------------
    def chain_is_cached(self, policy: RepairPolicy) -> bool:
        return policy.actions in self._chain_cache

    def induced_chain(self, policy: RepairPolicy) -> CTMC:
        """The CTMC obtained by fixing ``policy`` (memoized per action tuple).

        Labels ``down``/``operational`` follow the fault tree; the initial
        distribution is the all-up state (callers override per disaster).
        """
        cached = self._chain_cache.get(policy.actions)
        if cached is not None:
            return cached
        self.validate_policy(policy)
        chosen = np.zeros(self.total_actions, dtype=bool)
        chosen[np.asarray(policy.actions, dtype=np.int64)] = True
        picked = chosen[self.repair_action]
        rows = np.concatenate([self.fail_src, self.action_state[self.repair_action[picked]]])
        cols = np.concatenate([self.fail_tgt, self.repair_target[picked]])
        rates = np.concatenate([self.fail_rate, self.repair_rate[picked]])
        matrix = sparse.coo_matrix(
            (rates, (rows, cols)), shape=(self.num_states, self.num_states)
        ).tocsr()
        initial = np.zeros(self.num_states)
        initial[0] = 1.0
        chain = CTMC(
            matrix,
            initial,
            labels={"down": self.down, "operational": ~self.down},
            state_descriptions=tuple(
                "all-up" if not failed else "failed={" + ",".join(failed) + "}"
                for failed in self.failed_of_state
            ),
        )
        self._chain_cache[policy.actions] = chain
        return chain

    def policy_cost(self, policy: RepairPolicy) -> np.ndarray:
        """The state cost-rate vector under ``policy`` (crew costs included)."""
        return self.action_cost[np.asarray(policy.actions, dtype=np.int64)]

    # ------------------------------------------------------------------
    # vectorized one-step lookahead
    # ------------------------------------------------------------------
    def action_q_values(
        self, values: np.ndarray, costs: np.ndarray | None = None
    ) -> np.ndarray:
        """``Q[a] = costs[a] + sum_t q_a(s_a, t) * (values[t] - values[s_a])``.

        One entry per flat action; ``sum_t Q_a(s,t) values[t]`` over the full
        generator row, computed from the shared failure triplets plus each
        action's repair triplets.  This is the whole candidate-scoring step:
        every admissible action of every state in three ``bincount`` calls.
        """
        h = np.asarray(values, dtype=float)
        fail_flow = np.bincount(
            self.fail_src,
            weights=self.fail_rate * (h[self.fail_tgt] - h[self.fail_src]),
            minlength=self.num_states,
        )
        repair_src = self.action_state[self.repair_action]
        repair_flow = np.bincount(
            self.repair_action,
            weights=self.repair_rate * (h[self.repair_target] - h[repair_src]),
            minlength=self.total_actions,
        )
        q = repair_flow + fail_flow[self.action_state]
        if costs is not None:
            q = q + costs
        return q

    def greedy_policy(
        self,
        values: np.ndarray,
        *,
        costs: np.ndarray | None = None,
        maximize: bool = False,
        current: Sequence[int] | None = None,
        frozen: np.ndarray | None = None,
        tolerance: float = 1e-10,
        name: str = "greedy",
    ) -> tuple[RepairPolicy, int]:
        """The greedy one-step policy for ``values``; returns (policy, #changed).

        With ``current`` given, a state keeps its current action unless a
        strictly better one (beyond ``tolerance``) exists — the tie-break
        that makes policy iteration terminate finitely.  ``frozen`` marks
        states whose action is kept outright (e.g. survivability target
        states, where post-target behaviour cannot affect the measure).
        """
        score = self.action_q_values(values, costs)
        if maximize:
            score = -score
        best = np.minimum.reduceat(score, self.action_offsets[:-1])
        actions: list[int] = []
        changed = 0
        for state in range(self.num_states):
            lo = int(self.action_offsets[state])
            hi = int(self.action_offsets[state + 1])
            keep = current[state] if current is not None else None
            if keep is not None and (
                (frozen is not None and frozen[state])
                or score[keep] <= best[state] + tolerance
            ):
                actions.append(int(keep))
                continue
            pick = lo + int(np.argmin(score[lo:hi]))
            actions.append(pick)
            if keep is not None and pick != keep:
                changed += 1
        if current is None:
            changed = self.num_states
        return RepairPolicy(name=name, actions=tuple(actions)), changed
