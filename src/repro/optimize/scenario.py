"""Expansion of the ``OPTIMIZED`` scenario family into measure requests.

The scenario registry's ``optimized_survivability`` /
``optimized_accumulated_cost`` measures report *optimized-vs-fixed* curves:
for each (line, disaster[, service interval]) cell the rollout optimizer
runs once (memoized process-wide, like the case-study state-space cache),
and the expansion emits one ordinary measure request per fixed-strategy
policy plus one for the optimized policy — all on induced chains of the
same CTMDP, tagged ``(scenario, line, disaster[, interval], label)`` with
the optimized curve labelled ``"OPT"``.  The scenario service then
evaluates them like any other family (coalesced sweeps, warm artifact
cache), so repeat expansions cost one optimizer memo lookup and cached
sweeps.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.analysis import MeasureKind, MeasureRequest
from repro.casestudy.experiments import line_service_interval_lower
from repro.casestudy.facility import build_line
from repro.optimize.ctmdp import RepairCTMDP, RepairPolicy
from repro.optimize.rollout import RolloutResult, default_candidates, rollout_optimize

#: Optimizer grid resolution (the reported curve uses the spec's own grid).
_OPTIMIZER_POINTS = 25

_lock = threading.Lock()
_cache: dict[tuple, tuple[RepairCTMDP, dict[str, RepairPolicy], RolloutResult]] = {}


def clear_cache() -> None:
    """Drop memoized optimizations (tests)."""
    with _lock:
        _cache.clear()


def optimized_policies(
    line: str,
    objective: str,
    disaster: str,
    interval_index: int | None,
    horizon: float,
) -> tuple[RepairCTMDP, dict[str, RepairPolicy], RolloutResult]:
    """The memoized (CTMDP, fixed policies, rollout result) of one cell."""
    key = (line, objective, disaster, interval_index, float(horizon))
    with _lock:
        hit = _cache.get(key)
    if hit is not None:
        return hit
    ctmdp = RepairCTMDP(build_line(line))
    threshold = (
        line_service_interval_lower(line, interval_index)
        if interval_index is not None
        else None
    )
    result = rollout_optimize(
        ctmdp,
        objective,
        disaster=disaster,
        horizon=horizon,
        threshold=threshold,
        points=_OPTIMIZER_POINTS,
    )
    fixed = default_candidates(ctmdp)
    entry = (ctmdp, fixed, result)
    with _lock:
        _cache.setdefault(key, entry)
        entry = _cache[key]
    return entry


def _policy_request(
    ctmdp: RepairCTMDP,
    policy: RepairPolicy,
    *,
    objective: str,
    disaster: str,
    threshold,
    grid: np.ndarray,
    tag: tuple,
) -> MeasureRequest:
    chain = ctmdp.induced_chain(policy)
    initial = np.zeros(ctmdp.num_states)
    initial[ctmdp.disaster_state(disaster)] = 1.0
    if objective == "survivability":
        return MeasureRequest(
            chain=chain,
            times=grid,
            kind=MeasureKind.REACHABILITY,
            target=ctmdp.states_with_service_at_least(threshold),
            initial_distributions=initial,
            tag=tag,
        )
    return MeasureRequest(
        chain=chain,
        times=grid,
        kind=MeasureKind.CUMULATIVE_REWARD,
        rewards=ctmdp.policy_cost(policy),
        initial_distributions=initial,
        tag=tag,
    )


def expand_optimized(spec, grid: np.ndarray) -> list[MeasureRequest]:
    """Measure requests for an ``optimized_*`` scenario spec (see module doc)."""
    objective = (
        "survivability"
        if spec.measure == "optimized_survivability"
        else "accumulated_cost"
    )
    requests: list[MeasureRequest] = []
    for line in spec.lines:
        for disaster in spec.disasters:
            intervals = spec.interval_indices if objective == "survivability" else (None,)
            for interval_index in intervals:
                ctmdp, fixed, result = optimized_policies(
                    line, objective, disaster, interval_index, spec.horizon
                )
                threshold = (
                    line_service_interval_lower(line, interval_index)
                    if interval_index is not None
                    else None
                )
                cell = (
                    (spec.name, line, disaster, interval_index)
                    if interval_index is not None
                    else (spec.name, line, disaster)
                )
                wanted = [c.label for c in spec.strategies if c.label in fixed]
                for label in wanted:
                    requests.append(
                        _policy_request(
                            ctmdp,
                            fixed[label],
                            objective=objective,
                            disaster=disaster,
                            threshold=threshold,
                            grid=grid,
                            tag=(*cell, label),
                        )
                    )
                requests.append(
                    _policy_request(
                        ctmdp,
                        result.policy,
                        objective=objective,
                        disaster=disaster,
                        threshold=threshold,
                        grid=grid,
                        tag=(*cell, "OPT"),
                    )
                )
    return requests
