"""``python -m repro optimize`` — optimize repair policies from the shell.

Long-run objectives (``availability``/``unavailability``, ``cost-rate``)
run exact policy iteration; finite-horizon objectives (``survivability``,
``accumulated-cost``) run the coalesced rollout.  Either way the paper's
five fixed strategies are evaluated as policies of the same CTMDP and
printed next to the optimized result.

Examples::

    python -m repro optimize --line 1 --objective survivability
    python -m repro optimize --line 2 --objective availability --metrics
    python -m repro optimize --line 2 --objective accumulated-cost \
        --disaster disaster2 --horizon 24 --crews 2
"""

from __future__ import annotations

import argparse

from repro.casestudy.facility import LINE1, LINE2, build_line
from repro.casestudy.reporting import format_table
from repro.ctmc.linsolve import SolverEngine
from repro.optimize.ctmdp import OptimizeError, RepairCTMDP
from repro.optimize.policy_iteration import evaluate_policy, policy_iteration
from repro.optimize.rollout import default_candidates, rollout_optimize
from repro.optimize.stats import OptimizerStats, global_optimizer_stats

_OBJECTIVES = (
    "survivability",
    "accumulated-cost",
    "availability",
    "unavailability",
    "cost-rate",
)


def build_optimize_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-watertreatment optimize",
        description=(
            "Optimize the repair-assignment policy of a facility line: exact "
            "policy iteration for long-run objectives, coalesced rollout for "
            "finite-horizon ones; the paper's fixed strategies are reported "
            "as baselines."
        ),
    )
    parser.add_argument(
        "--line",
        default="1",
        choices=["1", "2", LINE1, LINE2],
        help="facility line to optimize (default: 1)",
    )
    parser.add_argument(
        "--objective",
        default="survivability",
        choices=list(_OBJECTIVES),
        help="what to optimize (default: survivability)",
    )
    parser.add_argument(
        "--disaster",
        default=None,
        help="disaster name for finite-horizon objectives (default: the line's first)",
    )
    parser.add_argument(
        "--interval",
        type=int,
        default=0,
        help="service interval index (X1=0, X2=1, ...) for survivability (default: 0)",
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="time horizon for finite-horizon objectives (default: 4.5 line1 / 100 line2)",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=33,
        help="grid points of the rollout value sweeps (default: 33)",
    )
    parser.add_argument(
        "--crews",
        type=int,
        default=None,
        metavar="N",
        help=(
            "cap each repair unit at N crews; the default admits every "
            "strategy up to dedicated repair"
        ),
    )
    parser.add_argument(
        "--max-iterations",
        type=int,
        default=25,
        help="iteration cap for either optimizer (default: 25)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the process-wide optimizer metrics (Prometheus text) at the end",
    )
    return parser


def _print_longrun(ctmdp: RepairCTMDP, objective: str, max_iterations: int) -> int:
    stats = OptimizerStats()
    engine = SolverEngine()
    internal = "unavailability" if objective in ("availability", "unavailability") else "cost_rate"
    candidates = default_candidates(ctmdp)
    rows = []
    best_label, best_gain, best_policy = None, None, None
    for label, policy in candidates.items():
        evaluation = evaluate_policy(ctmdp, policy, engine=engine, stats=stats)
        stats.baseline_evaluations += 1
        gain = evaluation.gains[internal]
        rows.append(
            (
                label,
                f"{1.0 - evaluation.gains['unavailability']:.9f}",
                f"{evaluation.gains['unavailability']:.3e}",
                f"{evaluation.gains['cost_rate']:.6f}",
            )
        )
        if best_gain is None or gain < best_gain:
            best_label, best_gain, best_policy = label, gain, policy
    result = policy_iteration(
        ctmdp,
        objective=internal,
        initial=best_policy,
        engine=engine,
        max_iterations=max_iterations,
        stats=stats,
    )
    rows.append(
        (
            "OPT",
            f"{1.0 - result.gains['unavailability']:.9f}",
            f"{result.gains['unavailability']:.3e}",
            f"{result.gains['cost_rate']:.6f}",
        )
    )
    print(
        format_table(
            ["policy", "availability", "unavailability", "cost rate"],
            rows,
            title=f"Long-run policy optimization ({internal}) — {ctmdp.model.name}",
        )
    )
    changed = sum(
        1 for a, b in zip(result.policy.actions, best_policy.actions) if a != b
    )
    print(
        f"policy iteration: {'converged' if result.converged else 'NOT converged'} "
        f"after {result.iterations} iterations from {best_label} "
        f"({changed} states reassigned, gain {best_gain:.6e} -> {result.gain:.6e})"
    )
    print(f"[{stats.summary()}]")
    print(
        f"[linsolve: {engine.stats.factorizations} factorizations, "
        f"{engine.stats.solves} solves, {engine.stats.columns} RHS columns]"
    )
    global_optimizer_stats().absorb(stats)
    return 0 if result.converged else 1


def _print_rollout(
    ctmdp: RepairCTMDP, objective: str, args: argparse.Namespace, line: str
) -> int:
    from repro.casestudy.experiments import line_service_interval_lower

    stats = OptimizerStats()
    internal = "survivability" if objective == "survivability" else "accumulated_cost"
    disaster = args.disaster or ctmdp.model.disasters[0].name
    horizon = args.horizon if args.horizon is not None else (4.5 if line == LINE1 else 100.0)
    threshold = (
        line_service_interval_lower(line, args.interval)
        if internal == "survivability"
        else None
    )
    result = rollout_optimize(
        ctmdp,
        internal,
        disaster=disaster,
        horizon=horizon,
        threshold=threshold,
        points=args.points,
        max_iterations=args.max_iterations,
        stats=stats,
    )
    unit = "P(recovered)" if internal == "survivability" else "E[cost]"
    rows = [
        (label, f"{value:.9f}")
        for label, value in sorted(
            result.baselines.items(),
            key=lambda item: item[1],
            reverse=internal == "survivability",
        )
    ]
    rows.append(("OPT", f"{result.value:.9f}"))
    title = (
        f"{internal} at t={horizon:g} after {disaster} — {ctmdp.model.name}"
        + (f", service >= X{args.interval + 1}" if threshold is not None else "")
    )
    print(format_table(["policy", unit], rows, title=title))
    gained = result.value - result.best_baseline
    print(
        f"rollout: {'converged' if result.converged else 'iteration cap hit'} "
        f"after {result.iterations} rounds from {result.base_label}; "
        f"objective {result.best_baseline:.9f} -> {result.value:.9f} "
        f"({gained:+.3e}; optimized policy is "
        f"{'new' if result.improved else 'the baseline'})"
    )
    mid = len(result.times) // 2
    print(
        f"optimized curve: t={result.times[1]:g} -> {result.curve[1]:.6f}, "
        f"t={result.times[mid]:g} -> {result.curve[mid]:.6f}, "
        f"t={result.times[-1]:g} -> {result.curve[-1]:.6f}"
    )
    print(f"[{stats.summary()}]")
    global_optimizer_stats().absorb(stats)
    return 0


def optimize_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro optimize``."""
    args = build_optimize_parser().parse_args(argv)
    line = {"1": LINE1, "2": LINE2}.get(args.line, args.line)
    try:
        ctmdp = RepairCTMDP(build_line(line), crew_limit=args.crews)
        print(
            f"{ctmdp.model.name}: {ctmdp.num_states} CTMDP states, "
            f"{ctmdp.total_actions} admissible actions"
            + (f" (crew limit {args.crews})" if args.crews else "")
        )
        if args.objective in ("availability", "unavailability", "cost-rate"):
            code = _print_longrun(ctmdp, args.objective, args.max_iterations)
        else:
            code = _print_rollout(ctmdp, args.objective, args, line)
    except OptimizeError as error:
        print(f"error: {error}")
        return 2
    if args.metrics:
        print()
        print(global_optimizer_stats().metrics())
    return code
