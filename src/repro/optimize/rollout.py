"""Rollout optimization of finite-horizon repair objectives.

In the spirit of Sarkale et al.'s post-hazard recovery rollout, finite-
horizon objectives — survivability at ``t`` (the paper's Fig. 4/5/8/9
measure) and expected accumulated cost (Fig. 7/11) — are improved
iteratively from the best fixed strategy:

1. **Evaluate** the current policy *from every state at once*: one
   :class:`~repro.analysis.AnalysisSession` request on the induced chain
   with an identity initial block, so the per-state value function at the
   horizon comes out of **one** shared uniformization sweep (the planner
   coalesces the ``n`` rows into a single group).  This is the coalescing
   the issue gates on: all ``K`` candidate one-step deviations of a round
   are scored off this block, so ``K`` candidates cost ~1 sweep, not ``K``.
2. **Score** every admissible action of every state by its generator-row
   Q-value against the horizon values
   (:meth:`~repro.optimize.ctmdp.RepairCTMDP.action_q_values`) and take the
   greedy policy.  Survivability keeps the current action at target states
   (post-target behaviour cannot change a reachability probability).
3. **Safeguard**: the greedy policy is accepted only if its *exact*
   re-evaluation (step 1 of the next round) improves the objective at the
   disaster state; otherwise the best policy seen so far is kept.  Because
   the iteration starts from the best fixed-strategy baseline, the result
   is ≥ every fixed strategy by construction — the stationary greedy step
   is a heuristic for the inherently time-dependent finite-horizon optimum,
   but it can never *lose* to the baselines.

All baselines and iterates are evaluated on induced chains of the same
CTMDP (same crew pool), so values are apples-to-apples; the artifact cache
makes re-optimization warm (same chains → same fingerprints → cached
transforms and operators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

import numpy as np

from repro.analysis import AnalysisSession, MeasureKind, MeasureRequest, SessionStats
from repro.arcade.model import Disaster
from repro.casestudy.facility import PAPER_STRATEGIES
from repro.optimize.ctmdp import OptimizeError, RepairCTMDP, RepairPolicy
from repro.optimize.stats import OptimizerStats, global_optimizer_stats

#: Finite-horizon objectives the rollout optimizer handles.
ROLLOUT_OBJECTIVES = ("survivability", "accumulated_cost")


@dataclass
class RolloutResult:
    """Outcome of :func:`rollout_optimize`."""

    policy: RepairPolicy
    objective: str
    value: float
    times: np.ndarray
    curve: np.ndarray
    baselines: dict[str, float]
    baseline_curves: dict[str, np.ndarray]
    base_label: str
    iterations: int
    converged: bool

    @property
    def improved(self) -> bool:
        """Whether the optimizer beat the best fixed-strategy baseline."""
        return self.policy.name not in self.baselines

    @property
    def best_baseline(self) -> float:
        return self.baselines[self.base_label]


def _is_better(value: float, reference: float, objective: str, tolerance: float) -> bool:
    if objective == "survivability":
        return value > reference + tolerance
    return value < reference - tolerance


def default_candidates(ctmdp: RepairCTMDP) -> dict[str, RepairPolicy]:
    """The paper's five strategies as policies (skipping unrepresentable ones).

    With a ``crew_limit`` below a strategy's crew demand (e.g. ``DED`` on a
    capped CTMDP) that strategy simply drops out of the baseline set.
    """
    candidates: dict[str, RepairPolicy] = {}
    for configuration in PAPER_STRATEGIES:
        try:
            policy = ctmdp.strategy_policy(configuration)
        except OptimizeError:
            continue
        candidates[configuration.label] = policy
    if not candidates:
        raise OptimizeError("no paper strategy is representable in this CTMDP")
    return candidates


def rollout_optimize(
    ctmdp: RepairCTMDP,
    objective: str,
    *,
    disaster: Disaster | str,
    horizon: float,
    threshold: float | Fraction | None = None,
    points: int = 33,
    candidates: Mapping[str, RepairPolicy] | None = None,
    max_iterations: int = 8,
    tolerance: float = 1e-9,
    artifacts=None,
    session_stats: SessionStats | None = None,
    engine: str | None = None,
    dtype=None,
    stats: OptimizerStats | None = None,
) -> RolloutResult:
    """Optimize a finite-horizon objective by coalesced rollout.

    Parameters
    ----------
    objective:
        ``"survivability"`` (maximize ``P[reach service >= threshold by
        horizon]``; requires ``threshold``) or ``"accumulated_cost"``
        (minimize expected accumulated cost over ``[0, horizon]``).
    disaster:
        The start state (Given-Occurrence-Of-Disaster, like the paper).
    candidates:
        Label → policy baselines; defaults to the representable paper
        strategies.  The best baseline seeds the rollout and lower-bounds
        the result.
    artifacts / session_stats / engine / dtype:
        Forwarded to every :class:`~repro.analysis.AnalysisSession`, so a
        warm :class:`~repro.service.ArtifactCache` is reused across rounds
        and re-optimizations.
    """
    if objective not in ROLLOUT_OBJECTIVES:
        raise OptimizeError(
            f"unknown finite-horizon objective {objective!r}; "
            f"expected one of {ROLLOUT_OBJECTIVES}"
        )
    survivability = objective == "survivability"
    if survivability and threshold is None:
        raise OptimizeError("survivability rollout needs a service-level threshold")
    stats = stats if stats is not None else global_optimizer_stats()
    session_stats = session_stats if session_stats is not None else SessionStats()
    times = np.linspace(0.0, float(horizon), int(points))
    initial_state = ctmdp.disaster_state(disaster)
    target = ctmdp.states_with_service_at_least(threshold) if survivability else None

    def block_request(policy: RepairPolicy, block: np.ndarray, tag) -> MeasureRequest:
        if ctmdp.chain_is_cached(policy):
            stats.cache_hits += 1
        chain = ctmdp.induced_chain(policy)
        if survivability:
            return MeasureRequest(
                chain=chain,
                times=times,
                kind=MeasureKind.REACHABILITY,
                target=target,
                initial_distributions=block,
                tag=tag,
                engine=engine,
                dtype=dtype,
            )
        return MeasureRequest(
            chain=chain,
            times=times,
            kind=MeasureKind.CUMULATIVE_REWARD,
            rewards=ctmdp.policy_cost(policy),
            initial_distributions=block,
            tag=tag,
            engine=engine,
            dtype=dtype,
        )

    def new_session() -> AnalysisSession:
        return AnalysisSession(
            batched=True,
            artifacts=artifacts,
            stats=session_stats,
            engine=engine,
            dtype=dtype,
        )

    point = np.zeros(ctmdp.num_states)
    point[initial_state] = 1.0

    # --- baselines: every fixed strategy in one coalesced session --------
    candidates = dict(candidates) if candidates is not None else default_candidates(ctmdp)
    session = new_session()
    for label, policy in candidates.items():
        session.add(block_request(policy, point, tag=label))
    baseline_results = session.execute()
    baselines: dict[str, float] = {}
    baseline_curves: dict[str, np.ndarray] = {}
    for result in baseline_results:
        curve = np.asarray(result.squeezed, dtype=float)
        baseline_curves[result.request.tag] = curve
        baselines[result.request.tag] = float(curve[-1])
        stats.baseline_evaluations += 1
    chooser = max if survivability else min
    base_label = chooser(baselines, key=baselines.__getitem__)

    best_policy = candidates[base_label]
    best_value = baselines[base_label]
    best_curve = baseline_curves[base_label]

    # --- evaluate / score / safeguard loop -------------------------------
    identity = np.eye(ctmdp.num_states)
    policy = best_policy
    converged = False
    iterations = 0
    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        stats.rollout_iterations += 1
        session = new_session()
        sweeps_before = session_stats.sweeps
        session.add(block_request(policy, identity, tag=("rollout", iteration)))
        values = np.asarray(session.execute()[0].values, dtype=float)
        stats.coalesced_sweeps += session_stats.sweeps - sweeps_before
        stats.policy_evaluations += 1
        value = float(values[initial_state, -1])
        if _is_better(value, best_value, objective, tolerance):
            best_policy, best_value = policy, value
            best_curve = values[initial_state]
        elif iteration > 1:
            # The previous greedy step did not improve on exact
            # re-evaluation: keep the best policy seen and stop.
            converged = True
            break
        greedy, changed = ctmdp.greedy_policy(
            values[:, -1],
            costs=None if survivability else ctmdp.action_cost,
            maximize=survivability,
            current=policy.actions,
            frozen=target,
            tolerance=1e-12,
            name=f"rollout-{objective}-{iteration}",
        )
        stats.candidate_actions += ctmdp.total_actions - ctmdp.num_states
        if changed == 0:
            converged = True
            break
        policy = greedy
    return RolloutResult(
        policy=best_policy,
        objective=objective,
        value=best_value,
        times=times,
        curve=np.asarray(best_curve, dtype=float),
        baselines=baselines,
        baseline_curves=baseline_curves,
        base_label=base_label,
        iterations=iterations,
        converged=converged,
    )
