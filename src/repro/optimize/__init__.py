"""Repair-policy optimization on top of the batched evaluator.

The paper compares five *fixed* repair strategies; this package asks which
assignment policy is actually best.  :class:`RepairCTMDP` turns an Arcade
model into a controlled chain (states = failed-component sets, actions =
which failed components each repair unit serves; fixed strategies become
policies), :func:`policy_iteration` optimizes long-run objectives
(unavailability, cost rate) exactly via cached stacked-RHS gain/bias
solves, and :func:`rollout_optimize` improves finite-horizon objectives
(survivability at ``t``, accumulated cost) with all candidate one-step
deviations of a round scored off one coalesced identity-block sweep.

Entry points: ``python -m repro optimize`` (CLI), the registry's
``optimized_*`` scenario family (``paper_registry(include_optimized=True)``)
and :func:`global_optimizer_stats` feeding the service ``/metrics`` dump.
"""

from repro.optimize.ctmdp import (
    MAX_ACTIONS_PER_STATE,
    MAX_CTMDP_STATES,
    OptimizeError,
    RepairCTMDP,
    RepairPolicy,
)
from repro.optimize.policy_iteration import (
    LONGRUN_OBJECTIVES,
    PolicyEvaluation,
    PolicyIterationResult,
    evaluate_policy,
    policy_iteration,
)
from repro.optimize.rollout import (
    ROLLOUT_OBJECTIVES,
    RolloutResult,
    default_candidates,
    rollout_optimize,
)
from repro.optimize.stats import OptimizerStats, global_optimizer_stats

__all__ = [
    "LONGRUN_OBJECTIVES",
    "MAX_ACTIONS_PER_STATE",
    "MAX_CTMDP_STATES",
    "OptimizeError",
    "OptimizerStats",
    "PolicyEvaluation",
    "PolicyIterationResult",
    "ROLLOUT_OBJECTIVES",
    "RepairCTMDP",
    "RepairPolicy",
    "RolloutResult",
    "default_candidates",
    "evaluate_policy",
    "global_optimizer_stats",
    "policy_iteration",
    "rollout_optimize",
]
