"""Exact average-cost policy iteration on the repair CTMDP.

Long-run objectives (steady-state unavailability, expected cost rate) are
optimized by classic unichain policy iteration:

* **Policy evaluation** solves the gain/bias equations of the induced chain
  in one stacked-RHS linear solve: with generator ``Q`` and a reference
  state ``ref`` inside the (unique) bottom SCC, the system ``A y = -C``
  where ``A`` is ``Q`` with column ``ref`` replaced by ``-1`` yields, per
  cost column ``c``, the gain ``g = y[ref]`` and bias ``h = y`` (with
  ``h[ref] := 0``).  The factorization is cached through the same
  :class:`~repro.ctmc.linsolve.SolverEngine` /
  :class:`~repro.service.ArtifactCache` path as every other long-run
  measure — keyed by chain fingerprint, so re-optimizing warm recomputes
  nothing — and all objectives ride one LU as stacked columns.
* **Policy improvement** scores every admissible action of every state via
  :meth:`~repro.optimize.ctmdp.RepairCTMDP.action_q_values` (vectorized
  bincounts over the flat action arrays) and keeps the current action on
  near-ties, which makes the iteration terminate finitely.

The induced chains stay unichain because every admissible action is weakly
work-conserving (see :mod:`repro.optimize.ctmdp`); a multichain policy is
reported as :class:`~repro.optimize.ctmdp.OptimizeError` rather than a
wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.ctmc import CTMC
from repro.ctmc.linsolve import SolverEngine
from repro.ctmc.steady_state import bscc_decomposition
from repro.optimize.ctmdp import OptimizeError, RepairCTMDP, RepairPolicy
from repro.optimize.stats import OptimizerStats, global_optimizer_stats

#: Long-run objectives policy iteration can optimize.  ``unavailability``
#: is the paper's Table 2 measure (1 - steady-state availability);
#: ``cost_rate`` is the long-run expected cost per hour, crew costs
#: included.
LONGRUN_OBJECTIVES = ("unavailability", "cost_rate")


@dataclass
class PolicyEvaluation:
    """Exact long-run averages (and biases) of one policy."""

    policy: RepairPolicy
    gains: dict[str, float]
    bias: dict[str, np.ndarray]


@dataclass
class PolicyIterationResult:
    """Outcome of :func:`policy_iteration`."""

    policy: RepairPolicy
    objective: str
    gain: float
    gains: dict[str, float]
    iterations: int
    converged: bool
    history: list[float] = field(default_factory=list)

    @property
    def availability(self) -> float:
        """Convenience: ``1 - unavailability`` when that objective was solved."""
        return 1.0 - self.gains["unavailability"]


def _objective_costs(ctmdp: RepairCTMDP, objective: str) -> np.ndarray:
    """The per-flat-action cost rates of a long-run objective."""
    if objective == "unavailability":
        return ctmdp.down[ctmdp.action_state].astype(float)
    if objective == "cost_rate":
        return ctmdp.action_cost
    raise OptimizeError(
        f"unknown long-run objective {objective!r}; expected one of {LONGRUN_OBJECTIVES}"
    )


def _gain_bias_system(chain: CTMC, ref: int) -> sparse.spmatrix:
    """Generator with column ``ref`` replaced by ``-1`` (see module docstring)."""
    coo = chain.generator_matrix().tocoo()
    keep = coo.col != ref
    n = chain.num_states
    rows = np.concatenate([coo.row[keep], np.arange(n)])
    cols = np.concatenate([coo.col[keep], np.full(n, ref)])
    data = np.concatenate([coo.data[keep], np.full(n, -1.0)])
    return sparse.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()


def evaluate_policy(
    ctmdp: RepairCTMDP,
    policy: RepairPolicy,
    *,
    engine: SolverEngine,
    objectives: tuple[str, ...] = LONGRUN_OBJECTIVES,
    stats: OptimizerStats | None = None,
) -> PolicyEvaluation:
    """Gain and bias of ``policy`` for every objective, one stacked solve."""
    stats = stats if stats is not None else global_optimizer_stats()
    if ctmdp.chain_is_cached(policy):
        stats.cache_hits += 1
    chain = ctmdp.induced_chain(policy)
    bsccs = bscc_decomposition(chain, engine)
    if len(bsccs) != 1:
        raise OptimizeError(
            f"policy {policy.name!r} induces {len(bsccs)} bottom SCCs; "
            "average-cost evaluation needs a unichain policy"
        )
    ref = int(np.min(bsccs[0]))
    factorization = engine.factorization(
        chain,
        b"ctmdp-gain|" + int(ref).to_bytes(8, "little"),
        lambda: _gain_bias_system(chain, ref),
    )
    state_actions = np.asarray(policy.actions, dtype=np.int64)
    rhs = np.column_stack(
        [-_objective_costs(ctmdp, name)[state_actions] for name in objectives]
    )
    solution = engine.solve(factorization, rhs)
    gains: dict[str, float] = {}
    bias: dict[str, np.ndarray] = {}
    for column, name in enumerate(objectives):
        y = solution[:, column].copy()
        gains[name] = float(y[ref])
        y[ref] = 0.0
        bias[name] = y
    stats.policy_evaluations += 1
    return PolicyEvaluation(policy=policy, gains=gains, bias=bias)


def policy_iteration(
    ctmdp: RepairCTMDP,
    *,
    objective: str = "unavailability",
    initial: RepairPolicy | None = None,
    engine: SolverEngine | None = None,
    max_iterations: int = 50,
    tolerance: float = 1e-10,
    stats: OptimizerStats | None = None,
) -> PolicyIterationResult:
    """Optimize a long-run objective by exact policy iteration.

    Starts from ``initial`` (default: the first admissible action per
    state), alternates stacked-RHS evaluation and vectorized greedy
    improvement, and stops at the first improvement round that changes no
    state.  Gains are monotonically non-increasing, so the returned policy
    is at least as good as the initial one; with the keep-current tie-break
    the iteration is finite and the fixed point satisfies the average-cost
    optimality equations to ``tolerance``.
    """
    if objective not in LONGRUN_OBJECTIVES:
        raise OptimizeError(
            f"unknown long-run objective {objective!r}; expected one of {LONGRUN_OBJECTIVES}"
        )
    stats = stats if stats is not None else global_optimizer_stats()
    engine = engine if engine is not None else SolverEngine()
    if initial is None:
        initial = RepairPolicy(
            name="first-action",
            actions=tuple(int(index) for index in ctmdp.action_offsets[:-1]),
        )
    ctmdp.validate_policy(initial)
    costs = _objective_costs(ctmdp, objective)
    policy = initial
    history: list[float] = []
    evaluation = evaluate_policy(ctmdp, policy, engine=engine, stats=stats)
    converged = False
    iterations = 0
    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        history.append(evaluation.gains[objective])
        improved, changed = ctmdp.greedy_policy(
            evaluation.bias[objective],
            costs=costs,
            current=policy.actions,
            tolerance=tolerance,
            name=f"pi-{objective}-{iteration}",
        )
        stats.policy_improvements += 1
        if changed == 0:
            converged = True
            break
        policy = improved
        evaluation = evaluate_policy(ctmdp, policy, engine=engine, stats=stats)
    return PolicyIterationResult(
        policy=policy,
        objective=objective,
        gain=evaluation.gains[objective],
        gains=dict(evaluation.gains),
        iterations=iterations,
        converged=converged,
        history=history,
    )
