"""Named scenario specs: the paper's strategy × disaster × service grid.

A :class:`ScenarioSpec` declares a *family* of measure curves — a measure
kind, one or more facility lines, repair-strategy configurations, disasters
and service intervals, over a time grid — without touching any chain.
:meth:`ScenarioSpec.expand` turns the spec into concrete
:class:`repro.analysis.MeasureRequest` objects (building or reusing the
cached case-study state spaces), which is what the scenario service
consumes; every request is tagged ``(scenario, line, strategy, ...)`` so
clients can reassemble their curves.

:func:`paper_registry` pre-registers the paper's figure families (the same
grids :mod:`repro.casestudy.experiments` reproduces); user-defined specs
are added with :meth:`ScenarioRegistry.register`.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, replace

import numpy as np

from repro.analysis import MeasureRequest
from repro.arcade.repair import RepairStrategy
from repro.casestudy.experiments import (
    LINE1_SURVIVABILITY_STRATEGIES,
    LINE2_COST_STRATEGIES,
    line_service_interval_lower,
    line_state_space,
)
from repro.casestudy.facility import (
    DISASTER_1,
    DISASTER_2,
    LINE1,
    LINE2,
    PAPER_STRATEGIES,
    StrategyConfiguration,
)
from repro.measures import (
    accumulated_cost_request,
    instantaneous_cost_request,
    steady_state_availability_request,
    survivability_request,
    unreliability_request,
)

#: Measure families a spec may declare.  ``availability`` is the long-run
#: member: it expands to time-grid-free ``STEADY_STATE`` requests that ride
#: the cached linear-solver engine instead of uniformization sweeps.
MEASURES = (
    "survivability",
    "unreliability",
    "instantaneous_cost",
    "accumulated_cost",
    "availability",
    "optimized_survivability",
    "optimized_accumulated_cost",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named family of measure curves over the case-study grid.

    Attributes
    ----------
    name:
        Registry key (also the first element of every expanded request's
        ``tag``).
    measure:
        One of :data:`MEASURES`.
    lines:
        Facility lines to evaluate (``"line1"``/``"line2"``).
    strategies:
        Repair configurations to sweep.
    disasters:
        Disaster names (survivability and cost measures; ignored for
        unreliability, which starts from the fully-up state).
    interval_indices:
        Service intervals (X1, X2, ... as indices) for survivability.
    horizon, points:
        The evenly spaced time grid ``linspace(0, horizon, points)``.
    """

    name: str
    measure: str
    lines: tuple[str, ...]
    strategies: tuple[StrategyConfiguration, ...]
    disasters: tuple[str, ...] = ()
    interval_indices: tuple[int, ...] = (0,)
    horizon: float = 100.0
    points: int = 101
    description: str = ""

    def __post_init__(self) -> None:
        if self.measure not in MEASURES:
            raise ValueError(
                f"unknown measure {self.measure!r}; expected one of {MEASURES}"
            )

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """A JSON-serialisable summary of the spec (served by ``GET /registry``)."""
        return {
            "name": self.name,
            "measure": self.measure,
            "lines": list(self.lines),
            "strategies": [configuration.label for configuration in self.strategies],
            "disasters": list(self.disasters),
            "interval_indices": list(self.interval_indices),
            "horizon": self.horizon,
            "points": self.points,
            "description": self.description,
        }

    def times(self, points: int | None = None) -> np.ndarray:
        return np.linspace(0.0, self.horizon, points if points else self.points)

    def expand(self, points: int | None = None) -> list[MeasureRequest]:
        """Concrete measure requests for every curve of the family."""
        grid = self.times(points)
        requests: list[MeasureRequest] = []
        if self.measure.startswith("optimized_"):
            # Optimized-vs-fixed curves: the rollout optimizer runs (memoized)
            # per cell and each policy becomes one ordinary request.
            from repro.optimize.scenario import expand_optimized

            return expand_optimized(self, grid)
        if self.measure == "availability":
            # Long-run measure: no time grid; the points override is moot.
            for line in self.lines:
                for configuration in self.strategies:
                    requests.append(
                        steady_state_availability_request(
                            line_state_space(line, configuration),
                            tag=(self.name, line, configuration.label),
                        )
                    )
            return requests
        if self.measure == "unreliability":
            for line in self.lines:
                for configuration in self.strategies:
                    requests.append(
                        unreliability_request(
                            line_state_space(line, configuration, with_repairs=False),
                            grid,
                            tag=(self.name, line, configuration.label),
                        )
                    )
            return requests
        if self.measure == "survivability":
            for line in self.lines:
                for interval_index in self.interval_indices:
                    threshold = line_service_interval_lower(line, interval_index)
                    for disaster in self.disasters:
                        for configuration in self.strategies:
                            requests.append(
                                survivability_request(
                                    line_state_space(line, configuration),
                                    disaster,
                                    threshold,
                                    grid,
                                    tag=(
                                        self.name,
                                        line,
                                        disaster,
                                        interval_index,
                                        configuration.label,
                                    ),
                                )
                            )
            return requests
        builder = (
            instantaneous_cost_request
            if self.measure == "instantaneous_cost"
            else accumulated_cost_request
        )
        for line in self.lines:
            for disaster in self.disasters:
                for configuration in self.strategies:
                    requests.append(
                        builder(
                            line_state_space(line, configuration),
                            grid,
                            disaster,
                            tag=(self.name, line, disaster, configuration.label),
                        )
                    )
        return requests


class ScenarioRegistry:
    """Named scenario specs; pre-populate with :func:`paper_registry`."""

    def __init__(self, specs: Iterable[ScenarioSpec] = ()) -> None:
        self._specs: dict[str, ScenarioSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: ScenarioSpec, replace_existing: bool = False) -> None:
        """Add a (user-defined) spec; refuses to shadow unless asked to."""
        if spec.name in self._specs and not replace_existing:
            raise ValueError(f"scenario {spec.name!r} is already registered")
        self._specs[spec.name] = spec

    def get(self, name: str) -> ScenarioSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; known: {', '.join(self.names) or '(none)'}"
            ) from None

    def expand(self, name: str, points: int | None = None) -> list[MeasureRequest]:
        """Expand the named spec into measure requests."""
        return self.get(name).expand(points=points)

    def with_points(self, name: str, points: int) -> ScenarioSpec:
        """A copy of the named spec on a coarser/finer grid."""
        return replace(self.get(name), points=points)

    def describe(self) -> list[dict]:
        """JSON-serialisable summaries of every registered spec."""
        return [spec.describe() for spec in self._specs.values()]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)


def paper_registry(include_optimized: bool = False) -> ScenarioRegistry:
    """The paper's figure families as ready-to-expand scenario specs.

    With ``include_optimized=True`` the registry also carries the
    ``optimized_*`` families, whose expansion runs the rollout policy
    optimizer (memoized process-wide) and reports the optimized curve next
    to the paper's fixed strategies.  They stay opt-in because expanding
    them is orders of magnitude more expensive than the figure families.
    """
    registry = ScenarioRegistry(
        (
            ScenarioSpec(
                name="table2",
                measure="availability",
                lines=(LINE1, LINE2),
                strategies=PAPER_STRATEGIES,
                description=(
                    "Steady-state availability per repair strategy (both lines)"
                ),
            ),
            ScenarioSpec(
                name="fig3",
                measure="unreliability",
                lines=(LINE1, LINE2),
                strategies=(StrategyConfiguration(RepairStrategy.DEDICATED, 1),),
                horizon=1000.0,
                points=101,
                description="Reliability of both lines over time (no repairs)",
            ),
            ScenarioSpec(
                name="fig4_5",
                measure="survivability",
                lines=(LINE1,),
                strategies=LINE1_SURVIVABILITY_STRATEGIES,
                disasters=(DISASTER_1,),
                interval_indices=(0, 1),
                horizon=4.5,
                points=91,
                description="Line 1 recovery to X1/X2 after Disaster 1",
            ),
            ScenarioSpec(
                name="fig6",
                measure="instantaneous_cost",
                lines=(LINE1,),
                strategies=LINE1_SURVIVABILITY_STRATEGIES,
                disasters=(DISASTER_1,),
                horizon=4.5,
                points=46,
                description="Instantaneous cost, Line 1, Disaster 1",
            ),
            ScenarioSpec(
                name="fig7",
                measure="accumulated_cost",
                lines=(LINE1,),
                strategies=LINE1_SURVIVABILITY_STRATEGIES,
                disasters=(DISASTER_1,),
                horizon=10.0,
                points=23,
                description="Accumulated cost, Line 1, Disaster 1",
            ),
            ScenarioSpec(
                name="fig8_9",
                measure="survivability",
                lines=(LINE2,),
                strategies=PAPER_STRATEGIES,
                disasters=(DISASTER_2,),
                interval_indices=(0, 2),
                horizon=100.0,
                points=101,
                description="Line 2 recovery to X1/X3 after Disaster 2",
            ),
            ScenarioSpec(
                name="fig10",
                measure="instantaneous_cost",
                lines=(LINE2,),
                strategies=LINE2_COST_STRATEGIES,
                disasters=(DISASTER_2,),
                horizon=50.0,
                points=51,
                description="Instantaneous cost, Line 2, Disaster 2",
            ),
            ScenarioSpec(
                name="fig11",
                measure="accumulated_cost",
                lines=(LINE2,),
                strategies=LINE2_COST_STRATEGIES,
                disasters=(DISASTER_2,),
                horizon=50.0,
                points=25,
                description="Accumulated cost, Line 2, Disaster 2",
            ),
        )
    )
    if include_optimized:
        registry.register(
            ScenarioSpec(
                name="fig8_9_optimized",
                measure="optimized_survivability",
                lines=(LINE2,),
                strategies=PAPER_STRATEGIES,
                disasters=(DISASTER_2,),
                interval_indices=(0,),
                horizon=24.0,
                points=25,
                description=(
                    "Line 2 recovery to X1 after Disaster 2: rollout-optimized "
                    "policy vs the paper's fixed strategies"
                ),
            )
        )
        registry.register(
            ScenarioSpec(
                name="fig11_optimized",
                measure="optimized_accumulated_cost",
                lines=(LINE2,),
                strategies=PAPER_STRATEGIES,
                disasters=(DISASTER_2,),
                horizon=24.0,
                points=13,
                description=(
                    "Accumulated cost after Disaster 2 on Line 2: rollout-"
                    "optimized policy vs the paper's fixed strategies"
                ),
            )
        )
    return registry
