"""Minimal asyncio HTTP front end for the scenario services.

:class:`ScenarioHTTPServer` exposes a :class:`repro.service.ScenarioService`
or :class:`repro.service.ShardedScenarioService` to real multi-client
traffic over three endpoints:

``POST /scenario``
    Body ``{"name": "fig4_5", "points": 31, "timeout": 10.0}`` (``points``
    and ``timeout`` optional).  Expands the named scenario, awaits the whole
    family through the backing service (coalescing/routing included) and
    returns one JSON curve per request: ``{"tag": [...], "times": [...],
    "values": [...], "lumped_states": ...}``.
``GET /registry``
    The registered scenario specs as JSON (names, measures, grids).
``GET /metrics``
    The Prometheus text dump of the backing service — for the sharded
    service this aggregates every worker's ``ServiceStats``/``CacheStats``
    through the shared-nothing snapshot protocol.

Backpressure and deadlines surface as proper status codes: a
:class:`~repro.service.QueueFull` rejection maps to ``503`` (with a
``Retry-After`` hint) and an expired deadline to ``504``, so well-behaved
clients can back off without parsing bodies.

The server is stdlib-only (``asyncio.start_server`` with a hand-rolled
HTTP/1.1 reader) — deliberately so: the container has no third-party HTTP
framework, and the protocol surface needed here is tiny.  Keep-alive is
supported; request bodies are capped at 1 MiB.
"""

from __future__ import annotations

import asyncio
import inspect
import json
from collections import Counter
from typing import Any

import numpy as np

from repro.service.dispatcher import QueueFull, ScenarioTimeout
from repro.service.shard import ShardCrashed

#: Upper bound on accepted request-body sizes.
MAX_BODY_BYTES = 1 << 20

#: Upper bound on header lines per request (anti-resource-exhaustion).
MAX_HEADER_LINES = 100

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HTTPError(Exception):
    """Internal control flow: abort the request with a status and message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _json_floats(array: np.ndarray) -> list:
    """An array as nested lists with non-finite entries mapped to ``None``.

    Long-run measures carry ``t = inf`` grid points and unreachable-target
    reward queries produce ``inf`` values; strict JSON has no spelling for
    either, so they travel as ``null``.
    """
    def convert(value):
        if isinstance(value, list):
            return [convert(item) for item in value]
        return value if value is not None and np.isfinite(value) else None

    return convert(np.asarray(array, dtype=float).tolist())


def _jsonable(value: Any) -> Any:
    """Make a request tag / payload JSON-serialisable (tuples, numpy types)."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class ScenarioHTTPServer:
    """Serve a scenario service over HTTP (see module docstring).

    Parameters
    ----------
    service:
        The backing :class:`~repro.service.ScenarioService` or
        :class:`~repro.service.ShardedScenarioService` (anything with
        ``submit_scenario``, ``metrics_text`` and a ``registry``).  The
        server does not own the service: start and close it separately.
    host, port:
        Bind address; port ``0`` picks an ephemeral port (see
        :attr:`address` after :meth:`start`) — what the tests use.
    max_connections:
        Cap on concurrently served client connections.  A connection beyond
        the cap is answered ``503`` (with ``Retry-After``) and closed before
        any request bytes are read, so a slow-loris client cannot pin the
        server's handler tasks.  ``None`` (default) leaves it unbounded.
    """

    def __init__(
        self,
        service: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int | None = None,
    ) -> None:
        self.service = service
        self._host = host
        self._port = port
        self._max_connections = max_connections
        self._server: asyncio.AbstractServer | None = None
        self._active_connections = 0
        self._draining = False
        self._idle = asyncio.Event()
        #: (method path, status) -> count; appended to /metrics.
        self.request_counts: Counter[tuple[str, int]] = Counter()
        #: Connections rejected by the ``max_connections`` cap.
        self.rejected_connections = 0

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._port
        )

    @property
    def draining(self) -> bool:
        """Whether :meth:`begin_drain` has been called."""
        return self._draining

    @property
    def active_connections(self) -> int:
        """Client connections currently being served."""
        return self._active_connections

    def begin_drain(self) -> None:
        """Stop accepting connections; pending requests get ``503``.

        The listening sockets close immediately (no new TCP connections),
        and every request parsed after this point — including requests on
        established keep-alive connections — is answered ``503`` with
        ``Connection: close``.  Requests already dispatched to the backing
        service finish normally; await :meth:`drain` for them.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()

    async def drain(self) -> None:
        """:meth:`begin_drain` and wait for in-flight connections to finish."""
        self.begin_drain()
        if self._active_connections:
            self._idle.clear()
            await self._idle.wait()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ephemeral port 0)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        name = self._server.sockets[0].getsockname()
        return (name[0], name[1])

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("server is not started")
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        over_cap = (
            self._max_connections is not None
            and self._active_connections >= self._max_connections
        )
        if not over_cap:
            self._active_connections += 1
        try:
            if over_cap:
                # Reject before reading any bytes: a slow-loris client never
                # gets to hold a handler beyond this response.
                self.rejected_connections += 1
                self.request_counts[("connection", 503)] += 1
                status, content_type, body = self._json_error(
                    503, "connection limit reached"
                )
                await self._write_response(writer, status, content_type, body, False)
            else:
                await self._serve_connection(reader, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):  # client went away mid-request; nothing to answer
            pass
        finally:
            if not over_cap:
                self._active_connections -= 1
                if self._active_connections == 0:
                    self._idle.set()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """The keep-alive request loop of one accepted connection."""
        while True:
            try:
                request_line = await reader.readline()
            except ValueError:  # line beyond the StreamReader limit
                await self._write_response(
                    writer, 400, "text/plain", b"request line too long", False
                )
                break
            if not request_line or request_line in (b"\r\n", b"\n"):
                break
            try:
                method, raw_path, version = (
                    request_line.decode("latin-1").strip().split(" ", 2)
                )
            except ValueError:
                await self._write_response(
                    writer, 400, "text/plain", b"malformed request line", False
                )
                break
            headers: dict[str, str] = {}
            malformed_headers = False
            while True:
                try:
                    line = await reader.readline()
                except ValueError:  # header line beyond the reader limit
                    malformed_headers = True
                    break
                if line in (b"\r\n", b"\n", b""):
                    break
                if len(headers) >= MAX_HEADER_LINES:
                    malformed_headers = True
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            if malformed_headers:
                await self._write_response(
                    writer, 400, "text/plain", b"too many or oversized headers", False
                )
                break
            keep_alive = (
                version.upper() == "HTTP/1.1"
                and headers.get("connection", "").lower() != "close"
            )
            try:
                length = int(headers.get("content-length", "0") or "0")
            except ValueError:
                length = -1
            if self._draining:
                # Drain mode: established (keep-alive) connections may still
                # deliver requests after the listener closed; refuse them
                # without reading the body and close the connection.
                status, content_type, body = self._json_error(
                    503, "server is draining; no new requests accepted"
                )
                keep_alive = False
            elif length < 0:
                status, content_type, body = (
                    400,
                    "text/plain; charset=utf-8",
                    b"malformed Content-Length",
                )
                keep_alive = False
            elif length > MAX_BODY_BYTES:
                status, content_type, body = (
                    413,
                    "text/plain; charset=utf-8",
                    b"request body too large",
                )
                keep_alive = False
            else:
                body_bytes = await reader.readexactly(length) if length else b""
                status, content_type, body = await self._dispatch(
                    method, raw_path, body_bytes
                )
            self.request_counts[(f"{method} {raw_path.partition('?')[0]}", status)] += 1
            await self._write_response(
                writer, status, content_type, body, keep_alive
            )
            if not keep_alive:
                break

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
        keep_alive: bool,
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if status == 503:
            headers.append("Retry-After: 1")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, raw_path: str, body: bytes
    ) -> tuple[int, str, bytes]:
        path = raw_path.partition("?")[0]
        try:
            if path == "/scenario":
                if method != "POST":
                    raise _HTTPError(405, "use POST /scenario")
                return await self._post_scenario(body)
            if path == "/registry":
                if method != "GET":
                    raise _HTTPError(405, "use GET /registry")
                return self._get_registry()
            if path == "/metrics":
                if method != "GET":
                    raise _HTTPError(405, "use GET /metrics")
                return await self._get_metrics()
            raise _HTTPError(404, f"unknown path {path!r}")
        except _HTTPError as error:
            return self._json_error(error.status, error.message)
        except QueueFull as error:
            return self._json_error(503, str(error))
        except ShardCrashed as error:
            # Transient by construction: the supervisor is restarting the
            # worker (or failover will route around it); tell the client to
            # come back rather than treating this as a server bug.
            return self._json_error(503, str(error))
        except (ScenarioTimeout, asyncio.TimeoutError) as error:
            return self._json_error(504, str(error) or "request deadline expired")
        except Exception as error:  # a poisoned scenario fails only its caller
            return self._json_error(500, f"{type(error).__name__}: {error}")

    def _json_error(self, status: int, message: str) -> tuple[int, str, bytes]:
        payload = json.dumps({"error": message, "status": status}).encode()
        return status, "application/json", payload

    def _get_registry(self) -> tuple[int, str, bytes]:
        payload = json.dumps({"scenarios": self.service.registry.describe()})
        return 200, "application/json", payload.encode()

    async def _get_metrics(self) -> tuple[int, str, bytes]:
        text = self.service.metrics_text()
        if inspect.isawaitable(text):  # the sharded front aggregates async
            text = await text
        lines = ["# TYPE repro_http_requests_total counter"]
        for (route, status), count in sorted(self.request_counts.items()):
            lines.append(
                f'repro_http_requests_total{{route="{route}",status="{status}"}} {count}'
            )
        body = text + "\n".join(lines) + "\n"
        return 200, "text/plain; version=0.0.4; charset=utf-8", body.encode()

    async def _post_scenario(self, body: bytes) -> tuple[int, str, bytes]:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HTTPError(400, f"body is not valid JSON: {error}") from None
        if not isinstance(payload, dict) or not isinstance(payload.get("name"), str):
            raise _HTTPError(400, 'body must be a JSON object with a "name" string')
        points = payload.get("points")
        if points is not None and (not isinstance(points, int) or points < 2):
            raise _HTTPError(400, '"points" must be an integer >= 2')
        timeout = payload.get("timeout")
        if timeout is not None and (
            not isinstance(timeout, (int, float)) or timeout <= 0
        ):
            raise _HTTPError(400, '"timeout" must be a positive number')
        # Resolve the name here so only a genuinely unknown scenario maps to
        # 404 — a KeyError escaping execution must stay a 500.
        try:
            self.service.registry.get(payload["name"])
        except KeyError as error:
            raise _HTTPError(
                404, str(error.args[0]) if error.args else "unknown scenario"
            ) from None
        pairs = await self.service.submit_scenario(
            payload["name"], points=points, timeout=timeout
        )
        curves = [
            {
                "tag": _jsonable(request.tag),
                "times": _json_floats(result.times),
                "values": _json_floats(result.squeezed),
                "lumped_states": result.lumped_states,
            }
            for request, result in pairs
        ]
        response = json.dumps(
            {"scenario": payload["name"], "count": len(curves), "curves": curves}
        )
        return 200, "application/json", response.encode()
