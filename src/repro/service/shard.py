"""Sharded multi-process scenario execution with self-healing supervision.

One :class:`repro.service.ScenarioService` coalesces heavy measure traffic
inside a single process; :class:`ShardedScenarioService` scales that out
across N *worker processes* (``multiprocessing`` spawn), each running its
own service instance with its own :class:`repro.service.ArtifactCache` and
worker pool.  The design is shared-nothing:

* **Fingerprint routing / chain ownership** — every submission is routed by
  the content fingerprint of its chain (:func:`shard_for_fingerprint`), so
  one shard *owns* each chain: its LU factorizations, BSCC decompositions,
  lumping quotients and uniformized operators stay warm in that shard's
  cache and are never duplicated across workers.  Requests for the same
  chain also land in the same worker's coalescing window, so cross-client
  sweep sharing keeps working under shard-out.
* **Shared-nothing artifact-summary protocol** — workers never share cache
  memory; instead each answers a ``stats`` message with a picklable
  snapshot of its :class:`~repro.service.ServiceStats`,
  :class:`~repro.service.CacheStats` and owned chain fingerprints, which
  the front aggregates for ``/metrics`` (and which the benchmarks gate on).
* **Backpressure and deadlines** — ``submit()`` raises
  :class:`~repro.service.QueueFull` once ``max_pending`` requests are in
  flight, and a per-request ``timeout`` abandons only that caller's future
  (the shard keeps computing; a late response is discarded).

The front is *supervised*, not merely fail-fast — the failure model the
paper applies to the water-treatment plant (components fail, repair units
restore them, service degrades instead of collapsing) applied to the
serving layer itself:

* **Crash supervision** — a worker that exits is respawned with
  exponential backoff (``backoff_base * 2**k``, capped at ``backoff_cap``).
  After ``restart_limit`` restarts inside a ``restart_window`` sliding
  window the shard is *circuit-broken*: permanently down until the service
  is rebuilt, so a worker crashing in a tight loop cannot consume the
  front forever.
* **Wedge detection** — the front pings every worker each
  ``heartbeat_interval`` seconds over the wire protocol; a worker whose
  last ``pong`` is older than ``heartbeat_timeout`` is considered
  wedged-but-alive (``process.join()`` would never fire), terminated, and
  handed to the same restart path.
* **Transparent retry** — measure requests are pure, idempotent
  computations on immutable chains, so requests in flight on a dead worker
  are *resubmitted* (up to ``retry_limit`` attempts per request, counted in
  ``stats.retries``) instead of failing the caller.
  :class:`ShardCrashed` surfaces only once the retry budget is exhausted
  or no shard can serve the chain.
* **Degraded-mode failover** — while a shard is restarting or broken, the
  chains it owns route to the next alive shard in deterministic fallback
  order (owner ``+1, +2, ...`` modulo N).  Availability holds at the cost
  of cold caches; ``stats.failovers`` counts the diverted dispatches per
  owning shard.  Requests with nowhere to go *park* while a restart is
  pending and are re-dispatched the moment a worker comes back up.

Fault hypotheses are checked, not assumed: a seeded
:class:`repro.service.chaos.ChaosPolicy` (see :mod:`repro.service.chaos`)
injects kills, wedges, corrupt/delayed/dropped responses into the worker
side of the wire protocol, and ``benchmarks/bench_resilience.py`` gates a
full-portfolio run under a kill-each-shard-once schedule.

The wire protocol is deliberately tiny (tuples over two ``multiprocessing``
queues per shard, variable parts pre-pickled so serialization errors fail
the offending request instead of wedging a queue feeder thread):

========================================  ==================================
parent → worker                           worker → parent
========================================  ==================================
``("request", id, request_bytes)``        ``("result", id, payload_bytes)``
``("stats", id)``                         ``("error", id, exc_bytes, text)``
``("ping", id)``                          ``("stats", id, snapshot_bytes)``
``("shutdown",)``                         ``("pong", id)``
========================================  ==================================

Results travel as plain arrays (times, values, group index, lump size) and
are re-attached to the caller's original request object, so the parent
never unpickles a chain it already holds.
"""

from __future__ import annotations

import asyncio
import itertools
import pickle
import threading
import time
import queue as queue_module
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any

import multiprocessing

import os

from repro.analysis import MeasureRequest, MeasureResult
from repro.ctmc.engines import (
    BLAS_ENV_VARS,
    blas_thread_budget,
    normalise_dtype,
    pin_blas_threads,
    restore_blas_threads,
)
from repro.ctmc.uniformization import DEFAULT_EPSILON
from repro.service.cache import DEFAULT_MAX_ENTRIES, ArtifactCache, CacheStats
from repro.service.chaos import DEFAULT_WEDGE_HOLD, ChaosPolicy
from repro.service.dispatcher import (
    DEFAULT_COALESCE_WINDOW,
    DEFAULT_MAX_BATCH,
    QueueFull,
    ScenarioService,
    ServiceClosed,
    ServiceStats,
    await_with_deadline,
)
from repro.service.registry import ScenarioRegistry, paper_registry

#: Default number of worker processes.
DEFAULT_NUM_SHARDS = 2

#: Default seconds a closing front waits for a worker to drain before
#: terminating it (constructor knob ``shutdown_grace``).
DEFAULT_SHUTDOWN_GRACE = 10.0

#: Default deadline for one shard's ``stats`` snapshot reply (constructor
#: knob ``snapshot_timeout``).
DEFAULT_SNAPSHOT_TIMEOUT = 30.0

#: Default seconds between heartbeat pings (``None``/``0`` disables).
DEFAULT_HEARTBEAT_INTERVAL = 1.0

#: Default wedge deadline when ``heartbeat_timeout`` is not given.
#: Deliberately generous: a *healthy* worker's event loop can be starved
#: for seconds at a stretch while its pool threads hold the GIL through
#: heavy sparse kernels, and a tight default would kill healthy workers
#: under exactly the loads that matter.  Tune it down (with the interval)
#: when fast wedge detection is worth the false-positive risk.
DEFAULT_HEARTBEAT_TIMEOUT = 30.0

#: Default restarts allowed inside ``restart_window`` before a shard is
#: circuit-broken.
DEFAULT_RESTART_LIMIT = 3

#: Default sliding-window width (seconds) for the restart budget.
DEFAULT_RESTART_WINDOW = 60.0

#: Default resubmissions of one in-flight request across worker deaths.
DEFAULT_RETRY_LIMIT = 2

#: Default restart backoff: first respawn after ``backoff_base`` seconds,
#: doubling per death in the window, capped at ``backoff_cap``.
DEFAULT_BACKOFF_BASE = 0.25
DEFAULT_BACKOFF_CAP = 5.0

#: A freshly spawned worker imports numpy/scipy before it can answer its
#: first ping; heartbeat timeouts below this floor only apply once the
#: worker has ponged at least once.
BOOT_GRACE = 30.0

#: Shard lifecycle states (exposed via :class:`ShardSnapshot` / metrics).
STATE_UP = "up"
STATE_RESTARTING = "restarting"
STATE_BROKEN = "broken"


class ShardCrashed(RuntimeError):
    """Raised for requests the supervision layer could not recover.

    Surfaces only after the self-healing machinery is exhausted: the
    request's retry budget ran out across worker deaths, or no shard (owner
    or failover candidate) is up or restarting.  The condition is
    transient from the caller's point of view — the HTTP front maps it to
    ``503`` with ``Retry-After``.
    """


def shard_for_fingerprint(fingerprint: str, num_shards: int) -> int:
    """The shard owning a chain, from the chain's content fingerprint.

    Stable across processes and runs (the fingerprint is a hex SHA-256 of
    the rate matrix), so a portfolio always partitions the same way and a
    warm shard keeps its chains over service restarts.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    return int(fingerprint[:16], 16) % num_shards


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _pickle_error(error: BaseException) -> bytes | None:
    """Best-effort pickle of an exception (None when it cannot travel)."""
    try:
        payload = pickle.dumps(error)
        pickle.loads(payload)  # some exceptions pickle but fail to rebuild
        return payload
    except Exception:
        return None


async def _shard_worker(
    shard_index: int,
    requests: Any,
    responses: Any,
    config: dict,
) -> None:
    """The asyncio body of one worker: an in-process service fed by a queue."""
    service = ScenarioService(
        coalesce_window=config["coalesce_window"],
        max_batch=config["max_batch"],
        lump=config["lump"],
        batched=config["batched"],
        epsilon=config["epsilon"],
        artifacts=ArtifactCache(config["max_entries"]),
        max_workers=config["max_workers"],
        engine=config.get("engine"),
        dtype=config.get("dtype"),
    )
    loop = asyncio.get_running_loop()
    tasks: set[asyncio.Task] = set()
    chaos: ChaosPolicy | None = config.get("chaos")
    generation = config.get("generation", 0)
    script = (
        chaos.script_for(shard_index, generation) if chaos is not None else {}
    )
    request_count = 0

    async def run_request(request_id: int, payload: bytes, event=None) -> None:
        try:
            request = pickle.loads(payload)
            result = await service.submit(request)
            body = pickle.dumps(
                {
                    "times": result.times,
                    "values": result.values,
                    "group_index": result.group_index,
                    "lumped_states": result.lumped_states,
                    "squeeze": result._squeeze,
                }
            )
        except Exception as error:
            responses.put(
                (
                    "error",
                    request_id,
                    _pickle_error(error),
                    f"{type(error).__name__}: {error}",
                )
            )
        else:
            if event is not None:
                if event.action == "drop":
                    return  # the response vanishes; only a deadline recovers
                if event.action == "delay":
                    await asyncio.sleep(event.delay)
                elif event.action == "corrupt":
                    body = b"\xff\xfe chaos: corrupted response payload"
            responses.put(("result", request_id, body))

    async with service:
        # Unsolicited readiness pong: the parent's heartbeat monitor knows
        # boot is over the moment the service is constructed.
        responses.put(("pong", -1))
        while True:
            message = await loop.run_in_executor(None, requests.get)
            kind = message[0]
            if kind == "shutdown":
                break
            if kind == "ping":
                responses.put(("pong", message[1]))
                continue
            if kind == "stats":
                # Thread accounting rides along so the front (and the
                # oversubscription regression test) can verify a dense run
                # stays within budget: worker-pool bound, live thread count
                # and the BLAS pin this process inherited at spawn.
                threads = {
                    "pool_max_workers": service.max_workers,
                    "active_threads": threading.active_count(),
                    "blas_env": {
                        variable: os.environ.get(variable)
                        for variable in BLAS_ENV_VARS
                    },
                }
                snapshot = pickle.dumps(
                    (
                        service.stats,
                        service.cache_stats(),
                        service.artifacts.chain_fingerprints(),
                        threads,
                    )
                )
                responses.put(("stats", message[1], snapshot))
                continue
            # kind == "request": the only message class chaos schedules key
            # on, so heartbeats and stats probes never shift a schedule.
            request_count += 1
            event = script.get(request_count)
            if event is not None:
                if event.action == "kill":
                    os._exit(event.exit_code)
                if event.action == "wedge":
                    # Block the message loop synchronously: the process
                    # stays alive but stops answering pings — only the
                    # heartbeat timeout can catch this.  If the supervisor
                    # never kills us (heartbeats disabled), serve the
                    # request normally after the hold.
                    time.sleep(event.delay or DEFAULT_WEDGE_HOLD)
                    event = None
                elif event.action not in ("corrupt", "delay", "drop"):
                    event = None  # pragma: no cover - future-proofing
            task = loop.create_task(run_request(message[1], message[2], event))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


def _shard_worker_main(
    shard_index: int, requests: Any, responses: Any, config: dict
) -> None:
    """Spawn entry point of one shard worker process."""
    try:
        asyncio.run(_shard_worker(shard_index, requests, responses, config))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
@dataclass
class ShardSnapshot:
    """One shard's shared-nothing stats summary (the ``stats`` reply)."""

    index: int
    alive: bool
    service: ServiceStats | None = None
    cache: CacheStats | None = None
    fingerprints: frozenset[str] = frozenset()
    #: Worker thread accounting: pool bound, live thread count and the BLAS
    #: environment pin the process inherited (oversubscription guard).
    threads: dict | None = None
    #: Supervision state: ``up``, ``restarting`` or ``broken``.
    state: str = STATE_UP
    #: Worker incarnation (0 = initial spawn; +1 per supervisor restart).
    generation: int = 0
    #: Restarts the supervisor performed for this shard so far.
    restarts: int = 0


@dataclass
class ShardedServiceStats:
    """Front-end counters of the sharded service (routing layer only).

    Per-shard execution counters live in the workers and are fetched on
    demand through :meth:`ShardedScenarioService.shard_snapshots`.
    """

    submissions: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    timeouts: int = 0
    #: In-flight requests transparently resubmitted after a worker death.
    retries: int = 0
    #: Submissions rejected because no shard (owner or failover) could
    #: serve them — the dead-shard fast-fail path.
    routed_dead: int = 0
    routed: dict[int, int] = field(default_factory=dict)
    #: Supervisor restarts per shard index.
    restarts: dict[int, int] = field(default_factory=dict)
    #: Dispatches diverted away from an owning shard, per owner index.
    failovers: dict[int, int] = field(default_factory=dict)
    #: Wedge detections (heartbeat timeouts that led to a kill), per shard.
    heartbeat_misses: dict[int, int] = field(default_factory=dict)

    def summary(self) -> str:
        """One line for CLI output and logs."""
        per_shard = " ".join(
            f"shard{index}={count}" for index, count in sorted(self.routed.items())
        )
        return (
            f"sharded: submissions={self.submissions} completed={self.completed} "
            f"failed={self.failed} rejected={self.rejected} "
            f"timeouts={self.timeouts} retries={self.retries} "
            f"routed_dead={self.routed_dead} "
            f"restarts={sum(self.restarts.values())} "
            f"failovers={sum(self.failovers.values())} "
            f"heartbeat_misses={sum(self.heartbeat_misses.values())} "
            f"routed: {per_shard or '(none)'}"
        )


@dataclass
class _Inflight:
    """One tracked submission: the caller's future plus retry bookkeeping.

    ``request is None`` marks control-plane probes (stats snapshots): they
    are never retried or failed over, only failed when their shard dies.
    """

    future: asyncio.Future
    request: MeasureRequest | None
    payload: bytes | None = None
    #: Resubmissions consumed so far (0 = first dispatch).
    attempts: int = 0
    #: Shard currently executing the request (None while parked).
    shard_index: int | None = None
    request_id: int | None = None
    #: Waiting for a shard restart to be dispatchable again.
    parked: bool = False


@dataclass
class _Shard:
    """Parent-side handle of one worker process (and its incarnations)."""

    index: int
    process: Any
    requests: Any
    responses: Any
    inflight: dict[int, _Inflight] = field(default_factory=dict)
    alive: bool = True
    closing: bool = False
    #: Supervision state: ``up``, ``restarting`` or ``broken``.
    state: str = STATE_UP
    #: Worker incarnation; stale reader/watcher threads compare against it.
    generation: int = 0
    #: Whether the current incarnation has answered at least one ping
    #: (boot grace gates the wedge timeout until then).
    ready: bool = False
    #: ``time.monotonic()`` of the last pong (initialised to spawn time).
    last_pong: float = 0.0
    #: Set by the heartbeat monitor just before it kills a wedged worker,
    #: so the exit handler can attribute the death correctly.
    wedged: bool = False
    #: Monotonic death times inside the current restart window.
    death_times: list[float] = field(default_factory=list)
    restart_handle: Any = None
    restart_task: Any = None


class ShardedScenarioService:
    """Scenario portfolios partitioned across N supervised worker processes.

    Parameters
    ----------
    num_shards:
        Worker-process count; each runs one :class:`ScenarioService` with a
        private :class:`ArtifactCache`.
    coalesce_window, max_batch, lump, batched, epsilon, max_workers:
        Forwarded to every worker's in-process service.
    max_pending:
        Bound on in-flight submissions across the whole front; beyond it
        ``submit()`` raises :class:`~repro.service.QueueFull`.
    default_timeout:
        Per-request deadline applied when ``submit()`` gets none.
    max_entries:
        Per-shard artifact-cache bound.
    registry:
        Scenario registry backing :meth:`submit_scenario` (expanded in the
        parent, then routed per request); defaults to the paper's families.
    start_method:
        ``multiprocessing`` start method; ``spawn`` (the default) keeps
        workers free of inherited interpreter state.
    engine, dtype:
        Default numeric backend and sweep lane forwarded to every worker's
        service (see :class:`ScenarioService`).  When the workers may take
        the dense-BLAS path, the front pins the BLAS thread count to
        :func:`repro.ctmc.engines.blas_thread_budget` around the spawns so
        N shards never oversubscribe the machine N-fold.
    heartbeat_interval, heartbeat_timeout:
        Liveness probing: a ping every ``heartbeat_interval`` seconds; a
        worker silent for ``heartbeat_timeout`` (default
        ``max(5 * heartbeat_interval, 30s)`` — generous on purpose, see
        :data:`DEFAULT_HEARTBEAT_TIMEOUT`) is deemed wedged, killed and
        restarted.  ``heartbeat_interval=None`` (or 0) disables wedge
        detection.
    restart_limit, restart_window:
        Crash supervision budget: up to ``restart_limit`` respawns inside a
        ``restart_window``-second sliding window, then the shard is
        circuit-broken.  ``restart_limit=0`` restores fail-fast behaviour
        (a dead shard stays dead).
    retry_limit:
        Transparent-retry budget per request across worker deaths
        (``0`` fails in-flight requests immediately, PR-5 style).
    backoff_base, backoff_cap:
        Exponential respawn backoff (``base * 2**k`` seconds, capped).
    failover:
        Route a down shard's chains to the next alive shard (deterministic
        owner ``+1, +2, ...`` order) instead of parking/failing them.
    shutdown_grace:
        Seconds :meth:`close` waits per worker before terminating it.
    snapshot_timeout:
        Default deadline for one shard's ``stats`` reply in
        :meth:`shard_snapshots` / :meth:`metrics_text`.
    chaos:
        Optional :class:`~repro.service.chaos.ChaosPolicy` injected into
        every worker (tests, benchmarks and drills only).

    Use as an async context manager::

        async with ShardedScenarioService(num_shards=2, lump=True) as service:
            pairs = await service.submit_scenario("fig4_5")
    """

    def __init__(
        self,
        num_shards: int = DEFAULT_NUM_SHARDS,
        *,
        coalesce_window: float = DEFAULT_COALESCE_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_pending: int | None = None,
        default_timeout: float | None = None,
        lump: bool = False,
        batched: bool = True,
        epsilon: float = DEFAULT_EPSILON,
        max_workers: int | None = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        registry: ScenarioRegistry | None = None,
        start_method: str = "spawn",
        engine: str | None = None,
        dtype=None,
        heartbeat_interval: float | None = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float | None = None,
        restart_limit: int = DEFAULT_RESTART_LIMIT,
        restart_window: float = DEFAULT_RESTART_WINDOW,
        retry_limit: int = DEFAULT_RETRY_LIMIT,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        failover: bool = True,
        shutdown_grace: float = DEFAULT_SHUTDOWN_GRACE,
        snapshot_timeout: float = DEFAULT_SNAPSHOT_TIMEOUT,
        chaos: ChaosPolicy | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be at least 1 (or None)")
        if default_timeout is not None and default_timeout <= 0:
            raise ValueError("default_timeout must be positive (or None)")
        if heartbeat_interval is not None and heartbeat_interval < 0:
            raise ValueError("heartbeat_interval must be >= 0 (0/None disables)")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive (or None)")
        if restart_limit < 0:
            raise ValueError("restart_limit must be >= 0")
        if restart_window <= 0:
            raise ValueError("restart_window must be positive")
        if retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        if backoff_base <= 0 or backoff_cap <= 0:
            raise ValueError("backoff_base and backoff_cap must be positive")
        if shutdown_grace <= 0:
            raise ValueError("shutdown_grace must be positive")
        if snapshot_timeout <= 0:
            raise ValueError("snapshot_timeout must be positive")
        if chaos is not None and not isinstance(chaos, ChaosPolicy):
            raise TypeError("chaos must be a ChaosPolicy (or None)")
        self.num_shards = int(num_shards)
        self.max_pending = None if max_pending is None else int(max_pending)
        self.default_timeout = (
            None if default_timeout is None else float(default_timeout)
        )
        self.heartbeat_interval = (
            None
            if heartbeat_interval is None or heartbeat_interval == 0
            else float(heartbeat_interval)
        )
        self.heartbeat_timeout = (
            float(heartbeat_timeout)
            if heartbeat_timeout is not None
            else (
                None
                if self.heartbeat_interval is None
                else max(5.0 * self.heartbeat_interval, DEFAULT_HEARTBEAT_TIMEOUT)
            )
        )
        self.restart_limit = int(restart_limit)
        self.restart_window = float(restart_window)
        self.retry_limit = int(retry_limit)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.failover = bool(failover)
        self.shutdown_grace = float(shutdown_grace)
        self.snapshot_timeout = float(snapshot_timeout)
        self.registry = registry if registry is not None else paper_registry()
        self.stats = ShardedServiceStats(
            routed={index: 0 for index in range(self.num_shards)}
        )
        self._worker_config = {
            "coalesce_window": float(coalesce_window),
            "max_batch": int(max_batch),
            "lump": bool(lump),
            "batched": bool(batched),
            "epsilon": float(epsilon),
            "max_entries": int(max_entries),
            "max_workers": max_workers,
            "engine": engine,
            "dtype": None if dtype is None else normalise_dtype(dtype).name,
            "chaos": chaos,
        }
        self._start_method = start_method
        self._shards: list[_Shard] = []
        self._parked: list[_Inflight] = []
        self._ids = itertools.count()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._heartbeat_task: asyncio.Task | None = None
        self._expander = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-shard-expand"
        )
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "ShardedScenarioService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def start(self) -> None:
        """Spawn the worker processes and their reader/watcher threads."""
        if self._closed:
            raise ServiceClosed("the sharded scenario service has been closed")
        if self._started:
            return
        self._started = True
        self._loop = asyncio.get_running_loop()
        context = multiprocessing.get_context(self._start_method)
        # BLAS pools size themselves from the environment once, at library
        # load; pinning around the spawns means each of the N workers gets
        # 1/N of the cores instead of N full-sized pools (oversubscription
        # guard for the dense engine).  The parent's own environment is
        # restored afterwards.
        previous_blas = pin_blas_threads(blas_thread_budget(self.num_shards))
        try:
            spawned = []
            for index in range(self.num_shards):
                requests = context.Queue()
                responses = context.Queue()
                process = context.Process(
                    target=_shard_worker_main,
                    args=(
                        index,
                        requests,
                        responses,
                        {**self._worker_config, "generation": 0},
                    ),
                    daemon=True,
                    name=f"repro-shard-{index}",
                )
                process.start()
                spawned.append((index, process, requests, responses))
        finally:
            restore_blas_threads(previous_blas)
        for index, process, requests, responses in spawned:
            shard = _Shard(
                index=index,
                process=process,
                requests=requests,
                responses=responses,
                last_pong=time.monotonic(),
            )
            self._shards.append(shard)
            self._start_shard_threads(shard)
        if self.heartbeat_interval is not None:
            self._heartbeat_task = self._loop.create_task(self._heartbeat_loop())

    def _start_shard_threads(self, shard: _Shard) -> None:
        """Reader/watcher threads for the shard's *current* incarnation.

        Both threads bind the process/queue objects and the generation at
        start, so threads of a replaced incarnation go stale harmlessly
        instead of draining the successor's queues.
        """
        suffix = f"-g{shard.generation}" if shard.generation else ""
        threading.Thread(
            target=self._read_responses,
            args=(shard, shard.process, shard.responses, shard.generation),
            daemon=True,
            name=f"repro-shard-{shard.index}{suffix}-reader",
        ).start()
        threading.Thread(
            target=self._watch_process,
            args=(shard, shard.process, shard.generation),
            daemon=True,
            name=f"repro-shard-{shard.index}{suffix}-watcher",
        ).start()

    async def close(self) -> None:
        """Shut every worker down (draining in-flight work, with a grace cap)."""
        if self._closed or not self._started:
            self._closed = True
            return
        self._closed = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        for shard in self._shards:
            shard.closing = True
            if shard.restart_handle is not None:
                shard.restart_handle.cancel()
                shard.restart_handle = None
            if shard.alive:
                try:
                    shard.requests.put(("shutdown",))
                except Exception:  # pragma: no cover - queue already broken
                    pass
        assert self._loop is not None
        await self._loop.run_in_executor(None, self._join_workers)
        closed_error = ServiceClosed(
            "service closed while the request was in flight"
        )
        for shard in self._shards:
            shard.alive = False
            self._fail_inflight(shard, closed_error)
        for entry in self._parked:
            if not entry.future.done():
                self.stats.failed += 1
                entry.future.set_exception(closed_error)
        self._parked.clear()
        self._expander.shutdown(wait=False)

    def _join_workers(self) -> None:
        deadline = self.shutdown_grace
        for shard in self._shards:
            shard.process.join(timeout=deadline)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=1.0)
            # Unblock the queue feeder threads so interpreter exit is clean.
            for channel in (shard.requests, shard.responses):
                try:
                    channel.close()
                    channel.cancel_join_thread()
                except Exception:  # pragma: no cover
                    pass

    # ------------------------------------------------------------------
    # background threads
    # ------------------------------------------------------------------
    def _read_responses(
        self, shard: _Shard, process: Any, responses: Any, generation: int
    ) -> None:
        """Drain one incarnation's response queue onto the event loop.

        Payloads are unpickled *here*, on the reader thread, so large value
        arrays and stats snapshots never serialize on the event loop (which
        also serves HTTP traffic).  Pongs short-circuit entirely on this
        thread: liveness bookkeeping must not queue behind loop callbacks.
        """
        while True:
            try:
                message = responses.get(timeout=0.25)
            except queue_module.Empty:
                if (
                    shard.closing
                    or shard.generation != generation
                    or not process.is_alive()
                ):
                    return
                continue
            except (EOFError, OSError):  # queue torn down (close or respawn)
                return
            if message[0] == "pong":
                if shard.generation == generation:
                    shard.last_pong = time.monotonic()
                    shard.ready = True
                continue
            message = self._decode_response(shard, message)
            self._call_on_loop(partial(self._handle_response, shard, message))

    @staticmethod
    def _decode_response(shard: _Shard, message: tuple) -> tuple:
        """Unpickle a response's variable part (reader-thread side).

        A payload that cannot be unpickled — a chaos-corrupted response,
        a truncated queue write — must fail exactly its own request: the
        decode error is folded into an ``error`` message for that request
        id, and the reader thread carries on with the next response.
        """
        kind, request_id = message[0], message[1]
        try:
            if kind in ("result", "stats"):
                return (kind, request_id, pickle.loads(message[2]))
            # kind == "error": the exception itself may be unpicklable.
            error_bytes, text = message[2], message[3]
            error = pickle.loads(error_bytes) if error_bytes is not None else None
            return (kind, request_id, error, text)
        except Exception as decode_error:
            return (
                "error",
                request_id,
                None,
                f"undecodable shard {shard.index} response: {decode_error}",
            )

    def _watch_process(self, shard: _Shard, process: Any, generation: int) -> None:
        """Hand a dead incarnation to the supervisor the moment it exits."""
        process.join()
        self._call_on_loop(partial(self._on_shard_exit, shard, generation))

    def _call_on_loop(self, callback) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(callback)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    # ------------------------------------------------------------------
    # supervision: restart, retry, failover
    # ------------------------------------------------------------------
    def _on_shard_exit(self, shard: _Shard, generation: int) -> None:
        """Supervise one worker death: budget the restart, recover in-flight.

        Runs on the event loop.  The dead incarnation's in-flight requests
        are resubmitted through :meth:`_dispatch_entry` (failover or park)
        while their retry budget lasts; control-plane probes and exhausted
        requests fail with :class:`ShardCrashed`.
        """
        if shard.generation != generation:
            return  # stale watcher of a replaced incarnation
        shard.alive = False
        if shard.closing or self._closed:
            return
        was_wedged, shard.wedged = shard.wedged, False
        cause = (
            "stopped answering heartbeats and was terminated"
            if was_wedged
            else f"exited with code {shard.process.exitcode}"
        )
        entries = list(shard.inflight.values())
        shard.inflight.clear()
        now = time.monotonic()
        deaths = [
            stamp
            for stamp in shard.death_times
            if stamp > now - self.restart_window
        ]
        if len(deaths) >= self.restart_limit:
            shard.state = STATE_BROKEN
        else:
            deaths.append(now)
            shard.state = STATE_RESTARTING
            delay = min(
                self.backoff_cap, self.backoff_base * 2.0 ** (len(deaths) - 1)
            )
            assert self._loop is not None
            shard.restart_handle = self._loop.call_later(
                delay, self._begin_respawn, shard, shard.generation
            )
        shard.death_times = deaths
        for entry in entries:
            self._recover_entry(entry, shard, cause)
        if shard.state == STATE_BROKEN:
            # Chains parked for this shard may have lost their last route.
            self._drain_parked()

    def _recover_entry(self, entry: _Inflight, shard: _Shard, cause: str) -> None:
        if entry.future.done():
            return
        if entry.request is None:  # control-plane probe: never retried
            entry.future.set_exception(
                ShardCrashed(f"shard {shard.index} worker {cause}")
            )
            return
        if entry.attempts >= self.retry_limit:
            self.stats.failed += 1
            entry.future.set_exception(
                ShardCrashed(
                    f"shard {shard.index} worker {cause}; retry budget "
                    f"({self.retry_limit}) exhausted"
                )
            )
            return
        # Measure requests are pure and idempotent: resubmitting one to a
        # restarted or failover worker recomputes the same values.
        entry.attempts += 1
        self.stats.retries += 1
        try:
            self._dispatch_entry(entry)
        except ShardCrashed as error:
            self.stats.failed += 1
            entry.future.set_exception(error)

    def _begin_respawn(self, shard: _Shard, generation: int) -> None:
        shard.restart_handle = None
        if (
            self._closed
            or shard.generation != generation
            or shard.state != STATE_RESTARTING
        ):
            return
        assert self._loop is not None
        shard.restart_task = self._loop.create_task(self._respawn(shard))

    async def _respawn(self, shard: _Shard) -> None:
        """Replace a dead incarnation with a fresh worker process."""
        next_generation = shard.generation + 1
        config = {**self._worker_config, "generation": next_generation}

        def spawn():
            context = multiprocessing.get_context(self._start_method)
            requests = context.Queue()
            responses = context.Queue()
            previous_blas = pin_blas_threads(blas_thread_budget(self.num_shards))
            try:
                process = context.Process(
                    target=_shard_worker_main,
                    args=(shard.index, requests, responses, config),
                    daemon=True,
                    name=f"repro-shard-{shard.index}-g{next_generation}",
                )
                process.start()
            finally:
                restore_blas_threads(previous_blas)
            return process, requests, responses

        assert self._loop is not None
        try:
            process, requests, responses = await self._loop.run_in_executor(
                None, spawn
            )
        except Exception:  # pragma: no cover - spawn machinery failure
            shard.state = STATE_BROKEN
            self._drain_parked()
            return
        finally:
            shard.restart_task = None
        if self._closed:
            # Closed while spawning: shut the fresh worker straight down.
            try:
                requests.put(("shutdown",))
            except Exception:  # pragma: no cover
                pass
            return
        # Retire the dead incarnation's queues; its reader thread exits on
        # the resulting OSError/EOFError (or its next idle tick).
        for channel in (shard.requests, shard.responses):
            try:
                channel.close()
                channel.cancel_join_thread()
            except Exception:  # pragma: no cover
                pass
        shard.process, shard.requests, shard.responses = (
            process,
            requests,
            responses,
        )
        shard.generation = next_generation
        shard.ready = False
        shard.last_pong = time.monotonic()
        shard.wedged = False
        shard.alive = True
        shard.state = STATE_UP
        self.stats.restarts[shard.index] = (
            self.stats.restarts.get(shard.index, 0) + 1
        )
        self._start_shard_threads(shard)
        self._drain_parked()

    async def _heartbeat_loop(self) -> None:
        """Ping live shards; kill and restart the ones that stop answering."""
        assert self.heartbeat_interval is not None
        assert self.heartbeat_timeout is not None
        while not self._closed:
            await asyncio.sleep(self.heartbeat_interval)
            if self._closed:
                return
            now = time.monotonic()
            for shard in self._shards:
                if shard.closing or not shard.alive or shard.state != STATE_UP:
                    continue
                if shard.wedged:
                    continue  # already killed; the exit handler is pending
                limit = self.heartbeat_timeout
                if not shard.ready:
                    # A booting worker imports numpy/scipy before its first
                    # pong; don't mistake a slow import for a wedge.
                    limit = max(limit, BOOT_GRACE)
                if now - shard.last_pong > limit:
                    self.stats.heartbeat_misses[shard.index] = (
                        self.stats.heartbeat_misses.get(shard.index, 0) + 1
                    )
                    shard.wedged = True
                    try:
                        shard.process.kill()
                    except Exception:  # pragma: no cover - already gone
                        pass
                    # The process watcher drives the restart path from here.
                    continue
                try:
                    shard.requests.put(("ping", next(self._ids)))
                except Exception:  # pragma: no cover - queue torn down
                    pass

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _dispatch_entry(self, entry: _Inflight) -> None:
        """Route one submission: owner shard, failover candidate, or park.

        Raises :class:`ShardCrashed` when no shard is up *and* none is
        restarting (every candidate circuit-broken or failover disabled).
        """
        assert entry.request is not None
        owner = shard_for_fingerprint(
            entry.request.chain.fingerprint, self.num_shards
        )
        width = self.num_shards if self.failover else 1
        target: _Shard | None = None
        restart_pending = False
        for offset in range(width):
            candidate = self._shards[(owner + offset) % self.num_shards]
            if candidate.alive and candidate.state == STATE_UP:
                target = candidate
                break
            if candidate.state == STATE_RESTARTING:
                restart_pending = True
        if target is None:
            if restart_pending:
                entry.parked = True
                entry.shard_index = None
                entry.request_id = None
                self._parked.append(entry)
                return
            raise ShardCrashed(
                f"chain {entry.request.chain.fingerprint[:12]}... cannot be "
                f"served: owner shard {owner} is {self._shards[owner].state} "
                f"and no failover shard is available"
            )
        if target.index != owner:
            self.stats.failovers[owner] = self.stats.failovers.get(owner, 0) + 1
        request_id = next(self._ids)
        entry.parked = False
        entry.shard_index = target.index
        entry.request_id = request_id
        target.inflight[request_id] = entry
        self.stats.routed[target.index] = (
            self.stats.routed.get(target.index, 0) + 1
        )
        target.requests.put(("request", request_id, entry.payload))

    def _drain_parked(self) -> None:
        """Re-dispatch parked submissions after a shard state change."""
        parked, self._parked = self._parked, []
        for entry in parked:
            if entry.future.done():
                continue
            try:
                self._dispatch_entry(entry)  # may re-park
            except ShardCrashed as error:
                self.stats.failed += 1
                entry.future.set_exception(error)

    def _discard_entry(self, entry: _Inflight) -> None:
        """Drop a settled/abandoned submission from wherever it lives now."""
        if entry.parked:
            try:
                self._parked.remove(entry)
            except ValueError:  # pragma: no cover - raced with a drain
                pass
            entry.parked = False
        elif entry.shard_index is not None and entry.request_id is not None:
            self._shards[entry.shard_index].inflight.pop(entry.request_id, None)

    def _entry_detail(self, entry: _Inflight) -> str | None:
        if entry.parked:
            return "the request was parked waiting for a shard restart"
        if entry.shard_index is not None:
            return f"the request was in flight on shard {entry.shard_index}"
        return None  # pragma: no cover - settled before the deadline fired

    def _fail_inflight(self, shard: _Shard, error: BaseException) -> None:
        for entry in list(shard.inflight.values()):
            if not entry.future.done():
                if entry.request is not None:
                    self.stats.failed += 1
                entry.future.set_exception(error)
        shard.inflight.clear()

    def _handle_response(self, shard: _Shard, message: tuple) -> None:
        kind, request_id = message[0], message[1]
        entry = shard.inflight.pop(request_id, None)
        if entry is None:  # deadline expired, retried elsewhere, or stale
            return
        if entry.future.done():
            return
        if kind == "result":
            payload = message[2]
            self.stats.completed += 1
            entry.future.set_result(
                MeasureResult(
                    request=entry.request,
                    times=payload["times"],
                    values=payload["values"],
                    group_index=payload["group_index"],
                    lumped_states=payload["lumped_states"],
                    _squeeze=payload["squeeze"],
                )
            )
        elif kind == "error":
            error, text = message[2], message[3]
            if error is None:
                error = RuntimeError(f"shard {shard.index} request failed: {text}")
            self.stats.failed += 1
            entry.future.set_exception(error)
        else:  # stats snapshot
            entry.future.set_result(message[2])

    # ------------------------------------------------------------------
    # submission API (mirrors ScenarioService)
    # ------------------------------------------------------------------
    def _ensure_ready(self) -> None:
        if self._closed:
            raise ServiceClosed("the sharded scenario service has been closed")
        if not self._started:
            raise RuntimeError(
                "ShardedScenarioService must be started first "
                "(use 'async with' or await start())"
            )

    def _inflight_count(self) -> int:
        dispatched = sum(
            1
            for shard in self._shards
            for entry in shard.inflight.values()
            if entry.request is not None
        )
        return dispatched + len(self._parked)

    def shard_index_for(self, request: MeasureRequest) -> int:
        """The shard that *owns* this request's chain (ignoring failover)."""
        return shard_for_fingerprint(request.chain.fingerprint, self.num_shards)

    async def submit(
        self, request: MeasureRequest, timeout: float | None = None
    ) -> MeasureResult:
        """Route one request to a shard and await the result.

        Semantics match :meth:`ScenarioService.submit`: values are
        bit-comparable to a single-process service (same numerical path,
        executed in the worker), :class:`QueueFull` applies backpressure at
        ``max_pending`` in-flight submissions, and a ``timeout`` abandons
        only this caller's future.  Worker deaths are transparent while
        the retry budget lasts; :class:`ShardCrashed` is raised fast only
        when no shard can serve the chain at all (counted in
        ``stats.routed_dead``).
        """
        self._ensure_ready()
        if (
            self.max_pending is not None
            and self._inflight_count() >= self.max_pending
        ):
            self.stats.rejected += 1
            raise QueueFull(
                f"sharded service has {self._inflight_count()} requests in flight "
                f"(max_pending={self.max_pending}); back off and resubmit"
            )
        assert self._loop is not None
        # Serializing a chain's sparse matrices is O(transitions); keep it
        # off the event loop, which also serves HTTP traffic.
        payload = await self._loop.run_in_executor(None, pickle.dumps, request)
        entry = _Inflight(
            future=self._loop.create_future(), request=request, payload=payload
        )
        self.stats.submissions += 1
        try:
            self._dispatch_entry(entry)
        except ShardCrashed:
            self.stats.routed_dead += 1
            self.stats.failed += 1
            raise
        timeout = self.default_timeout if timeout is None else timeout
        try:
            return await await_with_deadline(
                entry.future,
                timeout,
                self.stats,
                detail=partial(self._entry_detail, entry),
            )
        finally:
            self._discard_entry(entry)

    async def submit_many(
        self, requests: list[MeasureRequest], timeout: float | None = None
    ) -> list[MeasureResult]:
        """Submit several requests (each routed independently) and await all.

        Like :meth:`ScenarioService.submit_many`: the first failure is
        raised only after every sibling future has settled.
        """
        settled = await asyncio.gather(
            *(self.submit(request, timeout=timeout) for request in requests),
            return_exceptions=True,
        )
        for outcome in settled:
            if isinstance(outcome, BaseException):
                raise outcome
        return list(settled)

    async def submit_scenario(
        self, name: str, points: int | None = None, timeout: float | None = None
    ) -> list[tuple[MeasureRequest, MeasureResult]]:
        """Expand a registered scenario and fan its family out over the shards.

        Expansion (state-space construction) runs on a parent-side worker
        thread; the resulting requests are then routed per chain, so every
        curve of the family lands on the shard owning its chain.
        """
        self._ensure_ready()
        assert self._loop is not None
        requests = await self._loop.run_in_executor(
            self._expander, partial(self.registry.expand, name, points=points)
        )
        results = await self.submit_many(requests, timeout=timeout)
        return list(zip(requests, results))

    # ------------------------------------------------------------------
    # shared-nothing stats aggregation
    # ------------------------------------------------------------------
    def _placeholder_snapshot(self, shard: _Shard) -> ShardSnapshot:
        return ShardSnapshot(
            index=shard.index,
            alive=shard.alive,
            state=shard.state,
            generation=shard.generation,
            restarts=self.stats.restarts.get(shard.index, 0),
        )

    async def shard_snapshots(
        self, timeout: float | None = None
    ) -> list[ShardSnapshot]:
        """One :class:`ShardSnapshot` per shard (down shards marked, not raised).

        ``timeout`` defaults to the ``snapshot_timeout`` constructor knob.
        """
        self._ensure_ready()
        assert self._loop is not None
        timeout = self.snapshot_timeout if timeout is None else timeout

        async def snapshot(shard: _Shard) -> ShardSnapshot:
            if not shard.alive or shard.state != STATE_UP:
                return self._placeholder_snapshot(shard)
            request_id = next(self._ids)
            entry = _Inflight(future=self._loop.create_future(), request=None)
            entry.shard_index = shard.index
            entry.request_id = request_id
            shard.inflight[request_id] = entry
            try:
                shard.requests.put(("stats", request_id))
                service, cache, fingerprints, threads = await asyncio.wait_for(
                    entry.future, timeout
                )
            except (asyncio.TimeoutError, ShardCrashed, ServiceClosed):
                return self._placeholder_snapshot(shard)
            finally:
                shard.inflight.pop(request_id, None)
            return ShardSnapshot(
                index=shard.index,
                alive=True,
                service=service,
                cache=cache,
                fingerprints=frozenset(fingerprints),
                threads=threads,
                state=shard.state,
                generation=shard.generation,
                restarts=self.stats.restarts.get(shard.index, 0),
            )

        return list(await asyncio.gather(*(snapshot(s) for s in self._shards)))

    async def metrics_text(self) -> str:
        """Aggregated Prometheus text dump across every shard plus the front.

        Shard counters are summed into the same ``repro_service_*`` /
        ``repro_cache_*`` series a single-process service exposes (so
        dashboards work unchanged), followed by front-end routing and
        supervision series with per-shard labels.
        """
        snapshots = await self.shard_snapshots()
        combined_service = ServiceStats()
        combined_cache = CacheStats()
        for snapshot in snapshots:
            if snapshot.service is not None:
                combined_service.absorb(snapshot.service)
            if snapshot.cache is not None:
                combined_cache.absorb(snapshot.cache)
        lines = [combined_service.metrics(), combined_cache.metrics()]
        front = {
            "submissions_total": self.stats.submissions,
            "completed_total": self.stats.completed,
            "failed_total": self.stats.failed,
            "rejected_total": self.stats.rejected,
            "timeouts_total": self.stats.timeouts,
            "retries_total": self.stats.retries,
            "routed_dead_total": self.stats.routed_dead,
        }
        front_lines = []
        for name, value in front.items():
            metric = f"repro_front_{name}"
            front_lines.append(f"# TYPE {metric} counter")
            front_lines.append(f"{metric} {value}")
        front_lines.append("# TYPE repro_shard_alive gauge")
        for snapshot in snapshots:
            front_lines.append(
                f'repro_shard_alive{{shard="{snapshot.index}"}} '
                f"{1 if snapshot.alive else 0}"
            )
        front_lines.append("# TYPE repro_shard_state gauge")
        for snapshot in snapshots:
            front_lines.append(
                f'repro_shard_state{{shard="{snapshot.index}",'
                f'state="{snapshot.state}"}} 1'
            )
        front_lines.append("# TYPE repro_shard_routed_total counter")
        for index in sorted(self.stats.routed):
            front_lines.append(
                f'repro_shard_routed_total{{shard="{index}"}} '
                f"{self.stats.routed[index]}"
            )
        for name, per_shard in (
            ("repro_shard_restarts_total", self.stats.restarts),
            ("repro_shard_failovers_total", self.stats.failovers),
            ("repro_shard_heartbeat_misses_total", self.stats.heartbeat_misses),
        ):
            front_lines.append(f"# TYPE {name} counter")
            for index in range(self.num_shards):
                front_lines.append(
                    f'{name}{{shard="{index}"}} {per_shard.get(index, 0)}'
                )
        front_lines.append("# TYPE repro_shard_owned_chains gauge")
        for snapshot in snapshots:
            front_lines.append(
                f'repro_shard_owned_chains{{shard="{snapshot.index}"}} '
                f"{len(snapshot.fingerprints)}"
            )
        lines.append("\n".join(front_lines))
        return "\n".join(lines) + "\n"
