"""Sharded multi-process scenario execution with per-shard chain ownership.

One :class:`repro.service.ScenarioService` coalesces heavy measure traffic
inside a single process; :class:`ShardedScenarioService` scales that out
across N *worker processes* (``multiprocessing`` spawn), each running its
own service instance with its own :class:`repro.service.ArtifactCache` and
worker pool.  The design is shared-nothing:

* **Fingerprint routing / chain ownership** — every submission is routed by
  the content fingerprint of its chain (:func:`shard_for_fingerprint`), so
  one shard *owns* each chain: its LU factorizations, BSCC decompositions,
  lumping quotients and uniformized operators stay warm in that shard's
  cache and are never duplicated across workers.  Requests for the same
  chain also land in the same worker's coalescing window, so cross-client
  sweep sharing keeps working under shard-out.
* **Shared-nothing artifact-summary protocol** — workers never share cache
  memory; instead each answers a ``stats`` message with a picklable
  snapshot of its :class:`~repro.service.ServiceStats`,
  :class:`~repro.service.CacheStats` and owned chain fingerprints, which
  the front aggregates for ``/metrics`` (and which the benchmarks gate on).
* **Backpressure and deadlines** — ``submit()`` raises
  :class:`~repro.service.QueueFull` once ``max_pending`` requests are in
  flight, and a per-request ``timeout`` abandons only that caller's future
  (the shard keeps computing; a late response is discarded).
* **Failure isolation** — a crashed or killed worker fails exactly its own
  in-flight futures with :class:`ShardCrashed`; the remaining shards keep
  serving, and submissions routed to the dead shard fail fast.

The wire protocol is deliberately tiny (tuples over two ``multiprocessing``
queues per shard, variable parts pre-pickled so serialization errors fail
the offending request instead of wedging a queue feeder thread):

========================================  ==================================
parent → worker                           worker → parent
========================================  ==================================
``("request", id, request_bytes)``        ``("result", id, payload_bytes)``
``("stats", id)``                         ``("error", id, exc_bytes, text)``
``("shutdown",)``                         ``("stats", id, snapshot_bytes)``
========================================  ==================================

Results travel as plain arrays (times, values, group index, lump size) and
are re-attached to the caller's original request object, so the parent
never unpickles a chain it already holds.
"""

from __future__ import annotations

import asyncio
import itertools
import pickle
import threading
import queue as queue_module
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any

import multiprocessing

import os

from repro.analysis import MeasureRequest, MeasureResult
from repro.ctmc.engines import (
    BLAS_ENV_VARS,
    blas_thread_budget,
    normalise_dtype,
    pin_blas_threads,
    restore_blas_threads,
)
from repro.ctmc.uniformization import DEFAULT_EPSILON
from repro.service.cache import DEFAULT_MAX_ENTRIES, ArtifactCache, CacheStats
from repro.service.dispatcher import (
    DEFAULT_COALESCE_WINDOW,
    DEFAULT_MAX_BATCH,
    QueueFull,
    ScenarioService,
    ServiceClosed,
    ServiceStats,
    await_with_deadline,
)
from repro.service.registry import ScenarioRegistry, paper_registry

#: Default number of worker processes.
DEFAULT_NUM_SHARDS = 2

#: Seconds a closing front waits for a worker to drain before terminating it.
_SHUTDOWN_GRACE = 10.0


class ShardCrashed(RuntimeError):
    """Raised for futures whose owning worker process died mid-flight.

    Also raised fast by ``submit()`` for chains routed to a shard that is
    already known to be down — the remaining shards keep serving.
    """


def shard_for_fingerprint(fingerprint: str, num_shards: int) -> int:
    """The shard owning a chain, from the chain's content fingerprint.

    Stable across processes and runs (the fingerprint is a hex SHA-256 of
    the rate matrix), so a portfolio always partitions the same way and a
    warm shard keeps its chains over service restarts.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    return int(fingerprint[:16], 16) % num_shards


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _pickle_error(error: BaseException) -> bytes | None:
    """Best-effort pickle of an exception (None when it cannot travel)."""
    try:
        payload = pickle.dumps(error)
        pickle.loads(payload)  # some exceptions pickle but fail to rebuild
        return payload
    except Exception:
        return None


async def _shard_worker(
    shard_index: int,
    requests: Any,
    responses: Any,
    config: dict,
) -> None:
    """The asyncio body of one worker: an in-process service fed by a queue."""
    service = ScenarioService(
        coalesce_window=config["coalesce_window"],
        max_batch=config["max_batch"],
        lump=config["lump"],
        batched=config["batched"],
        epsilon=config["epsilon"],
        artifacts=ArtifactCache(config["max_entries"]),
        max_workers=config["max_workers"],
        engine=config.get("engine"),
        dtype=config.get("dtype"),
    )
    loop = asyncio.get_running_loop()
    tasks: set[asyncio.Task] = set()

    async def run_request(request_id: int, payload: bytes) -> None:
        try:
            request = pickle.loads(payload)
            result = await service.submit(request)
            body = pickle.dumps(
                {
                    "times": result.times,
                    "values": result.values,
                    "group_index": result.group_index,
                    "lumped_states": result.lumped_states,
                    "squeeze": result._squeeze,
                }
            )
        except Exception as error:
            responses.put(
                (
                    "error",
                    request_id,
                    _pickle_error(error),
                    f"{type(error).__name__}: {error}",
                )
            )
        else:
            responses.put(("result", request_id, body))

    async with service:
        while True:
            message = await loop.run_in_executor(None, requests.get)
            kind = message[0]
            if kind == "shutdown":
                break
            if kind == "stats":
                # Thread accounting rides along so the front (and the
                # oversubscription regression test) can verify a dense run
                # stays within budget: worker-pool bound, live thread count
                # and the BLAS pin this process inherited at spawn.
                threads = {
                    "pool_max_workers": service.max_workers,
                    "active_threads": threading.active_count(),
                    "blas_env": {
                        variable: os.environ.get(variable)
                        for variable in BLAS_ENV_VARS
                    },
                }
                snapshot = pickle.dumps(
                    (
                        service.stats,
                        service.cache_stats(),
                        service.artifacts.chain_fingerprints(),
                        threads,
                    )
                )
                responses.put(("stats", message[1], snapshot))
                continue
            task = loop.create_task(run_request(message[1], message[2]))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


def _shard_worker_main(
    shard_index: int, requests: Any, responses: Any, config: dict
) -> None:
    """Spawn entry point of one shard worker process."""
    try:
        asyncio.run(_shard_worker(shard_index, requests, responses, config))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
@dataclass
class ShardSnapshot:
    """One shard's shared-nothing stats summary (the ``stats`` reply)."""

    index: int
    alive: bool
    service: ServiceStats | None = None
    cache: CacheStats | None = None
    fingerprints: frozenset[str] = frozenset()
    #: Worker thread accounting: pool bound, live thread count and the BLAS
    #: environment pin the process inherited (oversubscription guard).
    threads: dict | None = None


@dataclass
class ShardedServiceStats:
    """Front-end counters of the sharded service (routing layer only).

    Per-shard execution counters live in the workers and are fetched on
    demand through :meth:`ShardedScenarioService.shard_snapshots`.
    """

    submissions: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    timeouts: int = 0
    routed: dict[int, int] = field(default_factory=dict)

    def summary(self) -> str:
        """One line for CLI output and logs."""
        per_shard = " ".join(
            f"shard{index}={count}" for index, count in sorted(self.routed.items())
        )
        return (
            f"sharded: submissions={self.submissions} completed={self.completed} "
            f"failed={self.failed} rejected={self.rejected} "
            f"timeouts={self.timeouts} routed: {per_shard or '(none)'}"
        )


@dataclass
class _Shard:
    """Parent-side handle of one worker process."""

    index: int
    process: Any
    requests: Any
    responses: Any
    inflight: dict[int, tuple[asyncio.Future, MeasureRequest | None]] = field(
        default_factory=dict
    )
    alive: bool = True
    closing: bool = False


class ShardedScenarioService:
    """Scenario portfolios partitioned across N worker processes.

    Parameters
    ----------
    num_shards:
        Worker-process count; each runs one :class:`ScenarioService` with a
        private :class:`ArtifactCache`.
    coalesce_window, max_batch, lump, batched, epsilon, max_workers:
        Forwarded to every worker's in-process service.
    max_pending:
        Bound on in-flight submissions across the whole front; beyond it
        ``submit()`` raises :class:`~repro.service.QueueFull`.
    default_timeout:
        Per-request deadline applied when ``submit()`` gets none.
    max_entries:
        Per-shard artifact-cache bound.
    registry:
        Scenario registry backing :meth:`submit_scenario` (expanded in the
        parent, then routed per request); defaults to the paper's families.
    start_method:
        ``multiprocessing`` start method; ``spawn`` (the default) keeps
        workers free of inherited interpreter state.
    engine, dtype:
        Default numeric backend and sweep lane forwarded to every worker's
        service (see :class:`ScenarioService`).  When the workers may take
        the dense-BLAS path, the front pins the BLAS thread count to
        :func:`repro.ctmc.engines.blas_thread_budget` around the spawns so
        N shards never oversubscribe the machine N-fold.

    Use as an async context manager::

        async with ShardedScenarioService(num_shards=2, lump=True) as service:
            pairs = await service.submit_scenario("fig4_5")
    """

    def __init__(
        self,
        num_shards: int = DEFAULT_NUM_SHARDS,
        *,
        coalesce_window: float = DEFAULT_COALESCE_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_pending: int | None = None,
        default_timeout: float | None = None,
        lump: bool = False,
        batched: bool = True,
        epsilon: float = DEFAULT_EPSILON,
        max_workers: int | None = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        registry: ScenarioRegistry | None = None,
        start_method: str = "spawn",
        engine: str | None = None,
        dtype=None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be at least 1 (or None)")
        if default_timeout is not None and default_timeout <= 0:
            raise ValueError("default_timeout must be positive (or None)")
        self.num_shards = int(num_shards)
        self.max_pending = None if max_pending is None else int(max_pending)
        self.default_timeout = (
            None if default_timeout is None else float(default_timeout)
        )
        self.registry = registry if registry is not None else paper_registry()
        self.stats = ShardedServiceStats(
            routed={index: 0 for index in range(self.num_shards)}
        )
        self._worker_config = {
            "coalesce_window": float(coalesce_window),
            "max_batch": int(max_batch),
            "lump": bool(lump),
            "batched": bool(batched),
            "epsilon": float(epsilon),
            "max_entries": int(max_entries),
            "max_workers": max_workers,
            "engine": engine,
            "dtype": None if dtype is None else normalise_dtype(dtype).name,
        }
        self._start_method = start_method
        self._shards: list[_Shard] = []
        self._ids = itertools.count()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._expander = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-shard-expand"
        )
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "ShardedScenarioService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def start(self) -> None:
        """Spawn the worker processes and their reader/watcher threads."""
        if self._closed:
            raise ServiceClosed("the sharded scenario service has been closed")
        if self._started:
            return
        self._started = True
        self._loop = asyncio.get_running_loop()
        context = multiprocessing.get_context(self._start_method)
        # BLAS pools size themselves from the environment once, at library
        # load; pinning around the spawns means each of the N workers gets
        # 1/N of the cores instead of N full-sized pools (oversubscription
        # guard for the dense engine).  The parent's own environment is
        # restored afterwards.
        previous_blas = pin_blas_threads(blas_thread_budget(self.num_shards))
        try:
            spawned = []
            for index in range(self.num_shards):
                requests = context.Queue()
                responses = context.Queue()
                process = context.Process(
                    target=_shard_worker_main,
                    args=(index, requests, responses, self._worker_config),
                    daemon=True,
                    name=f"repro-shard-{index}",
                )
                process.start()
                spawned.append((index, process, requests, responses))
        finally:
            restore_blas_threads(previous_blas)
        for index, process, requests, responses in spawned:
            shard = _Shard(
                index=index, process=process, requests=requests, responses=responses
            )
            self._shards.append(shard)
            threading.Thread(
                target=self._read_responses,
                args=(shard,),
                daemon=True,
                name=f"repro-shard-{index}-reader",
            ).start()
            threading.Thread(
                target=self._watch_process,
                args=(shard,),
                daemon=True,
                name=f"repro-shard-{index}-watcher",
            ).start()

    async def close(self) -> None:
        """Shut every worker down (draining in-flight work, with a grace cap)."""
        if self._closed or not self._started:
            self._closed = True
            return
        self._closed = True
        for shard in self._shards:
            shard.closing = True
            if shard.alive:
                try:
                    shard.requests.put(("shutdown",))
                except Exception:  # pragma: no cover - queue already broken
                    pass
        assert self._loop is not None
        await self._loop.run_in_executor(None, self._join_workers)
        for shard in self._shards:
            shard.alive = False
            self._fail_inflight(
                shard, ServiceClosed("service closed while the request was in flight")
            )
        self._expander.shutdown(wait=False)

    def _join_workers(self) -> None:
        deadline = _SHUTDOWN_GRACE
        for shard in self._shards:
            shard.process.join(timeout=deadline)
            if shard.process.is_alive():  # pragma: no cover - stuck worker
                shard.process.terminate()
                shard.process.join(timeout=1.0)
            # Unblock the queue feeder threads so interpreter exit is clean.
            for channel in (shard.requests, shard.responses):
                try:
                    channel.close()
                    channel.cancel_join_thread()
                except Exception:  # pragma: no cover
                    pass

    # ------------------------------------------------------------------
    # background threads
    # ------------------------------------------------------------------
    def _read_responses(self, shard: _Shard) -> None:
        """Drain one shard's response queue onto the event loop.

        Payloads are unpickled *here*, on the reader thread, so large value
        arrays and stats snapshots never serialize on the event loop (which
        also serves HTTP traffic).
        """
        while True:
            try:
                message = shard.responses.get(timeout=0.25)
            except queue_module.Empty:
                if shard.closing or not shard.process.is_alive():
                    return
                continue
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                return
            message = self._decode_response(shard, message)
            self._call_on_loop(partial(self._handle_response, shard, message))

    @staticmethod
    def _decode_response(shard: _Shard, message: tuple) -> tuple:
        """Unpickle a response's variable part (reader-thread side)."""
        kind, request_id = message[0], message[1]
        try:
            if kind in ("result", "stats"):
                return (kind, request_id, pickle.loads(message[2]))
            # kind == "error": the exception itself may be unpicklable.
            error_bytes, text = message[2], message[3]
            error = pickle.loads(error_bytes) if error_bytes is not None else None
            return (kind, request_id, error, text)
        except Exception as decode_error:  # pragma: no cover - defensive
            return (
                "error",
                request_id,
                None,
                f"undecodable shard {shard.index} response: {decode_error}",
            )

    def _watch_process(self, shard: _Shard) -> None:
        """Fail a dead shard's in-flight futures the moment it exits."""
        shard.process.join()
        self._call_on_loop(partial(self._on_shard_exit, shard))

    def _call_on_loop(self, callback) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(callback)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def _on_shard_exit(self, shard: _Shard) -> None:
        shard.alive = False
        if shard.closing or self._closed:
            return
        self._fail_inflight(
            shard,
            ShardCrashed(
                f"shard {shard.index} worker exited with code "
                f"{shard.process.exitcode} while requests were in flight"
            ),
        )

    def _fail_inflight(self, shard: _Shard, error: BaseException) -> None:
        for future, request in list(shard.inflight.values()):
            if not future.done():
                if request is not None:
                    self.stats.failed += 1
                future.set_exception(error)
        shard.inflight.clear()

    def _handle_response(self, shard: _Shard, message: tuple) -> None:
        kind, request_id = message[0], message[1]
        entry = shard.inflight.pop(request_id, None)
        if entry is None:  # deadline expired or shard already failed over
            return
        future, request = entry
        if future.done():
            return
        if kind == "result":
            payload = message[2]
            self.stats.completed += 1
            future.set_result(
                MeasureResult(
                    request=request,
                    times=payload["times"],
                    values=payload["values"],
                    group_index=payload["group_index"],
                    lumped_states=payload["lumped_states"],
                    _squeeze=payload["squeeze"],
                )
            )
        elif kind == "error":
            error, text = message[2], message[3]
            if error is None:
                error = RuntimeError(f"shard {shard.index} request failed: {text}")
            self.stats.failed += 1
            future.set_exception(error)
        else:  # stats snapshot
            future.set_result(message[2])

    # ------------------------------------------------------------------
    # submission API (mirrors ScenarioService)
    # ------------------------------------------------------------------
    def _ensure_ready(self) -> None:
        if self._closed:
            raise ServiceClosed("the sharded scenario service has been closed")
        if not self._started:
            raise RuntimeError(
                "ShardedScenarioService must be started first "
                "(use 'async with' or await start())"
            )

    def _inflight_count(self) -> int:
        return sum(
            1
            for shard in self._shards
            for _, request in shard.inflight.values()
            if request is not None
        )

    def shard_index_for(self, request: MeasureRequest) -> int:
        """The shard that owns this request's chain."""
        return shard_for_fingerprint(request.chain.fingerprint, self.num_shards)

    async def submit(
        self, request: MeasureRequest, timeout: float | None = None
    ) -> MeasureResult:
        """Route one request to its owning shard and await the result.

        Semantics match :meth:`ScenarioService.submit`: values are
        bit-comparable to a single-process service (same numerical path,
        executed in the worker), :class:`QueueFull` applies backpressure at
        ``max_pending`` in-flight submissions, and a ``timeout`` abandons
        only this caller's future.
        """
        self._ensure_ready()
        if (
            self.max_pending is not None
            and self._inflight_count() >= self.max_pending
        ):
            self.stats.rejected += 1
            raise QueueFull(
                f"sharded service has {self._inflight_count()} requests in flight "
                f"(max_pending={self.max_pending}); back off and resubmit"
            )
        shard = self._shards[self.shard_index_for(request)]
        if not shard.alive:
            raise ShardCrashed(
                f"shard {shard.index} is down; request for chain "
                f"{request.chain.fingerprint[:12]}... cannot be served"
            )
        assert self._loop is not None
        # Serializing a chain's sparse matrices is O(transitions); keep it
        # off the event loop, which also serves HTTP traffic.
        payload = await self._loop.run_in_executor(None, pickle.dumps, request)
        if not shard.alive:  # the worker may have died while we serialized
            raise ShardCrashed(f"shard {shard.index} is down")
        request_id = next(self._ids)
        future: asyncio.Future = self._loop.create_future()
        shard.inflight[request_id] = (future, request)
        self.stats.submissions += 1
        self.stats.routed[shard.index] = self.stats.routed.get(shard.index, 0) + 1
        shard.requests.put(("request", request_id, payload))
        timeout = self.default_timeout if timeout is None else timeout
        try:
            return await await_with_deadline(future, timeout, self.stats)
        finally:
            shard.inflight.pop(request_id, None)

    async def submit_many(
        self, requests: list[MeasureRequest], timeout: float | None = None
    ) -> list[MeasureResult]:
        """Submit several requests (each routed independently) and await all.

        Like :meth:`ScenarioService.submit_many`: the first failure is
        raised only after every sibling future has settled.
        """
        settled = await asyncio.gather(
            *(self.submit(request, timeout=timeout) for request in requests),
            return_exceptions=True,
        )
        for outcome in settled:
            if isinstance(outcome, BaseException):
                raise outcome
        return list(settled)

    async def submit_scenario(
        self, name: str, points: int | None = None, timeout: float | None = None
    ) -> list[tuple[MeasureRequest, MeasureResult]]:
        """Expand a registered scenario and fan its family out over the shards.

        Expansion (state-space construction) runs on a parent-side worker
        thread; the resulting requests are then routed per chain, so every
        curve of the family lands on the shard owning its chain.
        """
        self._ensure_ready()
        assert self._loop is not None
        requests = await self._loop.run_in_executor(
            self._expander, partial(self.registry.expand, name, points=points)
        )
        results = await self.submit_many(requests, timeout=timeout)
        return list(zip(requests, results))

    # ------------------------------------------------------------------
    # shared-nothing stats aggregation
    # ------------------------------------------------------------------
    async def shard_snapshots(self, timeout: float = 30.0) -> list[ShardSnapshot]:
        """One :class:`ShardSnapshot` per shard (dead shards marked, not raised)."""
        self._ensure_ready()
        assert self._loop is not None

        async def snapshot(shard: _Shard) -> ShardSnapshot:
            if not shard.alive:
                return ShardSnapshot(index=shard.index, alive=False)
            request_id = next(self._ids)
            future: asyncio.Future = self._loop.create_future()
            shard.inflight[request_id] = (future, None)
            try:
                shard.requests.put(("stats", request_id))
                service, cache, fingerprints, threads = await asyncio.wait_for(
                    future, timeout
                )
            except (asyncio.TimeoutError, ShardCrashed, ServiceClosed):
                return ShardSnapshot(index=shard.index, alive=shard.alive)
            finally:
                shard.inflight.pop(request_id, None)
            return ShardSnapshot(
                index=shard.index,
                alive=True,
                service=service,
                cache=cache,
                fingerprints=frozenset(fingerprints),
                threads=threads,
            )

        return list(await asyncio.gather(*(snapshot(s) for s in self._shards)))

    async def metrics_text(self) -> str:
        """Aggregated Prometheus text dump across every shard plus the front.

        Shard counters are summed into the same ``repro_service_*`` /
        ``repro_cache_*`` series a single-process service exposes (so
        dashboards work unchanged), followed by front-end routing series
        with per-shard labels.
        """
        snapshots = await self.shard_snapshots()
        combined_service = ServiceStats()
        combined_cache = CacheStats()
        for snapshot in snapshots:
            if snapshot.service is not None:
                combined_service.absorb(snapshot.service)
            if snapshot.cache is not None:
                combined_cache.absorb(snapshot.cache)
        lines = [combined_service.metrics(), combined_cache.metrics()]
        front = {
            "submissions_total": self.stats.submissions,
            "completed_total": self.stats.completed,
            "failed_total": self.stats.failed,
            "rejected_total": self.stats.rejected,
            "timeouts_total": self.stats.timeouts,
        }
        front_lines = []
        for name, value in front.items():
            metric = f"repro_front_{name}"
            front_lines.append(f"# TYPE {metric} counter")
            front_lines.append(f"{metric} {value}")
        front_lines.append("# TYPE repro_shard_alive gauge")
        for snapshot in snapshots:
            front_lines.append(
                f'repro_shard_alive{{shard="{snapshot.index}"}} '
                f"{1 if snapshot.alive else 0}"
            )
        front_lines.append("# TYPE repro_shard_routed_total counter")
        for index in sorted(self.stats.routed):
            front_lines.append(
                f'repro_shard_routed_total{{shard="{index}"}} '
                f"{self.stats.routed[index]}"
            )
        front_lines.append("# TYPE repro_shard_owned_chains gauge")
        for snapshot in snapshots:
            front_lines.append(
                f'repro_shard_owned_chains{{shard="{snapshot.index}"}} '
                f"{len(snapshot.fingerprints)}"
            )
        lines.append("\n".join(front_lines))
        return "\n".join(lines) + "\n"
