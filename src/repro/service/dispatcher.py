"""The asyncio scenario service: queued submissions, coalesced sweeps.

:class:`ScenarioService` is the multi-client front end over the batched
analysis machinery.  Many concurrent clients ``await service.submit(...)``
(or :meth:`~ScenarioService.submit_scenario` with a registry name); a
single dispatcher task collects submissions across callers for a short
*coalescing window* — cut short when the *size cap* is reached — and then
flushes the whole batch through one :func:`repro.analysis.build_plan` /
execution-unit pass:

* requests from different clients that agree on (chain, rate, grid,
  epsilon) merge into one group and therefore one uniformization sweep, so
  ``N`` clients asking for the same curve family cost no more sweeps than
  one batched session;
* independent execution units (regular groups, bundled interval
  signatures) run concurrently on a worker thread pool;
* every submission owns a future that is resolved with exactly its own
  :class:`~repro.analysis.MeasureResult` slice — a poisoned request fails
  its *own* future (at validation or execution time) without wedging the
  dispatcher or the rest of its batch;
* expensive intermediates (absorbing transforms, lumping quotients,
  uniformized operators, Fox–Glynn windows) persist across flushes in a
  process-wide :class:`repro.service.ArtifactCache`, so a repeat portfolio
  sweep recomputes none of them.

A quick example — three clients sharing one service::

    async def client(service, disaster):
        request = survivability_request(space, disaster, 1, times)
        result = await service.submit(request)
        return result.squeezed

    async with ScenarioService(lump=True) as service:
        curves = await asyncio.gather(
            *(client(service, d) for d in disasters)
        )
        print(service.stats.summary())
"""

from __future__ import annotations

import asyncio
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable

from repro.analysis import (
    MeasureRequest,
    MeasureResult,
    SessionStats,
    build_plan,
    execution_units,
    normalise_request,
)
from repro.ctmc.engines import default_worker_count, normalise_engine_mode
from repro.ctmc.linsolve import LinearSolveStats
from repro.ctmc.uniformization import DEFAULT_EPSILON, UniformizationStats
from repro.service.cache import GLOBAL_ARTIFACTS, ArtifactCache, CacheStats
from repro.service.registry import ScenarioRegistry, paper_registry

#: Default coalescing window in seconds: long enough for an event-loop tick
#: burst of client submissions to land in one flush, short enough to stay
#: interactive.
DEFAULT_COALESCE_WINDOW = 0.01

#: Default size cap: a flush is triggered early once this many requests are
#: pending, bounding both latency and batch memory.
DEFAULT_MAX_BATCH = 256


class ServiceClosed(RuntimeError):
    """Raised by futures of submissions that a closing service abandoned."""


class QueueFull(RuntimeError):
    """Raised by ``submit()`` when the bounded pending queue is at capacity.

    Backpressure is synchronous and cheap: the rejected submission never
    enters the queue, so it cannot poison other callers or occupy a slot a
    retry could use.  Clients are expected to back off and resubmit (the
    HTTP front end maps this to ``503``).
    """


class ScenarioTimeout(TimeoutError):
    """Raised by ``submit()`` when a per-request deadline expires.

    The deadline cancels only the submitting caller's future: the shared
    flush keeps running for its other members, and a result arriving after
    the deadline is discarded instead of resolving a stale future.
    """


#: Flush-latency bucket upper bounds in seconds: sub-millisecond flushes up
#: to multi-second portfolio batches, roughly log-spaced (Prometheus style).
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass
class LatencyHistogram:
    """A fixed-bucket latency histogram (Prometheus-compatible shape).

    ``counts[i]`` is the number of observations with value at most
    ``bounds[i]`` *exclusive of earlier buckets* (plain, not cumulative);
    ``counts[-1]`` is the overflow bucket.  :meth:`metric_lines` renders the
    cumulative ``_bucket``/``_sum``/``_count`` series of the Prometheus text
    exposition format.
    """

    bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    counts: list[int] = field(default_factory=list)
    observations: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        elif len(self.counts) != len(self.bounds) + 1:
            raise ValueError("counts must have one entry per bucket plus overflow")

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        seconds = float(seconds)
        index = 0
        while index < len(self.bounds) and seconds > self.bounds[index]:
            index += 1
        self.counts[index] += 1
        self.observations += 1
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)

    def quantile_bound(self, quantile: float) -> float:
        """The smallest bucket bound covering ``quantile`` of observations.

        Returns ``inf`` when the quantile falls into the overflow bucket and
        ``nan`` when nothing was observed; an upper *bound*, not an
        interpolated estimate — honest about the bucket resolution.
        """
        if not self.observations:
            return float("nan")
        needed = quantile * self.observations
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            if cumulative >= needed:
                return bound
        return float("inf")

    def summary(self) -> str:
        """One line for CLI output and logs."""
        if not self.observations:
            return "flush_latency: (no flushes)"
        mean = self.total_seconds / self.observations
        return (
            f"flush_latency: n={self.observations} mean={mean * 1e3:.1f}ms "
            f"p50<={self.quantile_bound(0.5) * 1e3:.1f}ms "
            f"p95<={self.quantile_bound(0.95) * 1e3:.1f}ms "
            f"max={self.max_seconds * 1e3:.1f}ms"
        )

    def absorb(self, other: "LatencyHistogram") -> None:
        """Merge another histogram of identical bucket bounds into this one.

        Used when aggregating per-shard snapshots into one ``/metrics``
        dump; mismatched bounds would silently mis-bucket, so they raise.
        """
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bucket bounds")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.observations += other.observations
        self.total_seconds += other.total_seconds
        self.max_seconds = max(self.max_seconds, other.max_seconds)

    def metric_lines(self, name: str) -> list[str]:
        """Prometheus text-format ``_bucket``/``_sum``/``_count`` series."""
        lines = [f"# TYPE {name} histogram"]
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            lines.append(f'{name}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{name}_bucket{{le="+Inf"}} {self.observations}')
        lines.append(f"{name}_sum {self.total_seconds:.6f}")
        lines.append(f"{name}_count {self.observations}")
        return lines


@dataclass
class ServiceStats:
    """Counters describing what the service did across its lifetime.

    ``session`` aggregates the usual planner/executor work counters
    (requests, groups, sweeps, matvecs, lumping compression, linear-solver
    factorizations) over every flush; the service-level counters describe
    the queueing layer above, and ``flush_latency`` histograms the
    wall-clock duration of each flush (validation + planning + execution).
    """

    submissions: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    timeouts: int = 0
    flushes: int = 0
    largest_flush: int = 0
    session: SessionStats = field(default_factory=SessionStats)
    flush_latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def coalesced_per_flush(self) -> float:
        """Mean number of submissions sharing one plan (1.0 = no coalescing)."""
        return self.session.requests / self.flushes if self.flushes else 0.0

    def absorb(self, other: "ServiceStats") -> None:
        """Accumulate another stats object (e.g. one shard's snapshot)."""
        self.submissions += other.submissions
        self.completed += other.completed
        self.failed += other.failed
        self.rejected += other.rejected
        self.timeouts += other.timeouts
        self.flushes += other.flushes
        self.largest_flush = max(self.largest_flush, other.largest_flush)
        self.session.absorb(other.session)
        self.flush_latency.absorb(other.flush_latency)

    def summary(self) -> str:
        """One line for CLI output and logs."""
        backpressure = (
            f" rejected={self.rejected} timeouts={self.timeouts}"
            if self.rejected or self.timeouts
            else ""
        )
        return (
            f"service: submissions={self.submissions} flushes={self.flushes} "
            f"coalesced/flush={self.coalesced_per_flush:.1f} "
            f"largest_flush={self.largest_flush} failed={self.failed}"
            f"{backpressure} | "
            + self.session.summary()
            + " | "
            + self.flush_latency.summary()
        )

    def metrics(self, prefix: str = "repro_service") -> str:
        """A ``/metrics``-style text dump of every counter (Prometheus format).

        Printed by ``python -m repro serve --metrics`` and intended to be
        served verbatim by a future HTTP front end.
        """
        counters = {
            "submissions_total": self.submissions,
            "completed_total": self.completed,
            "failed_total": self.failed,
            "rejected_total": self.rejected,
            "timeouts_total": self.timeouts,
            "flushes_total": self.flushes,
            "largest_flush": self.largest_flush,
            "requests_total": self.session.requests,
            "groups_total": self.session.groups,
            "sweeps_total": self.session.sweeps,
            "matvecs_total": self.session.matvecs,
            "applies_total": self.session.applies,
            "sparse_flops_total": self.session.sparse_flops,
            "equivalent_nnz_total": self.session.equivalent_nnz,
            "factorizations_total": self.session.factorizations,
            "dense_factorizations_total": self.session.dense_factorizations,
            "linear_solves_total": self.session.linear_solves,
            "solved_columns_total": self.session.solved_columns,
            "lumped_groups_total": self.session.lumped_groups,
            "lump_failures_total": self.session.lump_failures,
        }
        lines: list[str] = []
        for name, value in counters.items():
            metric = f"{prefix}_{name}"
            kind = "gauge" if name == "largest_flush" else "counter"
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {value}")
        lines.extend(self.flush_latency.metric_lines(f"{prefix}_flush_latency_seconds"))
        return "\n".join(lines)


async def await_with_deadline(
    future: asyncio.Future,
    timeout: float | None,
    stats: Any,
    detail: Callable[[], str | None] | None = None,
) -> Any:
    """Await a submission future under a per-request deadline.

    Expiry cancels *this* future only (``asyncio.wait_for`` semantics):
    siblings in the same flush are untouched.  Shared by the in-process
    dispatcher and the sharded front so their timeout semantics (counter,
    exception type, message) cannot drift; ``stats`` only needs a
    ``timeouts`` attribute.  ``detail``, when given, is called at expiry to
    append where the request was stuck (e.g. parked behind a shard restart)
    to the timeout message.
    """
    if timeout is None:
        return await future
    try:
        return await asyncio.wait_for(future, timeout)
    except asyncio.TimeoutError:
        stats.timeouts += 1
        message = f"scenario request did not complete within {timeout}s"
        extra = detail() if detail is not None else None
        if extra:
            message = f"{message} ({extra})"
        raise ScenarioTimeout(message) from None


@dataclass
class _Pending:
    """One queued submission: the request plus the caller's future."""

    request: MeasureRequest
    future: asyncio.Future


class ScenarioService:
    """Queued multi-client front end over the batched analysis session.

    Parameters
    ----------
    coalesce_window:
        Seconds the dispatcher keeps collecting submissions after the first
        pending one before flushing (``0`` flushes every loop tick).
    max_batch:
        Pending-request count that cuts the window short.
    max_pending:
        Bound on the number of queued-but-unflushed submissions; beyond it
        ``submit()`` raises :class:`QueueFull` instead of enqueueing
        (``None`` = unbounded, the default).
    default_timeout:
        Per-request deadline in seconds applied when ``submit()`` is not
        given an explicit one; expiry raises :class:`ScenarioTimeout` and
        cancels only that caller's future (``None`` = no deadline).
    lump:
        Solve every group on its ordinary-lumpability quotient (quotients
        are cached process-wide per (chain, observable signature)).
    batched:
        ``False`` plans one group per request (comparison runs only).
    epsilon:
        Default Poisson-truncation error for requests without one.
    artifacts:
        The :class:`ArtifactCache` to use; defaults to the process-wide
        :data:`repro.service.GLOBAL_ARTIFACTS`.  Pass a fresh cache for
        isolated measurements.
    max_workers:
        Worker threads executing independent groups concurrently; ``None``
        uses :func:`repro.ctmc.engines.default_worker_count`, which bounds
        the pool so dense-BLAS kernels running on the workers cannot
        oversubscribe the machine.
    registry:
        Scenario registry backing :meth:`submit_scenario`; defaults to the
        paper's figure families (:func:`repro.service.paper_registry`).
    engine:
        Default numeric backend for submissions that do not set one — one
        of :data:`repro.ctmc.engines.ENGINE_MODES` (``None`` = process
        default, normally ``"auto"``).
    dtype:
        Default sweep lane (``"float64"``/``"float32"``) for submissions
        that do not set one (``None`` = process default).
    """

    def __init__(
        self,
        *,
        coalesce_window: float = DEFAULT_COALESCE_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_pending: int | None = None,
        default_timeout: float | None = None,
        lump: bool = False,
        batched: bool = True,
        epsilon: float = DEFAULT_EPSILON,
        artifacts: ArtifactCache | None = None,
        max_workers: int | None = None,
        registry: ScenarioRegistry | None = None,
        engine: str | None = None,
        dtype=None,
    ) -> None:
        if coalesce_window < 0:
            raise ValueError("coalesce_window must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be at least 1 (or None)")
        if default_timeout is not None and default_timeout <= 0:
            raise ValueError("default_timeout must be positive (or None)")
        self.coalesce_window = float(coalesce_window)
        self.max_batch = int(max_batch)
        self.max_pending = None if max_pending is None else int(max_pending)
        self.default_timeout = (
            None if default_timeout is None else float(default_timeout)
        )
        self.lump = lump
        self.batched = batched
        self.default_epsilon = float(epsilon)
        self.artifacts = artifacts if artifacts is not None else GLOBAL_ARTIFACTS
        self.registry = registry if registry is not None else paper_registry()
        self.engine = None if engine is None else normalise_engine_mode(engine)
        self.dtype = dtype
        self.stats = ServiceStats()
        self.max_workers = default_worker_count(max_workers)
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-service"
        )
        self._pending: list[_Pending] = []
        self._arrival: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None  # set while nothing is queued/in flight
        self._dispatcher: asyncio.Task | None = None
        self._flushing = False
        self._closed = False
        self._drain_requested = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "ScenarioService":
        self._ensure_running()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def _ensure_running(self) -> None:
        if self._closed:
            raise ServiceClosed("the scenario service has been closed")
        if self._dispatcher is None or self._dispatcher.done():
            if self._dispatcher is not None and not self._dispatcher.cancelled():
                # A crashed dispatcher must not be respawned silently: the
                # root cause is surfaced (once) before the replacement runs.
                error = self._dispatcher.exception()
                if error is not None:
                    warnings.warn(
                        f"scenario-service dispatcher crashed and is being "
                        f"restarted ({type(error).__name__}: {error})",
                        RuntimeWarning,
                        stacklevel=3,
                    )
            self._arrival = asyncio.Event()
            self._idle = asyncio.Event()
            self._idle.set()
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop(), name="scenario-service-dispatcher"
            )

    async def close(self, drain: bool = True) -> None:
        """Stop the dispatcher (after flushing pending work, by default).

        Draining cuts the coalescing window short: whatever is pending is
        flushed immediately rather than waiting out ``coalesce_window``.
        """
        if self._closed:
            return
        if drain:
            self._drain_requested = True
            if self._arrival is not None:
                self._arrival.set()  # wake the window wait immediately
            if self._idle is not None and (self._pending or self._flushing):
                await self._idle.wait()
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for pending in self._pending:
            if not pending.future.done():
                pending.future.set_exception(
                    ServiceClosed("service closed before the request was executed")
                )
        self._pending.clear()
        self._pool.shutdown(wait=False)

    def cache_stats(self) -> CacheStats:
        """Snapshot of the artifact cache's per-kind hit/miss counters."""
        return self.artifacts.stats()

    def metrics_text(self) -> str:
        """The full Prometheus text dump: service counters plus cache counters.

        What ``GET /metrics`` of the HTTP front end serves for a
        single-process service (the sharded service aggregates one of these
        per shard).  Optimizer counters ride along whenever the policy
        optimizer has run in this process.
        """
        from repro.optimize.stats import global_optimizer_stats

        return (
            self.stats.metrics()
            + "\n"
            + self.cache_stats().metrics()
            + "\n"
            + global_optimizer_stats().metrics()
            + "\n"
        )

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------
    def _enqueue(self, request: MeasureRequest) -> asyncio.Future:
        self._ensure_running()
        if (
            self.max_pending is not None
            and len(self._pending) >= self.max_pending
        ):
            self.stats.rejected += 1
            raise QueueFull(
                f"scenario service has {len(self._pending)} pending submissions "
                f"(max_pending={self.max_pending}); back off and resubmit"
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append(_Pending(request=request, future=future))
        self.stats.submissions += 1
        assert self._arrival is not None and self._idle is not None
        self._idle.clear()
        self._arrival.set()
        return future

    async def _await_with_deadline(
        self, future: asyncio.Future, timeout: float | None
    ) -> MeasureResult:
        """Await under the effective deadline; the dispatcher later skips
        futures the expiry cancelled."""
        timeout = self.default_timeout if timeout is None else timeout
        return await await_with_deadline(future, timeout, self.stats)

    async def submit(
        self, request: MeasureRequest, timeout: float | None = None
    ) -> MeasureResult:
        """Queue one request and await its result.

        The call coalesces with every other submission pending in the same
        window; the returned result is exactly the slice this request would
        have received from a standalone session (values equal to 1e-12).
        With the pending queue at ``max_pending`` the call raises
        :class:`QueueFull` without enqueueing; ``timeout`` (or the service's
        ``default_timeout``) bounds the wait and raises
        :class:`ScenarioTimeout` on expiry, cancelling only this future.
        """
        future = self._enqueue(request)
        return await self._await_with_deadline(future, timeout)

    async def submit_many(
        self, requests: list[MeasureRequest], timeout: float | None = None
    ) -> list[MeasureResult]:
        """Queue several requests at once and await all their results.

        Raises the first failure, but only after every future has settled —
        so sibling failures are all retrieved (no orphaned exceptions) and
        the dispatcher is never left with half-awaited futures.  The
        optional ``timeout`` applies per request, not to the batch total.
        """
        futures: list[asyncio.Future] = []
        try:
            for request in requests:
                futures.append(self._enqueue(request))
        except QueueFull:
            # All-or-nothing: cancelling the partial batch makes the
            # dispatcher drop it before planning, so a rejected caller is
            # never billed for half a family computing in the background.
            for future in futures:
                future.cancel()
            raise
        settled = await asyncio.gather(
            *(self._await_with_deadline(future, timeout) for future in futures),
            return_exceptions=True,
        )
        for outcome in settled:
            if isinstance(outcome, BaseException):
                raise outcome
        return list(settled)

    async def submit_scenario(
        self, name: str, points: int | None = None, timeout: float | None = None
    ) -> list[tuple[MeasureRequest, MeasureResult]]:
        """Expand a registered scenario and await the whole family.

        Returns ``(request, result)`` pairs so callers can use the request
        tags ``(scenario, line, ..., strategy)`` to reassemble curves.
        Expansion may build case-study state spaces (seconds of work on a
        cold process), so it runs on the worker pool, keeping the event
        loop — and every other client's submissions — responsive.
        """
        self._ensure_running()
        requests = await asyncio.get_running_loop().run_in_executor(
            self._pool, partial(self.registry.expand, name, points=points)
        )
        results = await self.submit_many(requests, timeout=timeout)
        return list(zip(requests, results))

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._arrival is not None
        loop = asyncio.get_running_loop()
        while True:
            await self._arrival.wait()
            self._arrival.clear()
            if not self._pending:
                continue
            # Coalescing window: keep collecting until it elapses or the
            # size cap is reached.  Submissions landing mid-flush queue up
            # for the next round.
            if self.coalesce_window > 0.0:
                deadline = loop.time() + self.coalesce_window
                while (
                    len(self._pending) < self.max_batch
                    and not self._drain_requested
                ):
                    remaining = deadline - loop.time()
                    if remaining <= 0.0:
                        break
                    try:
                        await asyncio.wait_for(self._arrival.wait(), remaining)
                    except asyncio.TimeoutError:
                        break
                    self._arrival.clear()
            else:
                # Window 0: give the current event-loop tick a chance to
                # finish enqueueing (clients started together still merge).
                await asyncio.sleep(0)
                self._arrival.clear()
            # The size cap genuinely bounds the flush: overflow from a
            # burst stays queued and immediately triggers the next round.
            batch = self._pending[: self.max_batch]
            self._pending = self._pending[self.max_batch :]
            if self._pending:
                self._arrival.set()
            # Submissions whose deadline expired while queued are already
            # cancelled; planning them would waste the whole flush's sweep
            # budget on results nobody can receive.
            batch = [pending for pending in batch if not pending.future.done()]
            if not batch:
                if not self._pending:
                    self._idle.set()
                continue
            self._flushing = True
            try:
                await self._flush(batch)
            except BaseException as error:
                # The dispatcher must never strand an in-flight batch: on
                # cancellation (close(drain=False)) or an unexpected escape
                # from _flush, every unresolved future of the batch is
                # failed so awaiting clients wake up.
                abandon = (
                    ServiceClosed("service closed while the request was in flight")
                    if isinstance(error, asyncio.CancelledError)
                    else error
                )
                for pending in batch:
                    self._fail(pending, abandon)
                if isinstance(error, asyncio.CancelledError):
                    raise
                # Otherwise stay alive and keep serving later submissions.
            finally:
                self._flushing = False
                if not self._pending:
                    self._idle.set()

    def _validate_and_plan(
        self, batch: list[_Pending]
    ) -> tuple[list[_Pending], list[tuple[_Pending, BaseException]], Any]:
        """Validate each request and plan the survivors (worker-pool side).

        Runs entirely off the event loop: per-submission validation means a
        poisoned request is rejected here — failing only its own future —
        and never reaches the shared plan.  (The survivors are normalised a
        second time inside ``build_plan``; deriving the masks/vectors is
        trivial next to the sweeps, and keeping the planner self-contained
        is worth the duplication.)
        """
        survivors: list[_Pending] = []
        rejected: list[tuple[_Pending, BaseException]] = []
        for pending in batch:
            try:
                normalise_request(pending.request)
            except Exception as error:
                rejected.append((pending, error))
            else:
                survivors.append(pending)
        plan = None
        if survivors:
            plan = build_plan(
                [pending.request for pending in survivors],
                lump=self.lump,
                batched=self.batched,
                default_epsilon=self.default_epsilon,
                artifacts=self.artifacts,
                default_engine=self.engine,
                default_dtype=self.dtype,
            )
        return survivors, rejected, plan

    async def _flush(self, batch: list[_Pending]) -> None:
        self.stats.flushes += 1
        self.stats.largest_flush = max(self.stats.largest_flush, len(batch))
        started = time.perf_counter()
        try:
            await self._flush_batch(batch)
        finally:
            self.stats.flush_latency.observe(time.perf_counter() - started)

    async def _flush_batch(self, batch: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        try:
            survivors, rejected, plan = await loop.run_in_executor(
                self._pool, partial(self._validate_and_plan, batch)
            )
        except Exception as error:
            # Planning over *validated* requests is essentially infallible
            # (lumping failures degrade to unlumped groups inside
            # build_plan); this is a genuine last resort.
            for pending in batch:
                self._fail(pending, error)
            return
        for pending, error in rejected:
            self._fail(pending, error)
        if plan is None:
            return

        results: list[MeasureResult | None] = [None] * plan.num_requests
        errors: dict[int, BaseException] = {}
        engines: list[UniformizationStats] = []
        linears: list[LinearSolveStats] = []

        async def run_unit(unit) -> None:
            # Units write disjoint results slots, so they may run
            # concurrently; a failing unit poisons only its own members.
            engine = UniformizationStats()
            linear = LinearSolveStats()
            try:
                await loop.run_in_executor(
                    self._pool, unit.run, results, engine, self.artifacts, linear
                )
            except Exception as error:
                for index in unit.request_indices:
                    errors[index] = error
            engines.append(engine)
            linears.append(linear)

        await asyncio.gather(*(run_unit(unit) for unit in execution_units(plan)))

        session = self.stats.session
        session.absorb_plan(plan)
        for engine in engines:
            session.absorb_engine(engine)
        for linear in linears:
            session.absorb_linear(linear)

        for position, pending in enumerate(survivors):
            if position in errors:
                self._fail(pending, errors[position])
            elif results[position] is None:
                self._fail(
                    pending,
                    RuntimeError("request was not resolved by any execution unit"),
                )
            elif not pending.future.done():
                self.stats.completed += 1
                pending.future.set_result(results[position])

    def _fail(self, pending: _Pending, error: BaseException) -> None:
        if not pending.future.done():
            self.stats.failed += 1
            pending.future.set_exception(error)
