"""Deterministic fault injection for the sharded scenario service.

The supervision layer in :mod:`repro.service.shard` claims the service is
self-healing; this module is how that claim is *proved*.  A
:class:`ChaosPolicy` is a seeded, fully deterministic schedule of faults
hooked into the worker side of the shard wire protocol:

``kill``
    The worker calls ``os._exit`` the moment it dequeues its N-th request
    message — a hard crash with requests in flight, exactly what a
    segfaulting or OOM-killed worker looks like from the parent.
``wedge``
    The worker blocks its message loop in a synchronous sleep.  The process
    stays *alive* (``process.join()`` never fires), so only the heartbeat
    liveness timeout can detect it — this is the scenario plain
    exit-watching supervision cannot handle.
``corrupt``
    The response payload of the N-th request is replaced with undecodable
    garbage, exercising the parent's defensive decode path: the fault must
    fail exactly its own request, never the reader thread.
``delay``
    The response of the N-th request is held back for ``delay`` seconds
    (asynchronously — the worker keeps serving its other requests).
``drop``
    The response of the N-th request is computed and then discarded; only
    the caller's own deadline can recover it.

Events are addressed by ``(shard, generation, at_message)`` where
``at_message`` counts *request* messages (heartbeat pings and stats probes
do not advance the counter, so adding monitoring never shifts a schedule)
and ``generation`` is the worker incarnation — generation 0 is the
initially spawned worker, each supervisor restart increments it.  Keying on
the generation is what lets a schedule say "kill this shard once": the
respawned worker runs fault-free instead of dying in a loop.

:meth:`ChaosPolicy.from_seed` derives the benchmark/CI schedule — one death
per shard (one of them a wedge) at a seeded mid-run position — from a
single integer, so CI can rotate the schedule per run
(``REPRO_CHAOS_SEED=$GITHUB_RUN_ID``) while any failure stays reproducible
from the logged seed.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Iterable

#: The fault kinds a :class:`ChaosEvent` may carry.
CHAOS_ACTIONS = ("kill", "wedge", "corrupt", "delay", "drop")

#: Environment variable CI uses to rotate the generated schedule per run.
CHAOS_SEED_ENV = "REPRO_CHAOS_SEED"

#: Default number of seconds a wedged worker holds its message loop.  Far
#: beyond any heartbeat timeout; the supervisor kills the process long
#: before the sleep returns.
DEFAULT_WEDGE_HOLD = 3600.0


def chaos_seed(default: int = 20100628) -> int:
    """The chaos seed from ``REPRO_CHAOS_SEED``, or ``default``.

    The fallback is the paper's DSN 2010 presentation date, for want of a
    more meaningful constant; what matters is that every consumer of the
    rotating-seed convention resolves it identically.
    """
    value = os.environ.get(CHAOS_SEED_ENV, "").strip()
    return int(value) if value else default


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: *what* happens to *which* worker and *when*.

    Parameters
    ----------
    action:
        One of :data:`CHAOS_ACTIONS`.
    shard:
        Index of the target shard.
    at_message:
        1-based request-message ordinal within the worker; the fault fires
        when the worker dequeues (``kill``/``wedge``) or answers
        (``corrupt``/``delay``/``drop``) that request.
    generation:
        Worker incarnation the event applies to (0 = initial spawn).
    delay:
        Seconds for ``delay`` responses / hold time for ``wedge``.
    exit_code:
        Process exit status used by ``kill``.
    """

    action: str
    shard: int
    at_message: int
    generation: int = 0
    delay: float = 0.0
    exit_code: int = 1

    def __post_init__(self) -> None:
        if self.action not in CHAOS_ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r}; "
                f"expected one of {CHAOS_ACTIONS}"
            )
        if self.shard < 0:
            raise ValueError("shard index must be non-negative")
        if self.at_message < 1:
            raise ValueError("at_message is 1-based and must be >= 1")
        if self.generation < 0:
            raise ValueError("generation must be non-negative")
        if self.delay < 0.0:
            raise ValueError("delay must be non-negative")


class ChaosPolicy:
    """A deterministic schedule of :class:`ChaosEvent` faults.

    Policies are immutable, picklable (they travel to the spawned workers
    inside the shard config) and validated up front: two events addressing
    the same ``(shard, generation, at_message)`` slot would make the
    schedule ambiguous and are rejected.
    """

    def __init__(
        self, events: Iterable[ChaosEvent] = (), seed: int | None = None
    ) -> None:
        self.events = tuple(events)
        self.seed = seed
        slots = [(e.shard, e.generation, e.at_message) for e in self.events]
        duplicates = {slot for slot in slots if slots.count(slot) > 1}
        if duplicates:
            raise ValueError(
                f"conflicting chaos events for (shard, generation, message) "
                f"slots {sorted(duplicates)}"
            )

    @classmethod
    def from_seed(
        cls,
        seed: int,
        num_shards: int,
        *,
        first_message: int = 2,
        horizon: int = 10,
        wedge_shards: int = 1,
        wedge_hold: float = DEFAULT_WEDGE_HOLD,
    ) -> "ChaosPolicy":
        """The standard resilience schedule: every shard dies exactly once.

        One generation-0 death per shard at a seeded position in
        ``[first_message, horizon]``; ``wedge_shards`` of them are wedges
        (recovered only via the heartbeat timeout), the rest hard kills.
        Same seed, same schedule — the CI gate logs the seed so any failure
        replays exactly.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if not 1 <= first_message <= horizon:
            raise ValueError("need 1 <= first_message <= horizon")
        rng = random.Random(seed)
        wedged = set(rng.sample(range(num_shards), min(wedge_shards, num_shards)))
        events = []
        for shard in range(num_shards):
            at_message = rng.randint(first_message, horizon)
            if shard in wedged:
                events.append(
                    ChaosEvent("wedge", shard, at_message, delay=wedge_hold)
                )
            else:
                events.append(ChaosEvent("kill", shard, at_message))
        return cls(events, seed=seed)

    def script_for(self, shard: int, generation: int) -> dict[int, ChaosEvent]:
        """The worker-side schedule: ``at_message -> event`` for one incarnation."""
        return {
            event.at_message: event
            for event in self.events
            if event.shard == shard and event.generation == generation
        }

    def describe(self) -> list[dict]:
        """The schedule as JSON-friendly dicts (benchmark reports, logs)."""
        return [
            {
                "action": event.action,
                "shard": event.shard,
                "at_message": event.at_message,
                "generation": event.generation,
                "delay": event.delay,
            }
            for event in self.events
        ]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ChaosPolicy) and self.events == other.events

    def __hash__(self) -> int:
        return hash(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ChaosPolicy(events={self.events!r}, seed={self.seed!r})"
