"""Process-wide artifact cache for expensive analysis intermediates.

Scenario portfolios evaluate the same underlying Markov models over and
over: every flush of the scenario service (and every standalone session
pointed at the cache) needs the same absorbing transforms, the same lumping
quotients, the same uniformized operators and largely the same Fox–Glynn
windows.  :class:`ArtifactCache` keeps all four families in one bounded,
hit/miss-instrumented LRU store:

=================  ===================================================
kind               key
=================  ===================================================
``transformed``    (chain fingerprint, absorbing-mask bytes)
``quotient``       (chain fingerprint, observable signature) — the lumped
                   chain, ``None`` (nothing collapsed), or a
                   :class:`repro.analysis.planner.QuotientTombstone`
                   recording a failed build so warm plans skip the doomed
                   refinement; interval-until forward quotients prefix the
                   signature with the quantized phase-2 seed-vector hash
``operator``       (chain fingerprint, uniformization rate)
``foxglynn``       (q·t, epsilon)
``factorization``  (chain fingerprint, system token) — LU factors of a
                   long-run linear system restricted to a state subset
                   (see :mod:`repro.ctmc.linsolve`)
``bscc``           (chain fingerprint,) — the BSCC decomposition
``stationary``     (chain fingerprint, subset signature + method) — one
                   BSCC's stationary vector
``absorption``     (chain fingerprint,) — the solved transient-to-BSCC
                   absorption-probability matrix
``embedded``       (chain fingerprint,) — the embedded (jump-chain)
                   transition matrix
``dense_operator`` (chain fingerprint, uniformization rate, dtype name
                   [, ``"backward"``]) — the densified operator the
                   :class:`repro.ctmc.engines.DenseEngine` GEMM walk uses;
                   the ``"backward"`` component marks the *non-transposed*
                   matrix of the interval-until value sweep so it cannot
                   shadow the forward (transposed) operator; stored with a
                   byte-size-aware weight (see below)
``engine``         (chain fingerprint, dtype name) — the backend the
                   :class:`repro.ctmc.engines.EngineSelector` resolved for
                   ``engine="auto"``
=================  ===================================================

The first four families are populated by the uniformization (transient)
path, the last four by the long-run linear-solver engine
(:class:`repro.ctmc.linsolve.SolverEngine`), which calls straight into
:meth:`ArtifactCache.get_or_create`.

Chains are keyed by :attr:`repro.ctmc.ctmc.CTMC.fingerprint` — a content
hash of the rate matrix — so a *rebuilt* chain with identical dynamics
still hits.  Fox–Glynn windows are keyed by the Poisson rate product
``q·t`` alone, so groups on different chains with equal ``q·t`` (e.g. the
FRF-1 and FFF-1 case-study chains, which share their uniformization rate)
share windows too.

The cache is thread-safe (the scenario service executes independent groups
on a worker pool) and deliberately caches *negative* quotient results
(``None`` — nothing collapsed) so repeat runs skip the refinement as well.
:data:`GLOBAL_ARTIFACTS` is the process-wide default instance.

**Weighted eviction.**  ``max_entries`` was tuned for CSR-sized artifacts;
a densified operator can be orders of magnitude larger, so entries carry a
*weight* (default 1) and eviction bounds the **total weight** rather than
the raw entry count.  Dense operators weigh
``ceil(nbytes / DENSE_WEIGHT_UNIT_BYTES)`` — one unit per CSR-operator-
equivalent — so a handful of big ``toarray()`` results cannot silently
blow the LRU budget while ordinary artifacts keep their one-slot cost.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.ctmc.ctmc import CTMC
from repro.ctmc.foxglynn import FoxGlynnWeights, fox_glynn

#: Default bound on the total cached-artifact weight (all kinds combined);
#: ordinary artifacts weigh 1, so for them this is an entry count.
DEFAULT_MAX_ENTRIES = 1024

#: One eviction-weight unit for byte-weighted artifacts — roughly the
#: memory footprint of one case-study CSR operator.
DENSE_WEIGHT_UNIT_BYTES = 256 * 1024

#: Sentinel distinguishing "never computed" from a cached ``None`` artifact.
_ABSENT = object()


@dataclass
class CacheKindStats:
    """Hit/miss/eviction counters for one artifact kind."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def copy(self) -> "CacheKindStats":
        return CacheKindStats(self.hits, self.misses, self.evictions)


@dataclass
class CacheStats:
    """A snapshot of the cache's per-kind counters."""

    kinds: dict[str, CacheKindStats] = field(default_factory=dict)

    def kind(self, name: str) -> CacheKindStats:
        return self.kinds.get(name, CacheKindStats())

    def absorb(self, other: "CacheStats") -> None:
        """Accumulate another snapshot (e.g. one shard's cache counters)."""
        for name, stats in other.kinds.items():
            mine = self.kinds.setdefault(name, CacheKindStats())
            mine.hits += stats.hits
            mine.misses += stats.misses
            mine.evictions += stats.evictions

    def misses_since(self, earlier: "CacheStats") -> dict[str, int]:
        """Per-kind miss deltas relative to an earlier snapshot.

        The scenario-service benchmark gates on this: a repeat portfolio
        sweep must report zero ``quotient`` and ``foxglynn`` misses.
        """
        return {
            name: stats.misses - earlier.kind(name).misses
            for name, stats in self.kinds.items()
        }

    def summary(self) -> str:
        """One line for CLI output and logs."""
        parts = [
            f"{name}={stats.hits}h/{stats.misses}m"
            + (f"/{stats.evictions}e" if stats.evictions else "")
            for name, stats in sorted(self.kinds.items())
        ]
        return "cache: " + (" ".join(parts) if parts else "(empty)")

    def metrics(self, prefix: str = "repro_cache") -> str:
        """A ``/metrics``-style text dump, one labelled series per kind.

        Complements :meth:`repro.service.ServiceStats.metrics`; printed by
        ``python -m repro serve --metrics``.
        """
        lines: list[str] = []
        for counter in ("hits", "misses", "evictions"):
            metric = f"{prefix}_{counter}_total"
            lines.append(f"# TYPE {metric} counter")
            for name, stats in sorted(self.kinds.items()):
                lines.append(f'{metric}{{kind="{name}"}} {getattr(stats, counter)}')
        return "\n".join(lines)


class ArtifactCache:
    """Bounded LRU cache of analysis artifacts, keyed by chain fingerprints.

    Parameters
    ----------
    max_entries:
        Upper bound on the total stored-artifact *weight* across all kinds
        (ordinary artifacts weigh 1, so for them this is an entry count);
        least-recently-used entries are evicted beyond it.  The most
        recent entry is always kept, even when it alone exceeds the budget.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[tuple, tuple[Any, int]] = OrderedDict()
        self._total_weight = 0
        self._stats: dict[str, CacheKindStats] = {}
        self._lock = threading.Lock()
        self._building: dict[tuple, threading.Lock] = {}

    # ------------------------------------------------------------------
    def get_or_create(
        self,
        kind: str,
        key: tuple,
        factory: Callable[[], Any],
        weight: int | Callable[[Any], int] = 1,
    ) -> Any:
        """Return the cached artifact for ``(kind, key)``, building it on miss.

        Exactly-once construction without a global stall: the cache-wide
        lock only guards the bookkeeping, while the factory runs under a
        *per-key* build lock — concurrent lookups of the same key wait for
        the one build (and then count a hit: nothing was recomputed), but
        builds of unrelated keys proceed in parallel on the worker pool.

        ``weight`` is the entry's eviction cost (an int, or a callable
        applied to the freshly built value — used for byte-size-aware
        accounting of dense arrays).
        """
        full_key = (kind, key)
        with self._lock:
            stats = self._stats.setdefault(kind, CacheKindStats())
            entry = self._entries.get(full_key, _ABSENT)
            if entry is not _ABSENT:
                stats.hits += 1
                self._entries.move_to_end(full_key)
                return entry[0]
            build_lock = self._building.setdefault(full_key, threading.Lock())
        with build_lock:
            with self._lock:
                entry = self._entries.get(full_key, _ABSENT)
                if entry is not _ABSENT:  # a racing thread built it meanwhile
                    stats.hits += 1
                    self._entries.move_to_end(full_key)
                    return entry[0]
            try:
                value = factory()
            except BaseException:
                # Prune the build-lock entry so failed keys neither leak
                # nor poison later (retried) lookups.
                with self._lock:
                    self._building.pop(full_key, None)
                raise
            cost = max(1, int(weight(value) if callable(weight) else weight))
            with self._lock:
                stats.misses += 1
                self._entries[full_key] = (value, cost)
                self._total_weight += cost
                self._building.pop(full_key, None)
                while self._total_weight > self.max_entries and len(self._entries) > 1:
                    evicted_key, (_, evicted_cost) = self._entries.popitem(last=False)
                    self._total_weight -= evicted_cost
                    self._stats.setdefault(
                        evicted_key[0], CacheKindStats()
                    ).evictions += 1
            return value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_weight(self) -> int:
        """Current total eviction weight of all stored entries."""
        with self._lock:
            return self._total_weight

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._total_weight = 0

    def stats(self) -> CacheStats:
        """A consistent snapshot of the per-kind counters."""
        with self._lock:
            return CacheStats(
                {name: counters.copy() for name, counters in self._stats.items()}
            )

    def chain_fingerprints(self) -> frozenset[str]:
        """The chain fingerprints that currently key at least one artifact.

        Every kind except ``foxglynn`` (which is keyed by the rate product
        ``q·t`` alone) leads its key with the chain's content fingerprint.
        The sharded-service benchmark gates on per-shard fingerprint sets
        being disjoint: routing by fingerprint must never build the same
        chain's artifacts on two shards.
        """
        with self._lock:
            return frozenset(
                key[0]
                for kind, key in self._entries
                if kind != "foxglynn" and key and isinstance(key[0], str)
            )

    # ------------------------------------------------------------------
    # typed convenience lookups (the keys documented in the module docstring)
    # ------------------------------------------------------------------
    def transformed_chain(self, base: CTMC, absorbing_mask: np.ndarray) -> CTMC:
        """``base`` with the masked states made absorbing, cached by content."""
        return self.get_or_create(
            "transformed",
            (base.fingerprint, absorbing_mask.tobytes()),
            lambda: base.make_absorbing(absorbing_mask),
        )

    def quotient(self, chain: CTMC, signature: str, factory: Callable[[], Any]) -> Any:
        """A lumping quotient per (chain, observable signature); may be ``None``."""
        return self.get_or_create("quotient", (chain.fingerprint, signature), factory)

    def uniformized_transpose(self, chain: CTMC) -> tuple[Any, float]:
        """The forward operator ``(Pᵀ, q)`` of ``chain`` at its default rate.

        Unlike :meth:`repro.ctmc.ctmc.CTMC.uniformized_transpose` this
        returns the cached matrix itself (no defensive copy): the sweep
        never mutates its operator, and skipping the copy is the point of
        sharing it across flushes.
        """
        rate = float(chain.max_exit_rate)
        return self.get_or_create(
            "operator",
            (chain.fingerprint, rate),
            lambda: chain.uniformized_transpose(),
        )

    def fox_glynn_window(self, rate_product: float, epsilon: float) -> FoxGlynnWeights:
        """Fox–Glynn weights for Poisson rate ``q·t``, shared across chains."""
        return self.get_or_create(
            "foxglynn",
            (float(rate_product), float(epsilon)),
            lambda: fox_glynn(rate_product, epsilon),
        )

    def dense_operator(
        self,
        chain: CTMC,
        rate: float,
        dtype_name: str,
        factory: Callable[[], np.ndarray],
        backward: bool = False,
    ) -> np.ndarray:
        """The densified forward operator for the dense GEMM backend.

        Weighted by byte size (one unit per :data:`DENSE_WEIGHT_UNIT_BYTES`)
        so a few large ``toarray()`` results cannot crowd out the rest of
        the budget that was tuned for CSR-sized artifacts.  ``backward``
        keys the non-transposed operator ``P`` of the interval value sweep
        separately — ``P`` and ``Pᵀ`` of one chain share the same
        (fingerprint, rate, dtype) and must not shadow each other.
        """
        key = (chain.fingerprint, float(rate), str(dtype_name))
        if backward:
            key = key + ("backward",)
        return self.get_or_create(
            "dense_operator",
            key,
            factory,
            weight=lambda value: -(-int(value.nbytes) // DENSE_WEIGHT_UNIT_BYTES),
        )

    def engine_choice(
        self, chain: CTMC, dtype_name: str, factory: Callable[[], str]
    ) -> str:
        """The backend the auto selector resolved for ``(chain, dtype)``."""
        return self.get_or_create(
            "engine", (chain.fingerprint, str(dtype_name)), factory
        )


#: The process-wide cache the scenario service (and anything else that asks
#: for cross-session artifact sharing) uses by default.
GLOBAL_ARTIFACTS = ArtifactCache()
