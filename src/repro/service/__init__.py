"""Async scenario service: queued multi-client analysis with shared caches.

The service layer turns the batched analysis session into a long-lived,
multi-client component — the repo's step from "fast library call" toward
the heavy-traffic north star:

* :class:`ScenarioService` — an asyncio front end; many clients
  ``await submit(...)`` measure requests (or registered scenario names), a
  micro-batching dispatcher coalesces submissions across callers into one
  plan per flush and executes independent groups on a worker pool, with
  bounded-queue backpressure (:class:`QueueFull`) and per-request deadlines
  (:class:`ScenarioTimeout`);
* :class:`ShardedScenarioService` — the multi-process front:
  scenario portfolios partitioned across N spawn workers (one service +
  artifact cache each) with per-shard chain ownership via fingerprint
  routing and a shared-nothing stats-snapshot protocol for ``/metrics``.
  The front is *supervised*: dead workers respawn with exponential backoff
  under a restart budget, wedged workers are caught by heartbeat pings,
  in-flight requests retry transparently and a down shard's chains fail
  over to the next alive shard;
* :class:`ChaosPolicy` / :class:`ChaosEvent` — seeded deterministic fault
  injection (kill/wedge/corrupt/delay/drop) wired into the worker side of
  the shard protocol, driving the chaos tests and the
  ``benchmarks/bench_resilience.py`` gate;
* :class:`ScenarioHTTPServer` — a minimal asyncio HTTP server
  (``POST /scenario``, ``GET /registry``, ``GET /metrics``) over either
  front (``python -m repro serve --http PORT [--shards N]``);
* :class:`ArtifactCache` / :data:`GLOBAL_ARTIFACTS` — the process-wide,
  bounded, hit/miss-instrumented store of absorbing transforms, lumping
  quotients, uniformized operators and Fox–Glynn windows, keyed by stable
  chain fingerprints so artifacts survive across flushes, sessions and
  rebuilt chains;
* :class:`ScenarioRegistry` / :func:`paper_registry` — named scenario
  specs for the paper's strategy × disaster × service-level grid, expanded
  into concrete requests on demand.

See ``examples/scenario_service.py`` for a runnable multi-client demo and
``python -m repro serve`` for the portfolio-sweeping CLI.
"""

from repro.service.cache import (
    DEFAULT_MAX_ENTRIES,
    GLOBAL_ARTIFACTS,
    ArtifactCache,
    CacheKindStats,
    CacheStats,
)
from repro.service.chaos import (
    CHAOS_ACTIONS,
    CHAOS_SEED_ENV,
    ChaosEvent,
    ChaosPolicy,
    chaos_seed,
)
from repro.service.dispatcher import (
    DEFAULT_COALESCE_WINDOW,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_MAX_BATCH,
    LatencyHistogram,
    QueueFull,
    ScenarioService,
    ScenarioTimeout,
    ServiceClosed,
    ServiceStats,
)
from repro.service.http import ScenarioHTTPServer
from repro.service.registry import (
    MEASURES,
    ScenarioRegistry,
    ScenarioSpec,
    paper_registry,
)
from repro.service.shard import (
    DEFAULT_NUM_SHARDS,
    ShardCrashed,
    ShardedScenarioService,
    ShardedServiceStats,
    ShardSnapshot,
    shard_for_fingerprint,
)

__all__ = [
    "ArtifactCache",
    "CHAOS_ACTIONS",
    "CHAOS_SEED_ENV",
    "CacheKindStats",
    "CacheStats",
    "ChaosEvent",
    "ChaosPolicy",
    "DEFAULT_COALESCE_WINDOW",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_NUM_SHARDS",
    "GLOBAL_ARTIFACTS",
    "LatencyHistogram",
    "MEASURES",
    "QueueFull",
    "ScenarioHTTPServer",
    "ScenarioRegistry",
    "ScenarioService",
    "ScenarioSpec",
    "ScenarioTimeout",
    "ServiceClosed",
    "ServiceStats",
    "ShardCrashed",
    "ShardSnapshot",
    "ShardedScenarioService",
    "ShardedServiceStats",
    "chaos_seed",
    "paper_registry",
    "shard_for_fingerprint",
]
