"""Tests for the cached linear-solver engine (`repro.ctmc.linsolve`).

Covers the engine primitives (subset signatures, stacked-RHS
factorizations, local vs artifact-cache-backed stores), the qualitative
0/1 precomputation of unbounded reachability, and the batched long-run
solves (reachability rewards, steady-state blocks) against their per-call
reference implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmc import CTMC
from repro.ctmc.ctmc import CTMCError
from repro.ctmc.dtmc import (
    DTMC,
    embedded_dtmc,
    qualitative_reachability,
    unbounded_reachability,
)
from repro.ctmc.linsolve import (
    Factorization,
    LinearSolveStats,
    SolverEngine,
    expected_values_under,
    reachability_reward_reference,
    reachability_reward_values,
    subset_signature,
)
from repro.ctmc.steady_state import (
    steady_state_distribution,
    steady_state_distribution_block,
    steady_state_values_per_state,
)
from repro.service import ArtifactCache


def random_chain(num_states: int, seed: int, absorbing: int = 0) -> CTMC:
    rng = np.random.default_rng(seed)
    rates = rng.random((num_states, num_states)) * (
        rng.random((num_states, num_states)) < 0.4
    )
    rates[0, 1] = 0.5  # keep at least one transition
    np.fill_diagonal(rates, 0.0)
    rates[num_states - absorbing :] = 0.0  # absorbing tail states
    initial = rng.random(num_states)
    return CTMC(rates, initial / initial.sum())


# ---------------------------------------------------------------------------
# engine primitives
# ---------------------------------------------------------------------------
class TestEnginePrimitives:
    def test_subset_signature_is_canonical_and_typed(self):
        mask = np.array([True, False, True, True, False])
        assert subset_signature(mask) == subset_signature(mask.copy())
        assert subset_signature(mask) != subset_signature(~mask)
        with pytest.raises(CTMCError):
            subset_signature(np.array([0, 2, 3]))  # index arrays are ambiguous

    def test_factorization_solves_stacked_columns(self):
        rng = np.random.default_rng(7)
        matrix = rng.random((6, 6)) + 6.0 * np.eye(6)
        rhs = rng.random((6, 4))
        factorization = Factorization(matrix)
        solution = factorization.solve(rhs)
        assert solution.shape == (6, 4)
        assert np.max(np.abs(matrix @ solution - rhs)) < 1e-10

    def test_engine_counts_factorizations_once_per_system(self):
        chain = random_chain(8, seed=1)
        engine = SolverEngine()
        mask = np.zeros(8, dtype=bool)
        mask[2:6] = True
        token = b"test|" + subset_signature(mask)

        def builder():
            indices = np.flatnonzero(mask)
            sub = chain.generator_matrix()[np.ix_(indices, indices)]
            return sub - 10.0 * np.eye(indices.size)

        first = engine.factorization(chain, token, builder)
        second = engine.factorization(chain, token, builder)
        assert first is second
        assert engine.stats.factorizations == 1
        engine.solve(first, np.ones(4))
        engine.solve(first, np.ones((4, 3)))
        assert engine.stats.solves == 2
        assert engine.stats.columns == 4

    def test_engines_share_factorizations_through_artifact_cache(self):
        chain = random_chain(8, seed=2)
        cache = ArtifactCache()
        stats = LinearSolveStats()
        token = b"shared|" + subset_signature(np.ones(8, dtype=bool))

        def builder():
            return chain.generator_matrix() - 3.0 * np.eye(8)

        first = SolverEngine(artifacts=cache, stats=stats).factorization(
            chain, token, builder
        )
        second = SolverEngine(artifacts=cache, stats=stats).factorization(
            chain, token, builder
        )
        assert first is second
        assert stats.factorizations == 1  # the second engine hit the cache
        snapshot = cache.stats()
        assert snapshot.kind("factorization").hits == 1
        assert snapshot.kind("factorization").misses == 1

    def test_stats_absorb_and_reset(self):
        stats = LinearSolveStats(factorizations=1, solves=2, columns=5)
        total = LinearSolveStats()
        total.absorb(stats)
        assert (total.factorizations, total.solves, total.columns) == (1, 2, 5)
        total.reset()
        assert (total.factorizations, total.solves, total.columns) == (0, 0, 0)


# ---------------------------------------------------------------------------
# qualitative precomputation
# ---------------------------------------------------------------------------
class TestQualitativeReachability:
    def test_irreducible_chain_is_all_certain(self):
        rates = np.zeros((6, 6))
        for state in range(6):
            rates[state, (state + 1) % 6] = 1.0 + state  # a strongly connected cycle
        rates[0, 3] = 0.5
        chain = CTMC(rates, {0: 1.0})
        matrix = embedded_dtmc(chain).transition_matrix
        target = np.zeros(6, dtype=bool)
        target[4] = True
        certain, maybe = qualitative_reachability(
            matrix, target, np.ones(6, dtype=bool)
        )
        # Strongly-connected jump chain: every state reaches the target
        # almost surely, so the linear system disappears entirely.
        assert certain.all()
        assert not maybe.any()

    def test_gambler_chain_classification(self):
        # 0 and 2 absorbing; from 1 the game goes either way.
        matrix = np.array(
            [
                [1.0, 0.0, 0.0],
                [0.5, 0.0, 0.5],
                [0.0, 0.0, 1.0],
            ]
        )
        dtmc = DTMC(matrix)
        certain, maybe = qualitative_reachability(
            dtmc.transition_matrix,
            np.array([False, False, True]),
            np.ones(3, dtype=bool),
        )
        assert list(certain) == [False, False, True]
        assert list(maybe) == [False, True, False]
        probabilities = dtmc.reachability_probabilities([2])
        assert probabilities == pytest.approx([0.0, 0.5, 1.0])

    def test_substochastic_rows_are_never_certain(self):
        # State 0 jumps to the target with probability 0.5 and *leaks* the
        # rest: it must stay a maybe state, not be misclassified as certain.
        matrix = np.array([[0.0, 0.5], [0.0, 1.0]])
        dtmc = DTMC(matrix)
        certain, maybe = qualitative_reachability(
            dtmc.transition_matrix,
            np.array([False, True]),
            np.ones(2, dtype=bool),
        )
        assert list(certain) == [False, True]
        assert list(maybe) == [True, False]
        probabilities = dtmc.reachability_probabilities([1])
        assert probabilities == pytest.approx([0.5, 1.0])

    def test_unsafe_states_block_reachability(self):
        chain = random_chain(6, seed=4)
        safe = np.ones(6, dtype=bool)
        safe[2] = False
        target = np.zeros(6, dtype=bool)
        target[5] = True
        with_engine = unbounded_reachability(chain, target, safe, engine=SolverEngine())
        without = unbounded_reachability(chain, target, safe)
        assert with_engine == pytest.approx(without, abs=1e-12)
        assert with_engine[2] == 0.0  # unsafe non-target state

    def test_engine_caches_embedded_matrix_and_factorization(self):
        chain = random_chain(10, seed=5, absorbing=2)
        cache = ArtifactCache()
        engine = SolverEngine(artifacts=cache)
        target = np.zeros(10, dtype=bool)
        target[9] = True
        first = unbounded_reachability(chain, target, engine=engine)
        before = cache.stats()
        second = unbounded_reachability(chain, target, engine=engine)
        deltas = cache.stats().misses_since(before)
        assert first == pytest.approx(second, abs=0.0)
        assert deltas.get("embedded", 0) == 0
        assert deltas.get("factorization", 0) == 0


# ---------------------------------------------------------------------------
# batched long-run solves vs per-call references
# ---------------------------------------------------------------------------
class TestReachabilityRewards:
    def test_stacked_columns_match_reference_and_share_one_factorization(self):
        chain = random_chain(12, seed=6)
        target = np.zeros(12, dtype=bool)
        target[3] = True
        rng = np.random.default_rng(8)
        columns = rng.random((12, 5))
        engine = SolverEngine()
        values = reachability_reward_values(chain, target, columns, engine=engine)
        assert engine.stats.factorizations <= 2  # reach system + reward system
        for k in range(5):
            reference = reachability_reward_reference(chain, columns[:, k], target)
            batched = float(chain.initial_distribution @ values[:, k])
            assert batched == pytest.approx(reference, rel=1e-12, abs=1e-12)

    def test_unreachable_states_have_infinite_reward(self):
        # Two absorbing states; from state 0 the chain may get stuck in the
        # non-target absorber, so the expected reward to the target is inf.
        rates = np.array(
            [
                [0.0, 1.0, 3.0],
                [0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0],
            ]
        )
        chain = CTMC(rates, {0: 1.0})
        target = np.array([False, True, False])
        values = reachability_reward_values(
            chain, target, np.ones((3, 1)), engine=SolverEngine()
        )
        assert values[0, 0] == np.inf
        assert values[1, 0] == 0.0
        assert values[2, 0] == np.inf
        assert reachability_reward_reference(chain, np.ones(3), target) == np.inf

    def test_expected_values_under_handles_infinities(self):
        values = np.array([[1.0], [np.inf], [2.0]])
        block = np.array([[0.5, 0.0, 0.5], [0.5, 0.5, 0.0]])
        expected = expected_values_under(block, values)
        assert expected[0, 0] == pytest.approx(1.5)
        assert expected[1, 0] == np.inf


class TestSteadyStateBlocks:
    def test_block_matches_per_row_reference(self):
        chain = random_chain(9, seed=9, absorbing=2)
        rng = np.random.default_rng(10)
        block = rng.random((4, 9))
        block /= block.sum(axis=1, keepdims=True)
        batched = steady_state_distribution_block(chain, block, engine=SolverEngine())
        for row in range(4):
            reference = steady_state_distribution(chain, block[row])
            assert batched[row] == pytest.approx(reference, abs=1e-12)

    def test_values_per_state_match_point_mass_loop(self):
        chain = random_chain(8, seed=11, absorbing=2)
        observable = np.linspace(0.0, 1.0, 8)
        values = steady_state_values_per_state(chain, observable, engine=SolverEngine())
        for state in range(8):
            point = np.zeros(8)
            point[state] = 1.0
            reference = float(steady_state_distribution(chain, point) @ observable)
            assert values[state] == pytest.approx(reference, abs=1e-10)

    def test_warm_engine_reuses_bscc_and_stationary(self):
        chain = random_chain(10, seed=12, absorbing=3)
        cache = ArtifactCache()
        first = steady_state_distribution(chain, engine=SolverEngine(artifacts=cache))
        before = cache.stats()
        second = steady_state_distribution(chain, engine=SolverEngine(artifacts=cache))
        deltas = cache.stats().misses_since(before)
        assert first == pytest.approx(second, abs=0.0)
        assert deltas.get("bscc", 0) == 0
        assert deltas.get("stationary", 0) == 0
        assert deltas.get("factorization", 0) == 0
        assert deltas.get("absorption", 0) == 0
        assert deltas.get("embedded", 0) == 0
