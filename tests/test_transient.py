"""Tests for transient analysis (uniformization) against analytic formulas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import CTMC, time_bounded_reachability, transient_distribution
from repro.ctmc.ctmc import CTMCError
from repro.ctmc.transient import (
    expected_time_in_states,
    time_bounded_reachability_per_state,
    transient_distributions,
)


def two_state(lam: float, mu: float) -> CTMC:
    return CTMC(
        np.array([[0.0, lam], [mu, 0.0]]),
        {0: 1.0},
        labels={"up": [0], "down": [1]},
    )


def analytic_down_probability(lam: float, mu: float, t: float) -> float:
    """P(down at t | up at 0) for the 2-state birth-death chain."""
    total = lam + mu
    return lam / total * (1.0 - np.exp(-total * t))


class TestTransientDistribution:
    @pytest.mark.parametrize("lam, mu, t", [(0.01, 0.5, 1.0), (0.1, 1.0, 3.0), (2.0, 5.0, 0.2)])
    def test_matches_analytic_two_state(self, lam, mu, t):
        chain = two_state(lam, mu)
        distribution = transient_distribution(chain, t)
        assert distribution[1] == pytest.approx(analytic_down_probability(lam, mu, t), abs=1e-9)
        assert distribution.sum() == pytest.approx(1.0, abs=1e-9)

    def test_time_zero_returns_initial(self, two_state_chain):
        assert transient_distribution(two_state_chain, 0.0) == pytest.approx([1.0, 0.0])

    def test_negative_time_rejected(self, two_state_chain):
        with pytest.raises(CTMCError):
            transient_distribution(two_state_chain, -1.0)

    def test_multiple_time_points(self, two_state_chain):
        times = [0.0, 1.0, 10.0, 100.0]
        distributions = transient_distributions(two_state_chain, times)
        assert distributions.shape == (4, 2)
        for row in distributions:
            assert row.sum() == pytest.approx(1.0, abs=1e-9)
        # The down probability grows towards its steady-state value.
        assert np.all(np.diff(distributions[:, 1]) >= -1e-12)

    def test_custom_initial_distribution(self, two_state_chain):
        distribution = transient_distribution(
            two_state_chain, 1.0, initial_distribution=np.array([0.0, 1.0])
        )
        assert distribution[0] > 0.3  # repair rate 0.5/h acts within the hour

    def test_converges_to_steady_state(self):
        chain = two_state(0.02, 0.4)
        late = transient_distribution(chain, 2000.0)
        assert late[1] == pytest.approx(0.02 / 0.42, abs=1e-8)

    def test_chain_without_transitions(self):
        chain = CTMC(np.zeros((3, 3)), {1: 1.0})
        assert transient_distribution(chain, 5.0) == pytest.approx([0.0, 1.0, 0.0])


class TestTimeBoundedReachability:
    def test_exponential_failure(self):
        lam = 1.0 / 500.0
        chain = two_state(lam, 1.0)
        for t in (1.0, 10.0, 100.0):
            assert time_bounded_reachability(chain, "down", t) == pytest.approx(
                1.0 - np.exp(-lam * t), abs=1e-9
            )

    def test_vector_of_time_bounds(self, two_state_chain):
        values = time_bounded_reachability(two_state_chain, "down", [0.0, 1.0, 5.0])
        assert values.shape == (3,)
        assert values[0] == 0.0
        assert np.all(np.diff(values) >= 0.0)

    def test_safe_set_restricts_paths(self, absorbing_chain):
        # Reaching "failed" while avoiding state 1 is impossible.
        blocked = time_bounded_reachability(
            absorbing_chain, "failed", 100.0, safe=[0]
        )
        assert blocked == pytest.approx(0.0, abs=1e-12)

    def test_per_state_variant_agrees_with_forward(self, absorbing_chain):
        t = 25.0
        per_state = time_bounded_reachability_per_state(absorbing_chain, "failed", t)
        forward = time_bounded_reachability(absorbing_chain, "failed", t)
        assert per_state[0] == pytest.approx(forward, abs=1e-9)
        assert per_state[2] == pytest.approx(1.0)

    def test_target_reached_at_time_zero(self, two_state_chain):
        assert time_bounded_reachability(two_state_chain, "up", 0.0) == pytest.approx(1.0)

    def test_expected_time_in_states(self):
        lam, mu = 0.05, 0.5
        chain = two_state(lam, mu)
        horizon = 200.0
        expected_up = expected_time_in_states(chain, "up", horizon)
        # Long-run fraction of time up is mu/(lam+mu); the transient phase
        # only makes the expected up-time larger.
        assert expected_up >= horizon * mu / (lam + mu) - 1e-6
        assert expected_up <= horizon


@given(
    lam=st.floats(min_value=1e-4, max_value=2.0),
    mu=st.floats(min_value=1e-2, max_value=5.0),
    t=st.floats(min_value=0.0, max_value=500.0),
)
@settings(max_examples=60, deadline=None)
def test_two_state_transient_is_exact(lam, mu, t):
    """Property: uniformization reproduces the closed-form 2-state solution."""
    chain = two_state(lam, mu)
    distribution = transient_distribution(chain, t)
    assert distribution[1] == pytest.approx(analytic_down_probability(lam, mu, t), abs=1e-7)
    assert abs(distribution.sum() - 1.0) < 1e-8
