"""Tests of the pluggable numeric-engine layer (:mod:`repro.ctmc.engines`).

Covers the backend implementations (sparse CSR, dense BLAS, optional
numba), the auto-selection heuristic and its crossover, the float32
accuracy contract, the per-(fingerprint, dtype) persistence in the
artifact cache, dense-LU long-run solves, and the BLAS/thread-pool
oversubscription guard — including a regression test that a two-shard
dense run keeps every worker's thread budget bounded.

The numba tests ``importorskip`` so the default CI leg (no numba in the
image) stays green; the dedicated numba CI leg runs them for real.
"""

from __future__ import annotations

import asyncio
import os
import threading

import numpy as np
import pytest
from scipy import sparse

from repro.analysis import AnalysisSession, MeasureKind, MeasureRequest
from repro.ctmc import CTMC
from repro.ctmc.ctmc import CTMCError
from repro.ctmc import engines
from repro.ctmc.engines import (
    BLAS_ENV_VARS,
    DENSE_RELAXED_LIMIT,
    DENSE_SOLVE_LIMIT,
    DENSE_STATE_LIMIT,
    DenseEngine,
    DenseFactorization,
    EngineSelector,
    SparseEngine,
    SparseFactorization,
    blas_thread_budget,
    default_worker_count,
    have_numba,
    normalise_dtype,
    normalise_engine_mode,
    pin_blas_threads,
    restore_blas_threads,
)
from repro.ctmc.uniformization import UniformizationStats, evaluate_grid_block
from repro.service.cache import DENSE_WEIGHT_UNIT_BYTES, ArtifactCache


def make_chain(seed: int = 0, num_states: int = 40, density: float = 0.25) -> CTMC:
    rng = np.random.default_rng(seed)
    rates = rng.uniform(0.1, 2.0, (num_states, num_states))
    rates *= rng.random((num_states, num_states)) < density
    np.fill_diagonal(rates, 0.0)
    initial = rng.random(num_states) + 1e-3
    return CTMC(rates, initial / initial.sum())


# ---------------------------------------------------------------------------
# mode / dtype normalisation
# ---------------------------------------------------------------------------
class TestNormalisation:
    def test_known_modes_pass_through(self):
        for mode in ("auto", "sparse", "dense"):
            assert normalise_engine_mode(mode) == mode

    def test_unknown_mode_raises(self):
        with pytest.raises(CTMCError):
            normalise_engine_mode("gpu")

    @pytest.mark.skipif(have_numba(), reason="numba is installed here")
    def test_numba_mode_raises_without_numba(self):
        with pytest.raises(CTMCError):
            normalise_engine_mode("numba")

    def test_dtypes(self):
        assert normalise_dtype(None) == np.float64
        assert normalise_dtype("float32") == np.float32
        assert normalise_dtype(np.float32) == np.float32
        with pytest.raises(CTMCError):
            normalise_dtype("float16")

    def test_process_defaults_roundtrip(self):
        previous_mode = engines.default_engine_mode()
        previous_dtype = engines.default_dtype()
        try:
            engines.set_default_engine_mode("sparse")
            engines.set_default_dtype("float32")
            assert engines.default_engine_mode() == "sparse"
            assert engines.default_dtype() == np.float32
        finally:
            engines.set_default_engine_mode(previous_mode)
            engines.set_default_dtype(previous_dtype)


# ---------------------------------------------------------------------------
# backend equivalence on real sweeps
# ---------------------------------------------------------------------------
class TestBackendEquivalence:
    def _sweep(self, chain, engine=None, dtype=None, stats=None):
        times = np.linspace(0.1, 3.0, 6)
        rewards = np.zeros((chain.num_states, 1))
        rewards[-1, 0] = 1.0
        block = chain.initial_distribution[None, :]
        result = evaluate_grid_block(
            chain,
            times,
            block,
            rewards_matrix=rewards,
            instantaneous=True,
            engine=engine,
            dtype=dtype,
            stats=stats,
        )
        return result.instantaneous

    def test_sparse_lane_is_bit_exact_with_legacy(self):
        chain = make_chain(3)
        legacy = self._sweep(chain)
        via_engine = self._sweep(chain, engine="sparse")
        assert np.array_equal(legacy, via_engine)

    def test_dense_lane_matches_legacy(self):
        chain = make_chain(4)
        legacy = self._sweep(chain)
        dense = self._sweep(chain, engine="dense")
        assert np.max(np.abs(legacy - dense)) <= 1e-12

    def test_float32_lane_meets_contract(self):
        chain = make_chain(5)
        legacy = self._sweep(chain)
        for mode in ("sparse", "dense"):
            lane = self._sweep(chain, engine=mode, dtype="float32")
            assert np.max(np.abs(legacy - lane)) <= 1e-6

    def test_op_accounting_is_backend_invariant(self):
        chain = make_chain(6)
        flops, equivalents = [], []
        for mode in (None, "sparse", "dense"):
            stats = UniformizationStats()
            self._sweep(chain, engine=mode, stats=stats)
            flops.append(stats.sparse_flops)
            if mode is not None:
                equivalents.append(stats.equivalent_nnz)
                assert stats.sweep_seconds > 0.0
        # Dense GEMMs report the *equivalent* sparse op count, so existing
        # flop-based perf gates keep measuring algorithmic work.
        assert len(set(flops)) == 1
        assert equivalents[0] == equivalents[1] == flops[0]


# ---------------------------------------------------------------------------
# the auto-selection heuristic
# ---------------------------------------------------------------------------
class TestEngineSelector:
    def test_small_chains_go_dense(self):
        selector = EngineSelector()
        assert selector.choose(DENSE_STATE_LIMIT, 10) == "dense"

    def test_large_sparse_chains_stay_sparse(self):
        selector = EngineSelector()
        big = 4 * DENSE_RELAXED_LIMIT
        assert selector.choose(big, big * 5) == "sparse"

    def test_crossover_in_relaxed_band_depends_on_density(self):
        """Between the limits the operator fill decides the backend."""
        selector = EngineSelector()
        size = (DENSE_STATE_LIMIT + DENSE_RELAXED_LIMIT) // 2
        dense_fill = int(0.2 * size * size)
        sparse_fill = int(0.05 * size * size)
        assert selector.choose(size, dense_fill) == "dense"
        assert selector.choose(size, sparse_fill) == "sparse"

    def test_memory_guard_forces_sparse(self):
        # Raise the size limits so only the byte cap can veto.
        selector = EngineSelector(dense_state_limit=10_000)
        huge = 4000  # 4000^2 float64 = 128 MiB > the 64 MiB guard
        assert selector.choose(huge, huge * huge) == "sparse"
        # float32 halves the footprint and fits again.
        assert selector.choose(2900, 2900 * 2900, dtype="float32") == "dense"

    def test_auto_never_picks_numba(self):
        selector = EngineSelector()
        for size in (10, 500, 5000):
            assert selector.choose(size, size * size // 4) in ("sparse", "dense")

    def test_forced_modes_bypass_the_heuristic(self):
        selector = EngineSelector()
        chain = make_chain(7, num_states=500, density=0.02)
        assert selector.resolve(chain, "dense", "float64") == "dense"
        assert selector.resolve(chain, "sparse", "float64") == "sparse"

    def test_auto_decision_persists_in_artifact_cache(self):
        artifacts = ArtifactCache()
        selector = EngineSelector(artifacts)
        chain = make_chain(8, num_states=30)
        first = selector.resolve(chain, "auto", "float64")
        second = selector.resolve(chain, "auto", "float64")
        assert first == second == "dense"
        counters = artifacts.stats().kinds["engine"]
        assert counters.misses == 1 and counters.hits == 1

    def test_engine_for_builds_matching_backends(self):
        chain = make_chain(9, num_states=20)
        operator = sparse.random(20, 20, density=0.3, format="csr", random_state=1)
        selector = EngineSelector()
        assert isinstance(
            selector.engine_for(chain, operator, 1.0, mode="dense"), DenseEngine
        )
        assert isinstance(
            selector.engine_for(chain, operator, 1.0, mode="sparse"), SparseEngine
        )


# ---------------------------------------------------------------------------
# factorizations and long-run solves
# ---------------------------------------------------------------------------
class TestFactorizations:
    def _system(self, size=30, seed=2):
        rng = np.random.default_rng(seed)
        matrix = sparse.eye(size, format="csc") * 2.0 + sparse.random(
            size, size, density=0.2, format="csc", random_state=seed
        )
        rhs = rng.random(size)
        return matrix.tocsc(), rhs

    def test_dense_and_sparse_factorizations_agree(self):
        matrix, rhs = self._system()
        dense = DenseFactorization(matrix).solve(rhs)
        via_sparse = SparseFactorization(matrix).solve(rhs)
        assert np.max(np.abs(dense - via_sparse)) <= 1e-10
        assert DenseFactorization(matrix).nnz == matrix.nnz

    @pytest.mark.parametrize("mode", ["auto", "sparse", "dense"])
    def test_longrun_measures_agree_across_solver_modes(self, mode):
        chain = make_chain(10, num_states=35)
        session = AnalysisSession(engine=mode)
        target = np.zeros(chain.num_states, dtype=bool)
        target[-3:] = True
        rewards = np.linspace(0.0, 2.0, chain.num_states)
        session.request(chain, (), kind=MeasureKind.STEADY_STATE, target=target)
        session.request(
            chain,
            (),
            kind=MeasureKind.REACHABILITY_REWARD,
            target=target,
            rewards=rewards,
        )
        values = [result.squeezed[0] for result in session.execute()]
        reference = AnalysisSession()
        reference.request(chain, (), kind=MeasureKind.STEADY_STATE, target=target)
        reference.request(
            chain,
            (),
            kind=MeasureKind.REACHABILITY_REWARD,
            target=target,
            rewards=rewards,
        )
        expected = [result.squeezed[0] for result in reference.execute()]
        assert np.allclose(values, expected, rtol=0.0, atol=1e-10)
        # A 35-state system is below DENSE_SOLVE_LIMIT, so auto and dense
        # both take the dense LU path and say so in the stats.
        assert chain.num_states <= DENSE_SOLVE_LIMIT
        if mode in ("auto", "dense"):
            assert session.stats.dense_factorizations >= 1
        else:
            assert session.stats.dense_factorizations == 0
        assert session.stats.factor_seconds >= 0.0


# ---------------------------------------------------------------------------
# float32 guard rails
# ---------------------------------------------------------------------------
class TestFloat32Lane:
    def test_explicit_float32_interval_request_is_rejected(self):
        chain = make_chain(11)
        session = AnalysisSession()
        session.request(
            chain,
            np.linspace(1.0, 2.0, 3),
            kind=MeasureKind.INTERVAL_REACHABILITY,
            target=[chain.num_states - 1],
            lower=1.0,
            dtype="float32",
        )
        with pytest.raises(CTMCError, match="float32"):
            session.execute()

    def test_inherited_float32_interval_falls_back_to_float64(self):
        chain = make_chain(12)
        f32 = AnalysisSession(dtype="float32")
        f32.request(
            chain,
            np.linspace(1.0, 2.0, 3),
            kind=MeasureKind.INTERVAL_REACHABILITY,
            target=[chain.num_states - 1],
            lower=1.0,
        )
        reference = AnalysisSession()
        reference.request(
            chain,
            np.linspace(1.0, 2.0, 3),
            kind=MeasureKind.INTERVAL_REACHABILITY,
            target=[chain.num_states - 1],
            lower=1.0,
        )
        values = f32.execute()[0].squeezed
        expected = reference.execute()[0].squeezed
        assert np.max(np.abs(values - expected)) <= 1e-6


# ---------------------------------------------------------------------------
# artifact-cache integration (dense operators are byte-weighted)
# ---------------------------------------------------------------------------
class TestDenseOperatorCaching:
    def test_dense_operator_weight_is_byte_aware(self):
        cache = ArtifactCache(max_entries=64)
        chain = make_chain(13, num_states=200, density=0.1)
        dense = np.zeros((200, 200))
        cache.dense_operator(chain, 1.0, "float64", lambda: dense)
        expected_weight = -(-dense.nbytes // DENSE_WEIGHT_UNIT_BYTES)
        assert expected_weight > 1
        assert cache.total_weight == expected_weight

    def test_heavy_dense_operators_evict_earlier_entries(self):
        cache = ArtifactCache(max_entries=3)
        chains = [make_chain(seed, num_states=120) for seed in range(3)]
        for index, chain in enumerate(chains):
            cache.get_or_create("window", (index,), lambda: index)
            cache.dense_operator(chain, 1.0, "float64", lambda: np.zeros((120, 120)))
        # Each dense operator weighs ~113KB/256KB -> 1, but the budget of 3
        # cannot hold all six entries: older ones must have been evicted
        # while the newest survives.
        assert cache.total_weight <= 3
        counters = cache.stats().kinds["dense_operator"]
        assert counters.misses == 3

    def test_warm_sweep_reuses_the_cached_dense_operator(self):
        artifacts = ArtifactCache()
        chain = make_chain(14, num_states=30)
        times = np.linspace(0.1, 2.0, 4)
        for _ in range(2):
            session = AnalysisSession(artifacts=artifacts, engine="dense")
            session.request(
                chain, times, kind=MeasureKind.REACHABILITY, target=[0]
            )
            session.execute()
        counters = artifacts.stats().kinds["dense_operator"]
        assert counters.misses == 1 and counters.hits >= 1


# ---------------------------------------------------------------------------
# optional numba backend (runs only on the numba CI leg)
# ---------------------------------------------------------------------------
class TestNumbaEngine:
    def test_numba_backend_matches_sparse(self):
        pytest.importorskip("numba")
        chain = make_chain(15)
        times = np.linspace(0.1, 3.0, 5)
        observables = np.zeros((1, chain.num_states))
        observables[0, -1] = 1.0
        block = chain.initial_distribution[None, :]
        reference = evaluate_grid_block(chain, block, observables, times)
        values = evaluate_grid_block(
            chain, block, observables, times, engine="numba"
        )
        assert np.max(np.abs(reference - values)) <= 1e-12


# ---------------------------------------------------------------------------
# BLAS / worker-pool oversubscription guard
# ---------------------------------------------------------------------------
class TestOversubscriptionGuard:
    def test_blas_thread_budget_partitions_the_machine(self):
        cores = os.cpu_count() or 1
        assert blas_thread_budget(1) == cores
        assert blas_thread_budget(cores * 2) == 1
        assert blas_thread_budget(2) == max(1, cores // 2)

    def test_pin_and_restore_roundtrip(self):
        sentinel = os.environ.get(BLAS_ENV_VARS[0])
        previous = pin_blas_threads(3)
        try:
            for variable in BLAS_ENV_VARS:
                assert os.environ[variable] == "3"
        finally:
            restore_blas_threads(previous)
        assert os.environ.get(BLAS_ENV_VARS[0]) == sentinel

    def test_default_worker_count_is_bounded(self):
        assert default_worker_count() <= 8
        assert default_worker_count(12) == 12
        assert default_worker_count(0) == 1

    def test_two_shard_dense_run_keeps_thread_budget_bounded(self):
        """Regression: N dense shards must not spawn N full BLAS pools."""
        from repro.service.shard import ShardedScenarioService

        chains = [make_chain(seed, num_states=30) for seed in (21, 22)]
        times = np.linspace(0.1, 2.0, 4)
        budget = str(blas_thread_budget(2))

        async def run():
            async with ShardedScenarioService(
                num_shards=2, coalesce_window=0.0, engine="dense"
            ) as service:
                requests = [
                    MeasureRequest(
                        chain=chain,
                        times=times,
                        kind=MeasureKind.REACHABILITY,
                        target=[chain.num_states - 1],
                    )
                    for chain in chains
                ]
                await service.submit_many(requests)
                return await service.shard_snapshots()

        snapshots = asyncio.run(run())
        assert len(snapshots) == 2
        for snapshot in snapshots:
            assert snapshot.alive and snapshot.threads is not None
            threads = snapshot.threads
            # The worker pool obeys the bounded default ...
            assert threads["pool_max_workers"] <= 8
            # ... the BLAS pin the worker inherited divides the machine ...
            for variable in BLAS_ENV_VARS:
                assert threads["blas_env"][variable] == budget
            # ... and the live thread count stays small (pool + queue
            # plumbing), nowhere near cores x shards x pool explosion.
            assert threads["active_threads"] <= threads["pool_max_workers"] + 12

    def test_parent_environment_is_restored_after_spawn(self):
        from repro.service.shard import ShardedScenarioService

        sentinel = os.environ.get(BLAS_ENV_VARS[0])

        async def run():
            async with ShardedScenarioService(num_shards=2, engine="dense"):
                pass

        asyncio.run(run())
        assert os.environ.get(BLAS_ENV_VARS[0]) == sentinel
