"""Tests for stochastic reactive modules: data model and exploration."""

import numpy as np
import pytest

from repro.ctmc import steady_state_distribution, time_bounded_reachability
from repro.expr import Const, Var
from repro.modules import (
    Command,
    Module,
    ModulesFile,
    RewardStructureDefinition,
    Update,
    VariableDeclaration,
    build_ctmc,
    build_reward_model,
)
from repro.modules.model import ModulesError


def repairable_component(name: str, fail_rate: float, repair_rate: float) -> Module:
    module = Module(name)
    module.add_variable(VariableDeclaration.boolean(f"{name}_up", True))
    module.add_command(
        Command.simple("", Var(f"{name}_up"), fail_rate, {f"{name}_up": Const(False)})
    )
    module.add_command(
        Command.simple("", ~Var(f"{name}_up"), repair_rate, {f"{name}_up": Const(True)})
    )
    return module


class TestModel:
    def test_variable_declarations(self):
        boolean = VariableDeclaration.boolean("b", True)
        assert boolean.initial_value is True
        integer = VariableDeclaration.integer("i", 0, 5, 2)
        assert integer.initial_value == 2
        with pytest.raises(ModulesError):
            VariableDeclaration.integer("bad", 3, 1)
        with pytest.raises(ModulesError):
            integer.validate_value(9)

    def test_update_apply(self):
        update = Update({"x": Var("x") + Const(1), "y": Const(0)})
        assert update.apply({"x": 3, "y": 7, "z": 1}) == {"x": 4, "y": 0, "z": 1}
        assert update.variables_written() == {"x", "y"}
        assert "x" in update.variables_read()

    def test_command_requires_alternatives(self):
        with pytest.raises(ModulesError):
            Command("", Const(True), [])

    def test_duplicate_variable_rejected(self):
        system = ModulesFile()
        system.add_module(repairable_component("a", 0.1, 1.0))
        duplicate = Module("dup").add_variable(VariableDeclaration.boolean("a_up"))
        system.add_module(duplicate)
        with pytest.raises(ModulesError):
            system.validate()

    def test_writing_foreign_variable_rejected(self):
        module = Module("m").add_variable(VariableDeclaration.boolean("x"))
        module.add_command(Command.simple("", Const(True), 1.0, {"other": Const(True)}))
        with pytest.raises(ModulesError):
            module.validate()

    def test_unknown_variable_in_guard_rejected(self):
        system = ModulesFile()
        module = Module("m").add_variable(VariableDeclaration.boolean("x"))
        module.add_command(Command.simple("", Var("ghost"), 1.0, {"x": Const(True)}))
        system.add_module(module)
        with pytest.raises(ModulesError):
            system.validate()

    def test_label_with_unknown_variable_rejected(self):
        system = ModulesFile()
        system.add_module(repairable_component("a", 0.1, 1.0))
        system.add_label("broken", Var("ghost"))
        with pytest.raises(ModulesError):
            system.validate()


class TestExploration:
    def test_independent_components_product_space(self):
        system = ModulesFile()
        system.add_module(repairable_component("a", 0.1, 1.0))
        system.add_module(repairable_component("b", 0.2, 2.0))
        system.add_label("both_up", Var("a_up") & Var("b_up"))
        result = build_ctmc(system)
        assert result.num_states == 4
        assert result.num_transitions == 8
        distribution = steady_state_distribution(result.chain)
        expected = (1.0 / 1.1) * (2.0 / 2.2)
        assert distribution[result.chain.label_mask("both_up")].sum() == pytest.approx(expected)

    def test_synchronised_rates_multiply(self):
        # Component holds the failure rate; a monitor synchronises with rate 1
        # and counts failures: the joint rate must equal the component's.
        system = ModulesFile()
        component = Module("component")
        component.add_variable(VariableDeclaration.boolean("up", True))
        component.add_command(Command.simple("fail", Var("up"), 0.25, {"up": Const(False)}))
        monitor = Module("monitor")
        monitor.add_variable(VariableDeclaration.integer("count", 0, 1, 0))
        monitor.add_command(Command.simple("fail", Const(True), 1.0, {"count": Const(1)}))
        system.add_module(component)
        system.add_module(monitor)
        system.add_label("recorded", Var("count").eq(Const(1)))
        result = build_ctmc(system)
        assert result.num_states == 2
        assert time_bounded_reachability(result.chain, "recorded", 4.0) == pytest.approx(
            1.0 - np.exp(-0.25 * 4.0), abs=1e-9
        )

    def test_blocked_synchronisation_produces_no_transition(self):
        system = ModulesFile()
        left = Module("left")
        left.add_variable(VariableDeclaration.boolean("go", True))
        left.add_command(Command.simple("sync", Var("go"), 1.0, {"go": Const(False)}))
        right = Module("right")
        right.add_variable(VariableDeclaration.boolean("ready", False))
        right.add_command(Command.simple("sync", Var("ready"), 1.0, {"ready": Const(False)}))
        system.add_module(left)
        system.add_module(right)
        result = build_ctmc(system)
        assert result.num_states == 1  # the action is blocked forever
        assert result.num_transitions == 0

    def test_state_space_limit(self):
        system = ModulesFile()
        system.add_module(repairable_component("a", 0.1, 1.0))
        system.add_module(repairable_component("b", 0.1, 1.0))
        with pytest.raises(ModulesError):
            build_ctmc(system, max_states=2)

    def test_variable_out_of_range_detected(self):
        system = ModulesFile()
        module = Module("m")
        module.add_variable(VariableDeclaration.integer("x", 0, 1, 0))
        module.add_command(Command.simple("", Const(True), 1.0, {"x": Var("x") + Const(1)}))
        system.add_module(module)
        with pytest.raises(ModulesError):
            build_ctmc(system)

    def test_rewards_and_initial_override(self):
        system = ModulesFile()
        system.add_module(repairable_component("a", 0.1, 1.0))
        rewards = RewardStructureDefinition("cost")
        rewards.add_state_reward(~Var("a_up"), 3.0)
        system.add_rewards(rewards)
        model = build_reward_model(system)
        assert model.reward_names == ("cost",)
        # Start in the failed state via an initial override.
        failed_start = system.with_initial_state({"a_up": False})
        result = build_ctmc(failed_start)
        description = result.chain.describe_state(0)
        assert description["a_up"] is False

    def test_missing_rewards_raise(self):
        system = ModulesFile()
        system.add_module(repairable_component("a", 0.1, 1.0))
        with pytest.raises(ModulesError):
            build_reward_model(system)

    def test_exploration_result_lookup(self):
        system = ModulesFile()
        system.add_module(repairable_component("a", 0.1, 1.0))
        result = build_ctmc(system)
        index = result.state_index({"a_up": False})
        assert result.valuation(index) == {"a_up": False}
