"""Tests for the Fox–Glynn Poisson weight computation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.ctmc.foxglynn import FoxGlynnWeights, fox_glynn, poisson_cdf_complement


class TestFoxGlynn:
    def test_zero_rate(self):
        weights = fox_glynn(0.0)
        assert weights.left == 0 and weights.right == 0
        assert weights.weights[0] == 1.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            fox_glynn(-1.0)

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ValueError):
            fox_glynn(1.0, epsilon=0.0)
        with pytest.raises(ValueError):
            fox_glynn(1.0, epsilon=2.0)

    def test_unattainable_epsilon_raises_instead_of_capping(self):
        # With epsilon below the double-precision resolution the cumulative
        # mass can never reach 1 - epsilon/2; the truncation walk must raise
        # rather than silently cap the window (which would bias results).
        with pytest.raises(ValueError, match="truncation"):
            fox_glynn(10.0, epsilon=1e-300)

    @pytest.mark.parametrize("rate", [0.1, 1.0, 5.0, 30.0, 123.4, 1500.0, 20_000.0])
    def test_weights_match_scipy_poisson(self, rate):
        weights = fox_glynn(rate, epsilon=1e-12)
        ks = np.arange(weights.left, weights.right + 1)
        exact = stats.poisson.pmf(ks, rate)
        assert np.allclose(weights.weights, exact, atol=1e-9, rtol=1e-6)

    @pytest.mark.parametrize("rate", [0.5, 10.0, 200.0, 5000.0])
    def test_window_carries_almost_all_mass(self, rate):
        epsilon = 1e-10
        weights = fox_glynn(rate, epsilon)
        assert weights.weights.sum() == pytest.approx(1.0, abs=1e-6)
        # The truncated tails really are below epsilon (checked via scipy).
        left_tail = stats.poisson.cdf(weights.left - 1, rate) if weights.left > 0 else 0.0
        right_tail = stats.poisson.sf(weights.right, rate)
        assert left_tail + right_tail <= 1e-6

    def test_mode_is_inside_window(self):
        for rate in (0.3, 7.7, 48.0, 912.0):
            weights = fox_glynn(rate)
            assert weights.left <= math.floor(rate) <= weights.right

    def test_weight_accessor_outside_window_is_zero(self):
        weights = fox_glynn(10.0)
        assert weights.weight(weights.left - 1) == 0.0
        assert weights.weight(weights.right + 1) == 0.0
        assert weights.weight(weights.left) > 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            FoxGlynnWeights(left=5, right=4, weights=np.array([]), total=0.0)

    def test_poisson_cdf_complement_matches_scipy(self):
        for rate, k in ((1.0, 0), (5.0, 5), (20.0, 30)):
            assert poisson_cdf_complement(rate, k) == pytest.approx(
                stats.poisson.sf(k, rate), abs=1e-12
            )


@given(rate=st.floats(min_value=0.01, max_value=3000.0))
@settings(max_examples=60, deadline=None)
def test_weights_are_a_probability_distribution(rate):
    weights = fox_glynn(rate)
    assert np.all(weights.weights >= 0.0)
    assert weights.weights.sum() <= 1.0 + 1e-9
    assert weights.weights.sum() >= 1.0 - 1e-6
