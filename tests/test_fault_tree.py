"""Tests for fault trees, service trees and their quantitative gates."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arcade import And, BasicEvent, FaultTree, KOfN, Or
from repro.arcade.components import ArcadeModelError
from repro.arcade.fault_tree import (
    AverageService,
    CappedFractionService,
    ComponentService,
    MinService,
)


@pytest.fixture
def line_like_tree() -> FaultTree:
    """A Line-1-like fault tree: 3 softeners, 2 filters, 1 reservoir, 2+1 pumps."""
    return FaultTree(
        Or(
            KOfN(1, [BasicEvent("st1"), BasicEvent("st2"), BasicEvent("st3")]),
            KOfN(1, [BasicEvent("sf1"), BasicEvent("sf2")]),
            BasicEvent("res"),
            KOfN(2, [BasicEvent("p1"), BasicEvent("p2"), BasicEvent("p3")]),
        )
    )


ALL = {"st1", "st2", "st3", "sf1", "sf2", "res", "p1", "p2", "p3"}


class TestFaultTreeEvaluation:
    def test_empty_failure_set_is_operational(self, line_like_tree):
        assert line_like_tree.is_operational([])

    def test_single_softener_failure_brings_the_line_down(self, line_like_tree):
        assert line_like_tree.is_down(["st2"])

    def test_one_pump_failure_is_tolerated(self, line_like_tree):
        assert line_like_tree.is_operational(["p1"])
        assert line_like_tree.is_down(["p1", "p3"])

    def test_and_gate(self):
        tree = FaultTree(And(BasicEvent("a"), BasicEvent("b")))
        assert tree.is_operational(["a"])
        assert tree.is_down(["a", "b"])

    def test_string_children_are_accepted(self):
        tree = FaultTree(Or("a", "b"))
        assert tree.is_down(["b"])
        assert tree.components() == {"a", "b"}

    def test_k_of_n_bounds(self):
        with pytest.raises(ArcadeModelError):
            KOfN(0, [BasicEvent("a")])
        with pytest.raises(ArcadeModelError):
            KOfN(3, [BasicEvent("a"), BasicEvent("b")])

    def test_components_listing(self, line_like_tree):
        assert line_like_tree.components() == ALL


class TestServiceTree:
    def test_dualisation_gates(self, line_like_tree):
        service = line_like_tree.to_service_tree()
        root = service.root
        assert isinstance(root, MinService)
        kinds = {type(child) for child in root.children}
        assert CappedFractionService in kinds and ComponentService in kinds

    def test_full_service_when_everything_up(self, line_like_tree):
        service = line_like_tree.to_service_tree()
        assert service.service_level(ALL) == 1

    def test_no_service_without_reservoir(self, line_like_tree):
        service = line_like_tree.to_service_tree()
        assert service.service_level(ALL - {"res"}) == 0
        assert not service.delivers_service(ALL - {"res"})

    def test_degraded_service_levels(self, line_like_tree):
        service = line_like_tree.to_service_tree()
        assert service.service_level(ALL - {"st1"}) == Fraction(2, 3)
        assert service.service_level(ALL - {"sf1"}) == Fraction(1, 2)
        assert service.service_level(ALL - {"p1"}) == 1  # the spare pump absorbs it
        assert service.service_level(ALL - {"p1", "p2"}) == Fraction(1, 2)
        assert service.service_level(ALL - {"st1", "sf1"}) == Fraction(1, 2)

    def test_attainable_levels_and_intervals(self, line_like_tree):
        service = line_like_tree.to_service_tree()
        levels = service.attainable_levels()
        assert levels[0] == 0 and levels[-1] == 1
        assert Fraction(1, 3) in levels and Fraction(1, 2) in levels and Fraction(2, 3) in levels
        intervals = service.service_intervals()
        assert intervals[0] == (Fraction(1, 3), Fraction(1, 2))
        assert intervals[-1] == (Fraction(1), Fraction(1))

    def test_and_gate_becomes_average(self):
        tree = FaultTree(And(BasicEvent("a"), BasicEvent("b")))
        service = tree.to_service_tree()
        assert isinstance(service.root, AverageService)
        assert service.service_level({"a"}) == Fraction(1, 2)

    def test_quantitative_or_average_semantics(self):
        tree = FaultTree(KOfN(1, [BasicEvent(name) for name in ("x", "y", "z", "w")]))
        service = tree.to_service_tree()
        assert service.service_level({"x", "y"}) == Fraction(1, 2)

    def test_spare_gate_caps_at_one(self):
        # 4 pumps, 3 required: one failure leaves full service.
        tree = FaultTree(KOfN(2, [BasicEvent(f"p{i}") for i in range(4)]))
        service = tree.to_service_tree()
        assert service.service_level({"p0", "p1", "p2", "p3"}) == 1
        assert service.service_level({"p0", "p1", "p2"}) == 1
        assert service.service_level({"p0", "p1"}) == Fraction(2, 3)
        # Spares do not add service intervals beyond 1/3, 2/3, 1.
        assert set(service.attainable_levels()) == {
            Fraction(0), Fraction(1, 3), Fraction(2, 3), Fraction(1)
        }


# ---------------------------------------------------------------------------
# property-based consistency between the fault tree and its service tree
# ---------------------------------------------------------------------------
@given(failed=st.sets(st.sampled_from(sorted(ALL))))
@settings(max_examples=300, deadline=None)
def test_service_zero_iff_total_failure_tree(failed):
    """The derived service tree is positive iff the dual 'no service' tree is not triggered.

    For this tree shape: service is zero exactly when some phase has lost all
    its members (or the reservoir is down), and full service holds exactly
    when the fault tree is operational.
    """
    tree = FaultTree(
        Or(
            KOfN(1, [BasicEvent("st1"), BasicEvent("st2"), BasicEvent("st3")]),
            KOfN(1, [BasicEvent("sf1"), BasicEvent("sf2")]),
            BasicEvent("res"),
            KOfN(2, [BasicEvent("p1"), BasicEvent("p2"), BasicEvent("p3")]),
        )
    )
    service = tree.to_service_tree()
    up = ALL - failed
    level = service.service_level(up)
    assert 0 <= level <= 1
    # Full service <=> fault tree operational.
    assert (level == 1) == tree.is_operational(failed)
    # Zero service <=> some phase completely lost.
    softeners_gone = {"st1", "st2", "st3"} <= failed
    filters_gone = {"sf1", "sf2"} <= failed
    reservoir_gone = "res" in failed
    pumps_gone = {"p1", "p2", "p3"} <= failed
    assert (level == 0) == (softeners_gone or filters_gone or reservoir_gone or pumps_gone)
