"""Tests for steady-state analysis and BSCC decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import (
    CTMC,
    bottom_strongly_connected_components,
    steady_state_distribution,
    steady_state_probability,
)


class TestBSCC:
    def test_irreducible_chain_is_one_bscc(self, two_state_chain):
        bsccs = bottom_strongly_connected_components(two_state_chain)
        assert len(bsccs) == 1
        assert list(bsccs[0]) == [0, 1]

    def test_absorbing_state_is_its_own_bscc(self, absorbing_chain):
        bsccs = bottom_strongly_connected_components(absorbing_chain)
        assert len(bsccs) == 1
        assert list(bsccs[0]) == [2]

    def test_two_absorbing_states(self):
        rates = np.array(
            [
                [0.0, 1.0, 3.0],
                [0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0],
            ]
        )
        chain = CTMC(rates, {0: 1.0})
        bsccs = bottom_strongly_connected_components(chain)
        assert [list(b) for b in bsccs] == [[1], [2]]


class TestSteadyState:
    def test_two_state_balance(self):
        lam, mu = 0.02, 0.4
        chain = CTMC(np.array([[0.0, lam], [mu, 0.0]]), {0: 1.0}, labels={"up": [0]})
        distribution = steady_state_distribution(chain)
        assert distribution[0] == pytest.approx(mu / (lam + mu), abs=1e-12)
        assert steady_state_probability(chain, "up") == pytest.approx(mu / (lam + mu))

    def test_three_state_cycle(self):
        # A cycle with distinct rates: pi_i proportional to 1/rate_i.
        rates = np.zeros((3, 3))
        rates[0, 1], rates[1, 2], rates[2, 0] = 1.0, 2.0, 4.0
        chain = CTMC(rates, {0: 1.0})
        distribution = steady_state_distribution(chain)
        expected = np.array([1.0, 0.5, 0.25])
        expected /= expected.sum()
        assert distribution == pytest.approx(expected, abs=1e-10)

    def test_absorbing_chain_concentrates_in_absorbing_state(self, absorbing_chain):
        distribution = steady_state_distribution(absorbing_chain)
        assert distribution == pytest.approx([0.0, 0.0, 1.0], abs=1e-10)

    def test_multiple_bsccs_weighted_by_reachability(self):
        # From state 0, jump to absorbing state 1 w.p. 1/4 and state 2 w.p. 3/4.
        rates = np.array(
            [
                [0.0, 1.0, 3.0],
                [0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0],
            ]
        )
        chain = CTMC(rates, {0: 1.0})
        distribution = steady_state_distribution(chain)
        assert distribution == pytest.approx([0.0, 0.25, 0.75], abs=1e-10)

    def test_initial_distribution_matters_with_multiple_bsccs(self):
        rates = np.array(
            [
                [0.0, 1.0, 3.0],
                [0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0],
            ]
        )
        chain = CTMC(rates, {0: 1.0})
        from_state_1 = steady_state_distribution(chain, np.array([0.0, 1.0, 0.0]))
        assert from_state_1 == pytest.approx([0.0, 1.0, 0.0])

    def test_power_method_agrees_with_direct(self, mini_space):
        chain = mini_space.chain
        direct = steady_state_distribution(chain, method="direct")
        power = steady_state_distribution(chain, method="power")
        assert power == pytest.approx(direct, abs=1e-9)

    def test_unknown_method_rejected(self, two_state_chain):
        with pytest.raises(Exception):
            steady_state_distribution(two_state_chain, method="banana")


@given(
    lam=st.floats(min_value=1e-3, max_value=5.0),
    mu=st.floats(min_value=1e-3, max_value=5.0),
)
@settings(max_examples=50, deadline=None)
def test_birth_death_detailed_balance(lam, mu):
    """Property: the 2-state steady state satisfies detailed balance."""
    chain = CTMC(np.array([[0.0, lam], [mu, 0.0]]), {0: 1.0})
    distribution = steady_state_distribution(chain)
    assert distribution[0] * lam == pytest.approx(distribution[1] * mu, rel=1e-9)
    assert distribution.sum() == pytest.approx(1.0)
