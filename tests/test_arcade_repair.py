"""Tests for repair units: strategies, queue mechanics, crews, disasters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arcade import BasicComponent, RepairStrategy, RepairUnit
from repro.arcade.components import ArcadeModelError

COMPONENTS = {
    "fast_repair": BasicComponent("fast_repair", mttf=100.0, mttr=1.0, priority=2),
    "slow_repair": BasicComponent("slow_repair", mttf=50.0, mttr=10.0, priority=1),
    "medium": BasicComponent("medium", mttf=200.0, mttr=5.0, priority=3),
    "twin": BasicComponent("twin", mttf=100.0, mttr=1.0, priority=4),
}


def unit(strategy, crews=1, preemptive=True) -> RepairUnit:
    return RepairUnit(
        "ru", strategy, tuple(COMPONENTS), crews=crews, preemptive=preemptive
    )


class TestStrategyParsing:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("ded", RepairStrategy.DEDICATED),
            ("Dedicated", RepairStrategy.DEDICATED),
            ("FCFS", RepairStrategy.FCFS),
            ("first-come-first-serve", RepairStrategy.FCFS),
            ("FRF", RepairStrategy.FASTEST_REPAIR_FIRST),
            ("fastest repair first", RepairStrategy.FASTEST_REPAIR_FIRST),
            ("fff", RepairStrategy.FASTEST_FAILURE_FIRST),
            ("priority", RepairStrategy.PRIORITY),
        ],
    )
    def test_aliases(self, text, expected):
        assert RepairStrategy.from_string(text) is expected

    def test_unknown_strategy(self):
        with pytest.raises(ArcadeModelError):
            RepairStrategy.from_string("quantum")

    def test_short_names(self):
        assert RepairStrategy.FASTEST_REPAIR_FIRST.short_name(2) == "FRF-2"
        assert RepairStrategy.DEDICATED.short_name(5) == "DED"
        assert unit("frf", crews=2).label == "FRF-2"


class TestValidation:
    def test_needs_components(self):
        with pytest.raises(ArcadeModelError):
            RepairUnit("ru", "frf", ())

    def test_duplicate_components(self):
        with pytest.raises(ArcadeModelError):
            RepairUnit("ru", "frf", ("a", "a"))

    def test_needs_crews(self):
        with pytest.raises(ArcadeModelError):
            RepairUnit("ru", "frf", ("a",), crews=0)

    def test_effective_crews_for_dedicated(self):
        assert unit("dedicated").effective_crews() == len(COMPONENTS)
        assert unit("frf", crews=2).effective_crews() == 2


class TestQueueMechanics:
    def test_frf_orders_by_repair_time(self):
        ru = unit("frf")
        queue = ()
        queue = ru.insert(queue, COMPONENTS["slow_repair"], COMPONENTS)
        queue = ru.insert(queue, COMPONENTS["medium"], COMPONENTS)
        queue = ru.insert(queue, COMPONENTS["fast_repair"], COMPONENTS)
        assert queue == ("fast_repair", "medium", "slow_repair")

    def test_fff_orders_by_failure_time(self):
        ru = unit("fff")
        queue = ()
        for name in ("fast_repair", "slow_repair", "medium"):
            queue = ru.insert(queue, COMPONENTS[name], COMPONENTS)
        assert queue == ("slow_repair", "fast_repair", "medium")

    def test_fcfs_preserves_arrival_order(self):
        ru = unit("fcfs")
        queue = ()
        for name in ("medium", "fast_repair", "slow_repair"):
            queue = ru.insert(queue, COMPONENTS[name], COMPONENTS)
        assert queue == ("medium", "fast_repair", "slow_repair")

    def test_priority_strategy(self):
        ru = unit("priority")
        queue = ()
        for name in ("medium", "fast_repair", "slow_repair"):
            queue = ru.insert(queue, COMPONENTS[name], COMPONENTS)
        assert queue == ("slow_repair", "fast_repair", "medium")

    def test_ties_are_fcfs(self):
        ru = unit("frf")
        queue = ()
        queue = ru.insert(queue, COMPONENTS["twin"], COMPONENTS)
        queue = ru.insert(queue, COMPONENTS["fast_repair"], COMPONENTS)
        # Same MTTR: the earlier arrival stays first.
        assert queue == ("twin", "fast_repair")

    def test_dedicated_queue_is_canonical(self):
        ru = unit("dedicated")
        queue_one = ru.insert(ru.insert((), COMPONENTS["medium"], COMPONENTS), COMPONENTS["twin"], COMPONENTS)
        queue_two = ru.insert(ru.insert((), COMPONENTS["twin"], COMPONENTS), COMPONENTS["medium"], COMPONENTS)
        assert queue_one == queue_two
        assert ru.in_service(queue_one) == queue_one  # everything repaired at once

    def test_double_insert_rejected(self):
        ru = unit("frf")
        queue = ru.insert((), COMPONENTS["medium"], COMPONENTS)
        with pytest.raises(ArcadeModelError):
            ru.insert(queue, COMPONENTS["medium"], COMPONENTS)

    def test_remove(self):
        ru = unit("frf")
        queue = ("fast_repair", "medium")
        assert ru.remove(queue, "fast_repair") == ("medium",)
        with pytest.raises(ArcadeModelError):
            ru.remove(queue, "slow_repair")

    def test_in_service_and_crew_counts(self):
        ru = unit("frf", crews=2)
        queue = ("fast_repair", "medium", "slow_repair")
        assert ru.in_service(queue) == ("fast_repair", "medium")
        assert ru.busy_crews(queue) == 2
        assert ru.idle_crews(queue) == 0
        assert ru.idle_crews(("fast_repair",)) == 1

    def test_non_preemptive_insertion_never_displaces_service(self):
        ru = unit("frf", crews=1, preemptive=False)
        queue = ru.insert((), COMPONENTS["slow_repair"], COMPONENTS)
        queue = ru.insert(queue, COMPONENTS["fast_repair"], COMPONENTS)
        # The fast-repair arrival queues *behind* the component in service.
        assert queue == ("slow_repair", "fast_repair")

    def test_preemptive_insertion_displaces_service(self):
        ru = unit("frf", crews=1, preemptive=True)
        queue = ru.insert((), COMPONENTS["slow_repair"], COMPONENTS)
        queue = ru.insert(queue, COMPONENTS["fast_repair"], COMPONENTS)
        assert queue == ("fast_repair", "slow_repair")

    def test_initial_queue_uses_priorities(self):
        ru = unit("fcfs")
        queue = ru.initial_queue(["medium", "fast_repair", "slow_repair"], COMPONENTS)
        # FCFS: arrival order is the priority order slow_repair(1) < fast_repair(2) < medium(3).
        assert queue == ("slow_repair", "fast_repair", "medium")

    def test_with_strategy_copy(self):
        ru = unit("frf", crews=1)
        changed = ru.with_strategy("fff", crews=2)
        assert changed.strategy is RepairStrategy.FASTEST_FAILURE_FIRST
        assert changed.crews == 2
        assert ru.crews == 1


# ---------------------------------------------------------------------------
# property-based: queue invariants under arbitrary insert/remove sequences
# ---------------------------------------------------------------------------
_component_names = st.sampled_from(sorted(COMPONENTS))
_strategies = st.sampled_from(["fcfs", "frf", "fff", "priority"])


@given(
    strategy=_strategies,
    crews=st.integers(1, 3),
    operations=st.lists(_component_names, min_size=1, max_size=12),
)
@settings(max_examples=200, deadline=None)
def test_queue_invariants(strategy, crews, operations):
    """The queue always contains each failed component exactly once, in policy order."""
    ru = RepairUnit("ru", strategy, tuple(COMPONENTS), crews=crews)
    queue: tuple[str, ...] = ()
    for name in operations:
        if name in queue:
            queue = ru.remove(queue, name)
        else:
            queue = ru.insert(queue, COMPONENTS[name], COMPONENTS)
        # No duplicates, all known components.
        assert len(set(queue)) == len(queue)
        assert set(queue) <= set(COMPONENTS)
        # Policy keys are non-decreasing along the queue (FCFS trivially so).
        keys = [ru.policy_key(COMPONENTS[item]) for item in queue]
        assert keys == sorted(keys)
        # The in-service prefix never exceeds the crew count.
        assert len(ru.in_service(queue)) == min(crews, len(queue))
        assert ru.idle_crews(queue) + ru.busy_crews(queue) == ru.effective_crews()
