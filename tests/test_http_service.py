"""Tests for the asyncio HTTP front end (`repro.service.http`).

The acceptance round-trip runs over a real 2-shard service: ``POST
/scenario`` returns the family's JSON values (checked against a direct
in-process computation) and ``GET /metrics`` aggregates both shards'
counters.  Error mapping (400/404/405/503/504/500) is exercised against a
stub service so the status-code contract is tested without spawning
processes.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.analysis import AnalysisSession
from repro.service import (
    ArtifactCache,
    QueueFull,
    ScenarioHTTPServer,
    ScenarioService,
    ScenarioTimeout,
    ShardCrashed,
    ShardedScenarioService,
    paper_registry,
)

POINTS = 7


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes | None = None,
    keep_open: bool = False,
    reader_writer=None,
) -> tuple[int, dict[str, str], bytes, tuple]:
    """A tiny raw-socket HTTP/1.1 client (no third-party dependencies)."""
    if reader_writer is None:
        reader, writer = await asyncio.open_connection(host, port)
    else:
        reader, writer = reader_writer
    connection = "keep-alive" if keep_open else "close"
    head = f"{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: {connection}\r\n"
    if body is not None:
        head += f"Content-Length: {len(body)}\r\nContent-Type: application/json\r\n"
    writer.write(head.encode() + b"\r\n" + (body or b""))
    await writer.drain()

    status_line = await reader.readline()
    status = int(status_line.split(b" ")[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    payload = await reader.readexactly(int(headers.get("content-length", "0")))
    if not keep_open:
        writer.close()
        await writer.wait_closed()
    return status, headers, payload, (reader, writer)


def run_server_test(service_factory, client):
    """Start a service + server, run the async ``client(host, port)`` body."""

    async def main():
        async with service_factory() as service:
            server = ScenarioHTTPServer(service)
            await server.start()
            host, port = server.address
            try:
                return await client(host, port, server)
            finally:
                await server.close()

    return asyncio.run(main())


# ---------------------------------------------------------------------------
# acceptance: POST /scenario + GET /metrics over two real shards
# ---------------------------------------------------------------------------
class TestShardedRoundTrip:
    def test_scenario_values_and_metrics_aggregate_both_shards(self):
        family = paper_registry().expand("fig4_5", points=POINTS)
        session = AnalysisSession()
        indices = [session.add(request) for request in family]
        session_results = session.execute()
        reference = {
            tuple(request.tag): session_results[index].squeezed
            for request, index in zip(family, indices)
        }

        async def client(host, port, server):
            body = json.dumps({"name": "fig4_5", "points": POINTS}).encode()
            status, _, payload, _ = await http_request(
                host, port, "POST", "/scenario", body
            )
            assert status == 200
            document = json.loads(payload)
            status, headers, metrics, _ = await http_request(
                host, port, "GET", "/metrics"
            )
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            return document, metrics.decode()

        document, metrics = run_server_test(
            lambda: ShardedScenarioService(2, coalesce_window=0.02), client
        )

        assert document["scenario"] == "fig4_5"
        assert document["count"] == len(family)
        for curve in document["curves"]:
            expected = reference[tuple(curve["tag"])]
            np.testing.assert_allclose(curve["values"], expected, atol=1e-12)
            assert len(curve["times"]) == POINTS

        lines = metrics.splitlines()
        assert f"repro_service_requests_total {len(family)}" in lines
        assert f"repro_front_completed_total {len(family)}" in lines
        for shard in (0, 1):
            assert f'repro_shard_alive{{shard="{shard}"}} 1' in lines
        # The family spans one chain family; routed totals must cover it all.
        routed = sum(
            int(line.rpartition(" ")[2])
            for line in lines
            if line.startswith("repro_shard_routed_total{")
        )
        assert routed == len(family)
        assert any(
            line.startswith('repro_http_requests_total{route="POST /scenario"')
            for line in lines
        )


# ---------------------------------------------------------------------------
# protocol behaviour against the in-process service (no worker spawn)
# ---------------------------------------------------------------------------
class TestProtocol:
    def _factory(self):
        return ScenarioService(artifacts=ArtifactCache(), coalesce_window=0.0)

    def test_registry_unknown_paths_and_methods(self):
        async def client(host, port, server):
            status, _, payload, _ = await http_request(host, port, "GET", "/registry")
            assert status == 200
            names = [spec["name"] for spec in json.loads(payload)["scenarios"]]
            assert "fig4_5" in names and "table2" in names

            status, _, payload, _ = await http_request(host, port, "GET", "/nope")
            assert status == 404
            status, _, payload, _ = await http_request(host, port, "GET", "/scenario")
            assert status == 405
            status, _, payload, _ = await http_request(
                host, port, "POST", "/scenario", b"not json"
            )
            assert status == 400
            status, _, payload, _ = await http_request(
                host, port, "POST", "/scenario", json.dumps({"name": 5}).encode()
            )
            assert status == 400
            status, _, payload, _ = await http_request(
                host,
                port,
                "POST",
                "/scenario",
                json.dumps({"name": "fig4_5", "points": 1}).encode(),
            )
            assert status == 400
            status, _, payload, _ = await http_request(
                host, port, "POST", "/scenario", json.dumps({"name": "ghost"}).encode()
            )
            assert status == 404
            assert "unknown scenario" in json.loads(payload)["error"]

        run_server_test(self._factory, client)

    def test_keep_alive_serves_sequential_requests_on_one_connection(self):
        async def client(host, port, server):
            status, _, _, pair = await http_request(
                host, port, "GET", "/registry", keep_open=True
            )
            assert status == 200
            status, _, payload, pair = await http_request(
                host, port, "GET", "/registry", keep_open=True, reader_writer=pair
            )
            assert status == 200
            assert json.loads(payload)["scenarios"]
            reader, writer = pair
            writer.close()
            await writer.wait_closed()

        run_server_test(self._factory, client)


class TestErrorMapping:
    """Status-code contract, driven through stub services."""

    class _StubService:
        def __init__(self, error: Exception | None = None):
            self.error = error
            self.registry = paper_registry()

        async def submit_scenario(self, name, points=None, timeout=None):
            raise self.error

        def metrics_text(self):
            return "# stub\n"

    def _run(self, error: Exception) -> tuple[int, dict, dict[str, str]]:
        async def main():
            server = ScenarioHTTPServer(self._StubService(error))
            await server.start()
            host, port = server.address
            try:
                status, headers, payload, _ = await http_request(
                    host,
                    port,
                    "POST",
                    "/scenario",
                    json.dumps({"name": "fig4_5"}).encode(),
                )
                return status, json.loads(payload), headers
            finally:
                await server.close()

        return asyncio.run(main())

    def test_queue_full_maps_to_503_with_retry_after(self):
        status, document, headers = self._run(QueueFull("portfolio queue at cap"))
        assert status == 503
        assert "portfolio queue at cap" in document["error"]
        assert headers.get("retry-after") == "1"

    def test_timeout_maps_to_504(self):
        status, document, _ = self._run(ScenarioTimeout("deadline expired"))
        assert status == 504
        assert "deadline expired" in document["error"]

    def test_shard_crashed_maps_to_503_with_retry_after(self):
        # A crashed shard is transient (the supervisor is restarting it),
        # so callers get 503 + Retry-After, not a generic 500.
        status, document, headers = self._run(
            ShardCrashed("shard 1 worker exited with code -9")
        )
        assert status == 503
        assert "shard 1" in document["error"]
        assert headers.get("retry-after") == "1"

    def test_unexpected_failure_maps_to_500(self):
        status, document, _ = self._run(RuntimeError("boom"))
        assert status == 500
        assert "boom" in document["error"]


class TestConnectionCap:
    def _factory(self):
        return ScenarioService(artifacts=ArtifactCache(), coalesce_window=0.0)

    def test_excess_connections_get_503_with_retry_after(self):
        async def client(host, port, server):
            # Hold the cap's worth of keep-alive connections open.
            status, _, _, first = await http_request(
                host, port, "GET", "/registry", keep_open=True
            )
            assert status == 200
            status, _, _, second = await http_request(
                host, port, "GET", "/registry", keep_open=True
            )
            assert status == 200
            assert server.active_connections == 2
            # The connection over the cap is rejected before its request
            # body is read, with a Retry-After hint, and closed.
            status, headers, payload, _ = await http_request(
                host, port, "GET", "/registry"
            )
            assert status == 503
            assert headers.get("retry-after") == "1"
            assert "connection limit" in json.loads(payload)["error"]
            assert server.rejected_connections == 1
            # Releasing a held connection frees a slot.
            reader, writer = first
            writer.close()
            await writer.wait_closed()
            while server.active_connections > 1:
                await asyncio.sleep(0.01)
            status, _, _, _ = await http_request(host, port, "GET", "/registry")
            assert status == 200
            reader, writer = second
            writer.close()
            await writer.wait_closed()

        async def main():
            async with self._factory() as service:
                server = ScenarioHTTPServer(service, max_connections=2)
                await server.start()
                host, port = server.address
                try:
                    await client(host, port, server)
                finally:
                    await server.close()

        asyncio.run(main())

    def test_uncapped_server_accepts_many_connections(self):
        async def client(host, port, server):
            pairs = []
            for _ in range(8):
                status, _, _, pair = await http_request(
                    host, port, "GET", "/registry", keep_open=True
                )
                assert status == 200
                pairs.append(pair)
            assert server.rejected_connections == 0
            for reader, writer in pairs:
                writer.close()
                await writer.wait_closed()

        run_server_test(self._factory, client)


class TestGracefulDrain:
    def _factory(self):
        return ScenarioService(artifacts=ArtifactCache(), coalesce_window=0.0)

    def test_drain_rejects_new_requests_and_waits_for_idle(self):
        async def client(host, port, server):
            status, _, _, pair = await http_request(
                host, port, "GET", "/registry", keep_open=True
            )
            assert status == 200
            assert not server.draining

            server.begin_drain()
            assert server.draining
            # The established keep-alive connection can still talk, but a
            # new request on it is refused and the connection is closed.
            status, headers, payload, pair = await http_request(
                host, port, "GET", "/registry", keep_open=True, reader_writer=pair
            )
            assert status == 503
            assert headers.get("connection") == "close"
            assert "draining" in json.loads(payload)["error"]
            reader, writer = pair
            writer.close()
            await writer.wait_closed()

            # drain() resolves once every connection has finished.
            await asyncio.wait_for(server.drain(), timeout=5)
            assert server.active_connections == 0

            # The listener is closed: no new connections are accepted.
            with pytest.raises((ConnectionError, OSError, asyncio.TimeoutError)):
                await asyncio.wait_for(
                    asyncio.open_connection(host, port), timeout=0.5
                )

        run_server_test(self._factory, client)

    def test_drain_with_no_connections_returns_immediately(self):
        async def client(host, port, server):
            await asyncio.wait_for(server.drain(), timeout=1)
            assert server.draining
            assert server.active_connections == 0

        run_server_test(self._factory, client)


class TestBackpressureOverHTTP:
    def test_saturated_service_returns_503_then_recovers(self):
        """End-to-end: a real service at max_pending=1 rejects over HTTP."""

        async def main():
            service = ScenarioService(
                artifacts=ArtifactCache(),
                coalesce_window=0.5,  # hold the first batch open
                max_pending=1,
                registry=paper_registry(),
            )
            async with service:
                server = ScenarioHTTPServer(service)
                await server.start()
                host, port = server.address
                try:
                    body = json.dumps({"name": "fig4_5", "points": POINTS}).encode()
                    first = asyncio.ensure_future(
                        http_request(host, port, "POST", "/scenario", body)
                    )
                    await asyncio.sleep(0.1)  # the family saturates the queue
                    status, _, payload, _ = await http_request(
                        host, port, "POST", "/scenario", body
                    )
                    assert status == 503
                    assert "max_pending" in json.loads(payload)["error"]
                    status, _, _, _ = await first
                    # The first client's request itself overflowed the
                    # one-slot queue mid-family: it reports 503 too, and the
                    # service survives both rejections.
                    assert status == 503
                    status, _, _, _ = await http_request(
                        host, port, "GET", "/metrics"
                    )
                    assert status == 200
                finally:
                    await server.close()

        asyncio.run(main())
