"""Tests for the experiment drivers and the command-line front end.

The full-resolution experiments are exercised by the benchmark harness; here
they run on coarse grids / the cheaper line to keep the test suite fast while
still covering the experiment and CLI code paths end to end.
"""

import numpy as np
import pytest

from repro.casestudy import experiments as exp
from repro.casestudy.facility import StrategyConfiguration
from repro.arcade.repair import RepairStrategy
from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _keep_cache():
    """The experiment cache is shared; leave it in place to speed the suite up."""
    yield


class TestExperimentHelpers:
    def test_line_state_space_is_cached(self):
        configuration = StrategyConfiguration(RepairStrategy.DEDICATED, 1)
        first = exp.line_state_space("line2", configuration)
        second = exp.line_state_space("line2", configuration)
        assert first is second

    def test_clear_cache(self):
        configuration = StrategyConfiguration(RepairStrategy.DEDICATED, 1)
        first = exp.line_state_space("line2", configuration)
        exp.clear_cache()
        second = exp.line_state_space("line2", configuration)
        assert first is not second

    def test_table_result_helpers(self):
        table = exp.TableResult("t", ("name", "value"), [("a", 1), ("b", 2)])
        assert table.column("value") == [1, 2]
        assert table.row_by("name", "b") == ("b", 2)
        with pytest.raises(KeyError):
            table.row_by("name", "zz")
        assert "name,value" in table.to_csv()

    def test_curve_result_helpers(self):
        curve = exp.CurveResult(
            "c", np.array([0.0, 1.0, 2.0]), {"s": np.array([0.0, 0.5, 1.0])}
        )
        assert curve.value_at("s", 1.1) == 0.5
        assert curve.final_value("s") == 1.0
        assert "t,s" in curve.to_csv()
        assert "c" in curve.to_text()


class TestFigureExperimentsCoarse:
    def test_figure3_reliability(self):
        result = exp.figure3_reliability(horizon=400.0, points=9)
        assert set(result.series) == {"line1", "line2"}
        assert np.all(result.series["line2"] >= result.series["line1"] - 1e-12)

    def test_figure8_9_line2(self):
        figure8, figure9 = exp.figure8_9_survivability_line2(horizon=40.0, points=9)
        assert set(figure8.series) == {"DED", "FRF-1", "FRF-2", "FFF-1", "FFF-2"}
        assert figure8.value_at("FFF-1", 20.0) < figure8.value_at("FRF-1", 20.0)
        assert figure9.value_at("FFF-2", 20.0) > figure9.value_at("FRF-2", 20.0)

    def test_figure10_11_line2(self):
        figure10, figure11 = exp.figure10_11_costs_line2(
            instantaneous_horizon=30.0, accumulated_horizon=30.0, points=7
        )
        for values in figure10.series.values():
            assert values[0] == pytest.approx(15.0, abs=1e-6)
        assert figure11.final_value("FFF-1") > figure11.final_value("FRF-2")


class TestCommandLine:
    def test_parser_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table99"])

    def test_fig3_to_csv_files(self, tmp_path, capsys):
        exit_code = main(["fig3", "--points", "5", "--output", str(tmp_path), "--no-plot"])
        assert exit_code == 0
        written = tmp_path / "fig3.csv"
        assert written.exists()
        header = written.read_text().splitlines()[0]
        assert header == "t,line1,line2"
        captured = capsys.readouterr()
        assert "wrote" in captured.out

    def test_fig9_ascii_plot_output(self, capsys):
        exit_code = main(["fig9", "--points", "5"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Figure 9" in captured.out
