"""Tests for the Monte-Carlo simulator and its agreement with the analytic engine."""

import numpy as np
import pytest

from repro.measures import (
    accumulated_cost,
    steady_state_availability,
    survivability,
    unreliability,
)
from repro.sim import (
    ArcadeSimulator,
    estimate_accumulated_cost,
    estimate_availability,
    estimate_survivability,
    estimate_unreliability,
)
from repro.sim.estimators import ConfidenceInterval, _interval
from helpers import make_mini_model


class TestSimulatorMechanics:
    def test_trajectory_is_time_ordered(self):
        simulator = ArcadeSimulator(make_mini_model(), seed=42)
        run = simulator.simulate(500.0)
        assert run.times[0] == 0.0
        assert all(b > a for a, b in zip(run.times, run.times[1:]))
        assert len(run.times) == len(run.states)

    def test_state_at_and_holding_intervals_cover_horizon(self):
        simulator = ArcadeSimulator(make_mini_model(), seed=7)
        run = simulator.simulate(200.0)
        assert run.state_at(0.0) == run.states[0]
        total = sum(end - start for start, end, _ in run.holding_intervals())
        assert total == pytest.approx(run.horizon)
        with pytest.raises(ValueError):
            run.state_at(1e9)

    def test_disaster_start_state(self):
        simulator = ArcadeSimulator(make_mini_model(), seed=1)
        run = simulator.simulate(10.0, disaster="everything")
        assert simulator.failed_components(run.states[0]) == {"alpha", "beta", "gamma"}
        assert not simulator.is_operational(run.states[0])
        assert float(simulator.service_level(run.states[0])) == 0.0

    def test_without_repairs_failures_are_permanent(self):
        simulator = ArcadeSimulator(make_mini_model(), with_repairs=False, seed=3)
        run = simulator.simulate(100_000.0)
        failed_counts = [len(simulator.failed_components(state)) for state in run.states]
        assert failed_counts == sorted(failed_counts)
        assert failed_counts[-1] == 3  # eventually everything fails and stays failed

    def test_cost_rate_observable(self):
        simulator = ArcadeSimulator(make_mini_model(), seed=5)
        all_up = simulator.initial_state()
        assert simulator.cost_rate(all_up) == pytest.approx(1.0)
        disaster = simulator.initial_state("everything")
        assert simulator.cost_rate(disaster) == pytest.approx(9.0)

    def test_reproducible_with_seed(self):
        run_a = ArcadeSimulator(make_mini_model(), seed=11).simulate(300.0)
        run_b = ArcadeSimulator(make_mini_model(), seed=11).simulate(300.0)
        assert run_a.times == run_b.times
        assert run_a.states == run_b.states

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            ArcadeSimulator(make_mini_model(), seed=0).simulate(0.0)


class TestConfidenceInterval:
    def test_basic_properties(self):
        interval = _interval(np.array([1.0, 2.0, 3.0, 4.0]), 0.95)
        assert interval.mean == pytest.approx(2.5)
        assert interval.lower < 2.5 < interval.upper
        assert interval.contains(2.5)
        assert "95% CI" in str(interval)

    def test_needs_at_least_two_samples(self):
        with pytest.raises(ValueError):
            _interval(np.array([1.0]), 0.95)

    def test_unknown_confidence_level(self):
        with pytest.raises(ValueError):
            _interval(np.array([1.0, 2.0]), 0.8)


class TestAgreementWithAnalyticEngine:
    """Monte-Carlo estimates must bracket the exact values (generous tolerances)."""

    def test_availability(self):
        model = make_mini_model("fastest_repair_first")
        exact = steady_state_availability(model)
        estimate = estimate_availability(model, horizon=30_000.0, runs=15, seed=123)
        assert abs(estimate.mean - exact) < 3 * max(estimate.half_width, 1e-3)

    def test_unreliability(self):
        model = make_mini_model()
        time = 40.0
        exact = unreliability(model, time)
        estimate = estimate_unreliability(model, time, runs=1500, seed=321)
        assert abs(estimate.mean - exact) < 3 * max(estimate.half_width, 1e-3)

    def test_survivability(self):
        model = make_mini_model("fastest_repair_first")
        exact = survivability(model, "everything", 1.0, 6.0)
        estimate = estimate_survivability(model, "everything", 1.0, 6.0, runs=1500, seed=7)
        assert abs(estimate.mean - exact) < 3 * max(estimate.half_width, 1e-3)

    def test_accumulated_cost(self):
        model = make_mini_model("fastest_repair_first")
        exact = accumulated_cost(model, 10.0, "everything")
        estimate = estimate_accumulated_cost(model, 10.0, "everything", runs=400, seed=99)
        assert abs(estimate.mean - exact) < 3 * max(estimate.half_width, 0.05 * exact)
