"""Shared model builders used by fixtures and tests alike."""

from __future__ import annotations

from repro.arcade import (
    ArcadeModel,
    BasicComponent,
    BasicEvent,
    FaultTree,
    KOfN,
    Or,
    RepairUnit,
    SpareManagementUnit,
)
from repro.arcade.model import Disaster


def make_mini_model(
    strategy: str = "fastest_repair_first",
    crews: int = 1,
    preemptive: bool = True,
) -> ArcadeModel:
    """A three-component model small enough for exhaustive cross-checks."""
    components = (
        BasicComponent("alpha", mttf=100.0, mttr=2.0, priority=2),
        BasicComponent("beta", mttf=50.0, mttr=5.0, priority=1),
        BasicComponent("gamma", mttf=200.0, mttr=1.0, priority=3),
    )
    repair = RepairUnit(
        "unit",
        strategy=strategy,
        components=("alpha", "beta", "gamma"),
        crews=crews,
        preemptive=preemptive,
    )
    fault_tree = FaultTree(
        Or(BasicEvent("alpha"), BasicEvent("beta"), BasicEvent("gamma"))
    )
    disaster = Disaster("everything", ("alpha", "beta", "gamma"))
    return ArcadeModel(
        name="mini",
        components=components,
        repair_units=(repair,),
        fault_tree=fault_tree,
        disasters=(disaster,),
    )


def make_spare_model(dormancy: float = 0.0) -> ArcadeModel:
    """Two pumps (one needed) with a configurable standby mode, plus a valve."""
    components = (
        BasicComponent("pump1", mttf=100.0, mttr=4.0, dormancy_factor=dormancy),
        BasicComponent("pump2", mttf=100.0, mttr=4.0, dormancy_factor=dormancy),
        BasicComponent("valve", mttf=400.0, mttr=8.0),
    )
    repair = RepairUnit("unit", "fcfs", ("pump1", "pump2", "valve"), crews=1)
    spare = SpareManagementUnit("pumps", ("pump1", "pump2"), required=1)
    fault_tree = FaultTree(
        Or(KOfN(2, [BasicEvent("pump1"), BasicEvent("pump2")]), BasicEvent("valve"))
    )
    return ArcadeModel(
        name="spares",
        components=components,
        repair_units=(repair,),
        spare_units=(spare,),
        fault_tree=fault_tree,
    )
