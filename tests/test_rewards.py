"""Tests for Markov-reward measures (instantaneous, cumulative, steady-state)."""

import numpy as np
import pytest

from repro.ctmc import (
    CTMC,
    MarkovRewardModel,
    RewardStructure,
    cumulative_reward,
    instantaneous_reward,
    steady_state_reward,
)
from repro.ctmc.ctmc import CTMCError
from repro.ctmc.rewards import cumulative_reward_curve, instantaneous_reward_curve


@pytest.fixture
def reward_model(two_state_chain) -> MarkovRewardModel:
    return MarkovRewardModel(
        two_state_chain, RewardStructure("cost", np.array([0.0, 3.0]))
    )


class TestInstantaneous:
    def test_at_time_zero_equals_initial_reward(self, reward_model):
        assert instantaneous_reward(reward_model, 0.0) == pytest.approx(0.0)

    def test_converges_to_steady_state_reward(self, reward_model):
        lam, mu = 0.01, 0.5
        limit = 3.0 * lam / (lam + mu)
        assert instantaneous_reward(reward_model, 5000.0) == pytest.approx(limit, abs=1e-8)
        assert steady_state_reward(reward_model) == pytest.approx(limit, abs=1e-10)

    def test_curve_is_monotone_for_this_chain(self, reward_model):
        times = np.linspace(0.0, 100.0, 21)
        values = instantaneous_reward_curve(reward_model, times)
        assert values.shape == (21,)
        assert np.all(np.diff(values) >= -1e-12)

    def test_tuple_form_is_accepted(self, two_state_chain):
        value = instantaneous_reward((two_state_chain, np.array([1.0, 1.0])), 10.0)
        assert value == pytest.approx(1.0)


class TestCumulative:
    def test_zero_horizon(self, reward_model):
        assert cumulative_reward(reward_model, 0.0) == 0.0

    def test_negative_horizon_rejected(self, reward_model):
        with pytest.raises(CTMCError):
            cumulative_reward(reward_model, -1.0)

    def test_constant_reward_accumulates_linearly(self, two_state_chain):
        model = MarkovRewardModel(two_state_chain, RewardStructure("unit", np.ones(2)))
        for horizon in (0.5, 3.0, 42.0):
            assert cumulative_reward(model, horizon) == pytest.approx(horizon, rel=1e-9)

    def test_matches_integral_of_instantaneous(self, reward_model):
        # C(t) = ∫ I(u) du: compare against a fine trapezoidal integration.
        horizon = 50.0
        times = np.linspace(0.0, horizon, 2001)
        instantaneous = instantaneous_reward_curve(reward_model, times)
        integral = np.trapezoid(instantaneous, times)
        assert cumulative_reward(reward_model, horizon) == pytest.approx(integral, rel=1e-4)

    def test_long_run_growth_rate(self, reward_model):
        # For large t, C(t) ≈ t * steady-state reward rate.
        rate = steady_state_reward(reward_model)
        horizon = 20_000.0
        assert cumulative_reward(reward_model, horizon) / horizon == pytest.approx(
            rate, rel=1e-2
        )

    def test_curve_is_nondecreasing(self, reward_model):
        values = cumulative_reward_curve(reward_model, np.linspace(0.0, 20.0, 11))
        assert np.all(np.diff(values) >= -1e-12)

    def test_absorbing_chain_reward_saturates(self, absorbing_chain):
        # Reward 1/h only in the initial state; expected total = E[time to leave] = 1/0.02.
        model = MarkovRewardModel(
            absorbing_chain, RewardStructure("up_time", np.array([1.0, 0.0, 0.0]))
        )
        assert cumulative_reward(model, 100_000.0) == pytest.approx(50.0, rel=1e-3)

    def test_no_transition_chain(self):
        chain = CTMC(np.zeros((2, 2)), {0: 1.0})
        model = MarkovRewardModel(chain, RewardStructure("cost", np.array([2.0, 0.0])))
        assert cumulative_reward(model, 10.0) == pytest.approx(20.0)

    def test_initial_distribution_override(self, reward_model):
        from_down = cumulative_reward(
            reward_model, 1.0, initial_distribution=np.array([0.0, 1.0])
        )
        from_up = cumulative_reward(reward_model, 1.0)
        assert from_down > from_up
